"""Command-line interface for the HyperTRIO/HyperSIO reproduction.

Subcommands::

    repro-sim simulate    --benchmark mediastream --tenants 64 --config hypertrio
                          [--trace-out run.trace.json --metrics-out run.metrics.json]
    repro-sim sweep       --benchmark websearch --interleaving RR4
                          [--metrics-out sweep.metrics.json]
    repro-sim characterize --benchmark mediastream --packets 95000
    repro-sim serve       --benchmark mediastream --tenants 64 --port 7411
                          [--rate 5000 --checkpoint svc.ckpt]
                          [--slo-rules slo.json --span-out spans.json]
    repro-sim top         --port 7411 [--interval 2 --format table]
    repro-sim top         --run-dir .repro-runs/figure10-default  # fleet view
    repro-sim bench       [--root .]   # pinned matrix -> BENCH_<n>.json
    repro-sim experiment  figure10 [--scale default]
    repro-sim run         --experiment figure10 --jobs 4 [--resume RUN_ID]
    repro-sim run         --experiment figure10 --queue sweep.db  # distributed
    repro-sim top         --run-dir .repro-runs/x --queue sweep.db --iterations 1
    repro-sim report-metrics run.metrics.json [--chart]
    repro-sim list        # available experiments / benchmarks / runs

Installed as the ``repro-sim`` console script (see pyproject.toml); also
runnable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.ascii_plot import chart_from_columns
from repro.analysis.experiments import ALL_EXPERIMENTS, run_driver
from repro.analysis.scale import SCALE_ENV_VAR, RunScale, current_scale
from repro.analysis.sweeps import run_point
from repro.core.config import (
    SID_MAP_SCHEMES,
    DeviceConfig,
    base_config,
    hypertrio_config,
)
from repro.sim.simulator import SIMULATE_ENGINES, HyperSimulator
from repro.trace.characterize import characterize_single_tenant
from repro.trace.collector import collect_single_tenant
from repro.trace.constructor import construct_trace
from repro.trace.tenant import BENCHMARKS, profile_by_name

_CONFIGS = {"base": base_config, "hypertrio": hypertrio_config}


def _parse_device_config(devices: int, sid_map: str) -> DeviceConfig:
    """Parse ``--devices`` / ``--sid-map`` into a :class:`DeviceConfig`.

    ``--sid-map`` accepts a scheme name (``round_robin``, ``hash``) or an
    explicit pin list: ``explicit:0=1,5=0`` routes SID 0 to device 1 and
    SID 5 to device 0 (unmapped SIDs fall back to round-robin).
    """
    if sid_map.startswith("explicit:") or sid_map == "explicit":
        _, _, spec = sid_map.partition(":")
        pairs = []
        for item in filter(None, spec.split(",")):
            sid_text, eq, device_text = item.partition("=")
            if not eq:
                raise argparse.ArgumentTypeError(
                    f"explicit sid-map entries are SID=DEVICE, got {item!r}"
                )
            try:
                pairs.append((int(sid_text), int(device_text)))
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"explicit sid-map entries are SID=DEVICE with integer "
                    f"SID and DEVICE, got {item!r}"
                ) from None
        try:
            return DeviceConfig(
                count=devices, sid_map="explicit", explicit_map=tuple(pairs)
            )
        except ValueError as error:
            raise argparse.ArgumentTypeError(str(error)) from None
    if sid_map not in SID_MAP_SCHEMES:
        raise argparse.ArgumentTypeError(
            f"--sid-map must be one of {SID_MAP_SCHEMES} or "
            f"'explicit:SID=DEV,...', got {sid_map!r}"
        )
    try:
        return DeviceConfig(count=devices, sid_map=sid_map)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _add_common_workload_args(
    parser: argparse.ArgumentParser, packets_default: Optional[int] = 12_000
) -> None:
    parser.add_argument(
        "--benchmark", default="mediastream", choices=sorted(BENCHMARKS),
        help="workload profile (default: mediastream)",
    )
    parser.add_argument(
        "--interleaving", default="RR1",
        help="inter-tenant order: RR<n> or RAND<n> (default: RR1)",
    )
    packets_help = (
        f"trace length cap in packets (default: {packets_default})"
        if packets_default is not None
        else "trace length cap in packets (default: the scale preset's cap)"
    )
    parser.add_argument(
        "--packets", type=int, default=packets_default, help=packets_help,
    )
    parser.add_argument("--seed", type=int, default=0)


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", default="analytic", choices=SIMULATE_ENGINES,
        help="simulator implementation (default: analytic); all engines "
             "produce byte-identical results where supported — "
             "'vectorized' batches the hot path through numpy and "
             "refuses fault injection and checkpointing",
    )


def _engine_unsupported(engine: str, feature: str) -> int:
    """Print the actionable refusal for an engine/feature combo (exit 2)."""
    print(
        f"--engine {engine} does not support {feature}; "
        f"use --engine analytic for that run",
        file=sys.stderr,
    )
    return 2


def _simulator_class(engine: str):
    """Resolve ``--engine`` to the simulator class sharing
    :class:`HyperSimulator`'s constructor."""
    if engine == "evented":
        from repro.sim.des import EventDrivenSimulator

        return EventDrivenSimulator
    if engine == "vectorized":
        from repro.sim.vectorized import VectorizedSimulator

        return VectorizedSimulator
    return HyperSimulator


def _add_trace_file_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-file", default=None, metavar="PATH",
        help="replace the constructed packet stream with a JSON-lines "
             "trace file (see repro.trace.records); tenant systems are "
             "still built from --benchmark/--tenants, and the file is "
             "validated against them before simulation",
    )
    parser.add_argument(
        "--no-validate", action="store_true",
        help="skip trace validation for --trace-file (faster, but bad "
             "SIDs or unmapped gIOVAs will surface as simulation faults)",
    )


def _apply_trace_file(
    trace,
    trace_file: str,
    no_validate: bool,
    max_packets: Optional[int] = None,
):
    """Substitute packets from ``trace_file`` into a constructed trace.

    The constructed trace supplies the tenant systems (page tables, SID
    registry); the file supplies the packet stream.  Unless disabled, the
    combined trace is validated — unknown SIDs, gIOVAs that fault on the
    tenant's page tables, and implausible sizes are reported with packet
    indices.  Returns the patched :class:`HyperTrace`, or ``None`` after
    printing actionable errors to stderr.
    """
    from repro.trace.records import compute_trace_stats, load_trace

    try:
        packets = load_trace(Path(trace_file))
    except OSError as error:
        print(f"cannot read trace file {trace_file}: {error}", file=sys.stderr)
        return None
    except (ValueError, KeyError, TypeError) as error:
        print(
            f"malformed trace file {trace_file}: {error} "
            f"(expected one JSON packet record per line, e.g. "
            f'{{"sid": 0, "giovas": [a, b, c], "size": 1542}})',
            file=sys.stderr,
        )
        return None
    if not packets:
        print(f"trace file {trace_file} contains no packets", file=sys.stderr)
        return None
    if max_packets is not None:
        packets = packets[:max_packets]
    trace = dataclasses.replace(
        trace, packets=packets, stats=compute_trace_stats(packets)
    )
    if not no_validate:
        from repro.trace.validate import validate_trace

        report = validate_trace(trace)
        if not report.ok:
            print(
                f"trace file {trace_file} failed validation with "
                f"{len(report.errors)} error(s) "
                f"(--no-validate to run anyway):",
                file=sys.stderr,
            )
            for line in report.errors[:10]:
                print(f"  {line}", file=sys.stderr)
            if len(report.errors) > 10:
                print(
                    f"  ... (+{len(report.errors) - 10} more)",
                    file=sys.stderr,
                )
            return None
    return trace


def _print_fabric_summary(result) -> None:
    if not result.device_results:
        return
    fabric = result.fabric
    print(
        f"  fabric: {fabric.num_devices} devices ({fabric.sid_map}), "
        f"walker mean queue delay "
        f"{fabric.walker_mean_queue_delay_ns:.1f} ns "
        f"over {fabric.walker_jobs} walks"
    )
    for dev in result.device_results:
        print(
            f"  dev{dev.device_id}: "
            f"{dev.achieved_bandwidth_gbps:7.1f} Gb/s, "
            f"accepted {dev.packets.accepted}, "
            f"drops {dev.packets.dropped}, "
            f"devtlb hit {dev.cache_stats['devtlb'].hit_rate * 100:5.1f}%, "
            f"iotlb hit {dev.iotlb_hit_rate * 100:5.1f}%"
        )


def _simulate_checkpoint_plan(args: argparse.Namespace):
    """Resolve ``--checkpoint-dir``/``--checkpoint-every`` into
    ``(every, path)``; ``(0, None)`` when checkpointing is off."""
    every = args.checkpoint_every
    if args.checkpoint_dir and every == 0:
        every = 5000
    if every <= 0:
        return 0, None
    directory = Path(args.checkpoint_dir or ".")
    directory.mkdir(parents=True, exist_ok=True)
    name = (
        f"simulate-{args.benchmark}-{args.tenants}t-"
        f"{args.interleaving}-s{args.seed}.ckpt"
    )
    return every, directory / name


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.config_file:
        from repro.core.config_io import load_config

        config = load_config(args.config_file)
    else:
        config = _CONFIGS[args.config]()
    if args.devices != 1 or args.sid_map != "round_robin":
        try:
            config = config.with_overrides(
                devices=_parse_device_config(args.devices, args.sid_map)
            )
        except argparse.ArgumentTypeError as error:
            print(f"bad --sid-map: {error}", file=sys.stderr)
            return 2
    checkpoint_every, checkpoint_path = _simulate_checkpoint_plan(args)
    if args.engine == "vectorized":
        # The vectorized engine trades these features for throughput;
        # refuse up front with an actionable message instead of letting
        # VectorizedUnsupportedError surface as a traceback.
        for flag, name in (
            (args.fault_plan, "--fault-plan"),
            (args.checkpoint_dir, "--checkpoint-dir"),
            (args.checkpoint_every, "--checkpoint-every"),
            (args.resume_from, "--resume-from"),
        ):
            if flag:
                return _engine_unsupported("vectorized", name)

    if args.resume_from:
        # The checkpoint carries the full engine state — trace, faults,
        # and observability included — so flags that would rebuild any of
        # those cannot apply to a resumed run.
        for flag, name in (
            (args.trace_file, "--trace-file"),
            (args.trace_out, "--trace-out"),
            (args.metrics_out, "--metrics-out"),
            (args.fault_plan, "--fault-plan"),
        ):
            if flag:
                print(
                    f"{name} cannot be combined with --resume-from: the "
                    f"checkpoint already carries that state",
                    file=sys.stderr,
                )
                return 2
        from repro.sim.checkpoint import (
            CheckpointError,
            SimulationInterrupted,
            install_signal_handlers,
        )
        from repro.sim.simulator import simulate

        install_signal_handlers()
        try:
            result = simulate(
                config,
                None,
                resume_from=args.resume_from,
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
                engine=args.engine,
            )
        except CheckpointError as error:
            print(
                f"cannot resume from {args.resume_from}: {error}",
                file=sys.stderr,
            )
            return 2
        except SimulationInterrupted as stop:
            print(
                f"interrupted at {stop.packets_done} packets; resume with "
                f"--resume-from {stop.checkpoint_path}",
                file=sys.stderr,
            )
            return 130
        print(result.summary())
        _print_fabric_summary(result)
        return 0

    trace = construct_trace(
        profile_by_name(args.benchmark),
        num_tenants=args.tenants,
        packets_per_tenant=200_000,
        interleaving=args.interleaving,
        seed=args.seed,
        max_packets=args.packets,
    )
    if args.trace_file:
        trace = _apply_trace_file(
            trace, args.trace_file, args.no_validate, max_packets=args.packets
        )
        if trace is None:
            return 2
    fault_plan = None
    if args.fault_plan:
        from repro.faults import FaultPlanFormatError, load_plan

        try:
            fault_plan = load_plan(args.fault_plan)
        except FaultPlanFormatError as error:
            print(f"bad fault plan {args.fault_plan}: {error}", file=sys.stderr)
            return 2
    observability = None
    if args.trace_out or args.metrics_out:
        from repro.obs import Observability

        if args.trace_out:
            observability = Observability.recording(
                sample_rate=args.trace_sample, seed=args.seed
            )
        else:
            observability = Observability.metrics_only()
    try:
        simulator = _simulator_class(args.engine)(
            config, trace, observability=observability, fault_plan=fault_plan
        )
    except Exception as error:
        from repro.sim.vectorized import VectorizedUnsupportedError

        if isinstance(error, VectorizedUnsupportedError):
            # Backstop for combinations the flag checks above cannot see
            # (e.g. a fault plan injected programmatically).
            print(f"--engine vectorized: {error}", file=sys.stderr)
            return 2
        raise
    if checkpoint_path is not None:
        from repro.sim.checkpoint import (
            SimulationInterrupted,
            install_signal_handlers,
        )

        install_signal_handlers()
        try:
            result = simulator.run(
                warmup_packets=len(trace.packets) // 4,
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
            )
        except SimulationInterrupted as stop:
            print(
                f"interrupted at {stop.packets_done} packets; resume with "
                f"--resume-from {stop.checkpoint_path}",
                file=sys.stderr,
            )
            return 130
    else:
        result = simulator.run(warmup_packets=len(trace.packets) // 4)
    print(result.summary())
    if fault_plan is not None:
        causes = result.packets.drop_causes
        detail = ", ".join(
            f"{cause}={causes[cause]}" for cause in sorted(causes)
        ) or "none"
        print(f"  faults (seed {fault_plan.seed}): drops by cause: {detail}")
    _print_fabric_summary(result)
    if args.trace_out:
        from repro.obs.export import write_trace

        tracer = observability.tracer
        path = write_trace(tracer.events, args.trace_out)
        print(f"  trace: {path} ({len(tracer.events)} events, "
              f"{tracer.packets_sampled} packets sampled)")
    if args.metrics_out:
        from repro.obs.export import write_metrics

        path = write_metrics(args.metrics_out, observability, result)
        print(f"  metrics: {path}")
    if args.verbose:
        for name, stats in sorted(result.cache_stats.items()):
            print(f"  {name:16s} hit {stats.hit_rate * 100:5.1f}% "
                  f"({stats.hits}/{stats.accesses})")
        print(f"  mean request latency {result.latency.mean_ns:.0f} ns, "
              f"drops {result.packets.dropped}")
        if result.prefetch_requests:
            print(f"  prefetch supplied "
                  f"{result.prefetch_supplied_fraction * 100:.1f}%")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    scale = current_scale()
    if args.engine == "vectorized" and args.fault_axis:
        return _engine_unsupported("vectorized", "--fault-axis")
    if args.packets is not None:
        scale = dataclasses.replace(scale, max_packets=args.packets)
    counts = [int(c) for c in args.tenants.split(",")]
    device_counts = [int(c) for c in args.devices.split(",")]
    fault_rates: List[Optional[float]] = [None]
    if args.fault_axis:
        from repro.faults import FaultPlan, TranslationFaultSpec

        fault_rates = [float(rate) for rate in args.fault_axis.split(",")]
    columns = {}
    metric_points = []
    for count in counts:
        trace_override = None
        if args.trace_file:
            from repro.analysis.sweeps import cached_trace

            constructed = cached_trace(
                args.benchmark, count, args.interleaving, scale, seed=args.seed
            )
            trace_override = _apply_trace_file(
                constructed, args.trace_file, args.no_validate,
                max_packets=scale.packets_for(count),
            )
            if trace_override is None:
                return 2
        for name, factory in (("Base", base_config), ("HyperTRIO", hypertrio_config)):
            for num_devices in device_counts:
                for fault_rate in fault_rates:
                    config = factory()
                    label = name
                    if len(device_counts) > 1 or num_devices != 1:
                        label = f"{name} x{num_devices}dev"
                    if num_devices != 1:
                        try:
                            config = config.with_overrides(
                                devices=_parse_device_config(
                                    num_devices, args.sid_map
                                )
                            )
                        except argparse.ArgumentTypeError as error:
                            print(f"bad --sid-map: {error}", file=sys.stderr)
                            return 2
                    fault_plan = None
                    if fault_rate is not None:
                        label = f"{label} f={fault_rate:g}"
                        if fault_rate > 0.0:
                            fault_plan = FaultPlan(
                                seed=args.seed,
                                translation_faults=(
                                    TranslationFaultSpec(probability=fault_rate),
                                ),
                            )
                    trace_kwargs = (
                        {"trace": trace_override}
                        if trace_override is not None
                        else {}
                    )
                    try:
                        point = run_point(
                            config, args.benchmark, count, args.interleaving,
                            scale, seed=args.seed, fault_plan=fault_plan,
                            engine=args.engine, **trace_kwargs,
                        )
                    except Exception as error:
                        from repro.sim.vectorized import (
                            VectorizedUnsupportedError,
                        )

                        if isinstance(error, VectorizedUnsupportedError):
                            print(
                                f"--engine vectorized: {error}",
                                file=sys.stderr,
                            )
                            return 2
                        raise
                    columns.setdefault(label, []).append(point.utilization_percent)
                    print(
                        f"{label:16s} {count:5d} tenants: "
                        f"{point.utilization_percent:5.1f}%"
                    )
                    if args.metrics_out:
                        result = point.result
                        entry = {
                            "config": point.config_name,
                            "num_tenants": count,
                            "num_devices": num_devices,
                            "utilization_percent": point.utilization_percent,
                            "achieved_bandwidth_gbps": (
                                result.achieved_bandwidth_gbps
                            ),
                            "packets_dropped": result.packets.dropped,
                            "latency": {
                                "count": result.latency.count,
                                "mean_ns": result.latency.mean_ns,
                                "min_ns": result.latency.min_ns,
                                "max_ns": result.latency.max_ns,
                                **result.percentiles,
                            },
                        }
                        if fault_rate is not None:
                            entry["fault_rate"] = fault_rate
                            entry["drop_causes"] = dict(
                                result.packets.drop_causes
                            )
                        metric_points.append(entry)
    if args.metrics_out:
        import json

        document = {
            "schema": "repro-obs-sweep/1",
            "benchmark": args.benchmark,
            "interleaving": args.interleaving,
            "points": metric_points,
        }
        Path(args.metrics_out).write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
        print(f"  metrics: {args.metrics_out}")
    if args.chart and len(counts) > 1:
        chart = chart_from_columns(
            f"{args.benchmark} / {args.interleaving}: link utilisation %",
            counts,
            columns,
            log_x=True,
        )
        print()
        print(chart.render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the translation service (see docs/SERVICE.md)."""
    import asyncio
    import signal

    from repro.service.admission import AdmissionConfig
    from repro.service.server import ConnectionPolicy, build_server
    from repro.sim.checkpoint import CheckpointError

    try:
        admission = AdmissionConfig(
            rate_per_s=args.rate,
            burst=args.burst,
            max_queue_depth=args.max_queue_depth,
            ptb_high_watermark=args.ptb_high_watermark,
            ptb_low_watermark=args.ptb_low_watermark,
            backpressure_mode=args.backpressure,
        )
    except ValueError as error:
        print(f"bad admission configuration: {error}", file=sys.stderr)
        return 2
    policy = ConnectionPolicy(
        max_frame_bytes=args.max_frame_bytes,
        idle_timeout_s=args.idle_timeout if args.idle_timeout > 0 else None,
        frame_deadline_s=(
            args.frame_deadline if args.frame_deadline > 0 else None
        ),
        max_inflight=args.max_inflight,
        max_write_buffer=args.max_write_buffer,
    )
    if args.config_file:
        from repro.core.config_io import load_config

        config = load_config(args.config_file)
    else:
        config = _CONFIGS[args.config]()

    slo_rules = None
    if args.slo_rules:
        from repro.obs.slo import SloFormatError, load_slo_rules

        try:
            slo_rules = load_slo_rules(args.slo_rules)
        except OSError as error:
            print(f"cannot read SLO rules {args.slo_rules}: {error}",
                  file=sys.stderr)
            return 2
        except SloFormatError as error:
            print(f"bad SLO rules {args.slo_rules}: {error}", file=sys.stderr)
            return 2
    if args.slo_backpressure and not slo_rules:
        print("--slo-backpressure needs --slo-rules", file=sys.stderr)
        return 2

    trace = None
    fault_plan = None
    observability = None
    if args.resume_from is None:
        trace = construct_trace(
            profile_by_name(args.benchmark),
            num_tenants=args.tenants,
            packets_per_tenant=200_000,
            interleaving=args.interleaving,
            seed=args.seed,
            max_packets=args.packets,
        )
        if args.fault_plan:
            from repro.faults import FaultPlanFormatError, load_plan

            try:
                fault_plan = load_plan(args.fault_plan)
            except FaultPlanFormatError as error:
                print(
                    f"bad fault plan {args.fault_plan}: {error}",
                    file=sys.stderr,
                )
                return 2
        if args.span_out:
            from repro.obs import Observability

            observability = Observability.profiling(
                metrics=not args.no_metrics
            )
        elif not args.no_metrics:
            from repro.obs import Observability

            observability = Observability.metrics_only()
    elif args.span_out:
        # The checkpointed engine carries its own observability bundle;
        # a fresh span recorder cannot be attached under it.
        print("--span-out cannot be combined with --resume-from",
              file=sys.stderr)
        return 2

    async def _serve() -> None:
        server = build_server(
            config,
            trace,
            admission=admission,
            host=args.host,
            port=args.port,
            observability=observability,
            fault_plan=fault_plan,
            checkpoint_path=args.checkpoint,
            resume_from=args.resume_from,
            slo_rules=slo_rules,
            slo_backpressure=args.slo_backpressure,
        )
        await server.start()
        # Parseable by wrappers (scripts/service_smoke.py, CI): keep the
        # "listening on HOST:PORT" shape stable.
        print(f"listening on {server.host}:{server.port}", flush=True)
        if args.resume_from:
            print(
                f"resumed from {args.resume_from} "
                f"({server.engine.processed} packets already processed)",
                flush=True,
            )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await server.serve_until_shutdown()
        if server.checkpoint_path is not None:
            print(f"checkpoint: {server.checkpoint_path}", flush=True)
        if args.span_out and server.spans is not None:
            from repro.obs.export import write_spans

            path = write_spans(server.spans.spans, args.span_out)
            print(
                f"spans: {path} ({len(server.spans.spans)} spans)",
                flush=True,
            )

    try:
        asyncio.run(_serve())
    except CheckpointError as error:
        print(f"cannot resume from {args.resume_from}: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(
            f"cannot serve on {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 2
    return 0


def _cmd_chaos_proxy(args: argparse.Namespace) -> int:
    """Run a standalone ChaosProxy in front of a serving instance."""
    import asyncio
    import signal

    from repro.faults import FaultPlanFormatError
    from repro.faults.netchaos import NetworkFaultPlan, load_netplan

    host, _, port_text = args.upstream.rpartition(":")
    try:
        upstream_port = int(port_text)
    except ValueError:
        print(f"bad --upstream {args.upstream!r}: expected HOST:PORT",
              file=sys.stderr)
        return 2
    if not host:
        host = "127.0.0.1"

    if args.plan:
        try:
            plan = load_netplan(args.plan)
        except OSError as error:
            print(f"cannot read plan {args.plan}: {error}", file=sys.stderr)
            return 2
        except FaultPlanFormatError as error:
            print(f"bad plan {args.plan}: {error}", file=sys.stderr)
            return 2
    else:
        plan = NetworkFaultPlan(seed=0)

    async def _proxy() -> None:
        from repro.faults.netchaos import ChaosProxy

        proxy = ChaosProxy(
            host, upstream_port, plan, host=args.host, port=args.port
        )
        await proxy.start()
        print(
            f"proxying on {args.host}:{proxy.port} -> "
            f"{host}:{upstream_port}"
            + ("" if args.plan else " (transparent: no fault plan)"),
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        try:
            await stop.wait()
        finally:
            await proxy.aclose()
        faults = dict(proxy.faults_injected)
        print(f"faults injected: {faults or 'none'}", flush=True)

    try:
        asyncio.run(_proxy())
    except KeyboardInterrupt:
        pass
    except OSError as error:
        print(
            f"cannot proxy on {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 2
    return 0


def _render_stats_table(reply) -> str:
    """Render a ``stats`` reply as the ``top`` terminal view."""
    lines = []
    packets = reply.get("packets") or {}
    lines.append(
        f"processed {reply.get('processed', 0)}  "
        f"queue {reply.get('queue_depth', 0)}  "
        f"requests {reply.get('requests_received', 0)}  "
        f"results {reply.get('results_sent', 0)}"
    )
    causes = packets.get("drop_causes") or {}
    cause_text = (
        ", ".join(f"{cause}={causes[cause]}" for cause in sorted(causes))
        or "none"
    )
    lines.append(
        f"packets: arrived {packets.get('arrived', 0)}, "
        f"accepted {packets.get('accepted', 0)}, "
        f"dropped {packets.get('dropped', 0)}, "
        f"drops by cause: {cause_text}"
    )
    admission = reply.get("admission") or {}
    if admission:
        totals = {"admitted": 0, "rate_limited": 0, "queue_full": 0,
                  "backpressure_shed": 0}
        for stats in admission.values():
            for key in totals:
                totals[key] += stats.get(key, 0)
        lines.append(
            f"admission: admitted {totals['admitted']}, "
            f"rate-limited {totals['rate_limited']}, "
            f"queue-full {totals['queue_full']}, "
            f"shed {totals['backpressure_shed']}"
        )
    conn = reply.get("conn") or {}
    if conn:
        lines.append(
            f"conn: open {conn.get('open', 0)}, "
            f"sessions {conn.get('sessions', 0)}, "
            f"opened {conn.get('opened', 0)}, "
            f"reconnects {conn.get('reconnects', 0)}, "
            f"evicted {conn.get('evicted_slow', 0)}, "
            f"timeouts idle/frame "
            f"{conn.get('idle_timeout', 0)}/{conn.get('frame_timeout', 0)}, "
            f"resends served {conn.get('resends_served', 0)}"
        )
    per_sid = reply.get("per_sid") or {}
    if per_sid:
        lines.append(
            f"{'sid':>5s} {'reqs':>8s} {'mean':>9s} {'p50':>9s} "
            f"{'p95':>9s} {'p99':>9s} {'devtlb':>7s}"
        )
        for sid in sorted(per_sid, key=int):
            row = per_sid[sid]
            hits = row.get("devtlb_hits", 0)
            misses = row.get("devtlb_misses", 0)
            accesses = hits + misses
            hit_text = (
                f"{hits / accesses * 100.0:6.1f}%" if accesses else "      -"
            )
            lines.append(
                f"{sid:>5s} {row.get('count', 0):8d} "
                f"{row.get('mean_ns', 0.0):9.0f} "
                f"{row.get('p50_ns', 0.0):9.0f} "
                f"{row.get('p95_ns', 0.0):9.0f} "
                f"{row.get('p99_ns', 0.0):9.0f} {hit_text}"
            )
        lines.append("(latencies in ns)")
    slo = reply.get("slo") or {}
    for rule in slo.get("rules", []):
        state = "BREACHED" if rule.get("breached") else "ok"
        lines.append(
            f"slo {rule.get('name')}: {rule.get('kind')} "
            f"threshold {rule.get('threshold')} -> {state}"
        )
    return "\n".join(lines)


def _render_fleet_table(snapshot) -> str:
    """Render a fleet registry snapshot (``top --run-dir``) as text."""
    lines = []
    workers = [
        row for row in snapshot.get("gauges", [])
        if row["name"] == "runner_workers"
    ]
    if workers:
        text = ", ".join(
            f"{row['labels'].get('status', '?')}={row['value']:.0f}"
            for row in workers
        )
        lines.append(f"workers: {text}")
    jobs = [
        row for row in snapshot.get("counters", [])
        if row["name"] == "runner_jobs"
    ]
    if jobs:
        text = ", ".join(
            f"{row['labels'].get('status', '?')}={row['value']}" for row in jobs
        )
        lines.append(f"jobs: {text}")
    exits = [
        row for row in snapshot.get("counters", [])
        if row["name"] == "runner_jobs_exit"
    ]
    if exits:
        text = ", ".join(
            f"{row['labels'].get('cause', '?')}={row['value']}" for row in exits
        )
        lines.append(f"exit causes: {text}")
    for row in snapshot.get("histograms", []):
        if row["name"] == "runner_job_duration_ns" and row.get("count"):
            lines.append(
                f"job duration: mean {row['mean_ns'] / 1e9:.2f}s, "
                f"p99 {row['p99_ns'] / 1e9:.2f}s over {row['count']} jobs"
            )
    gauges = snapshot.get("gauges", [])
    for row in gauges:
        if row["name"] == "runner_quarantined_lines" and row["value"]:
            lines.append(
                f"quarantined result lines: {row['value']:.0f} "
                f"(see quarantine.jsonl)"
            )
    queue_jobs = [row for row in gauges if row["name"] == "queue_jobs"]
    if queue_jobs:
        text = ", ".join(
            f"{row['labels'].get('status', '?')}={row['value']:.0f}"
            for row in queue_jobs
        )
        lines.append(f"queue: {text}")
    queue_workers = {}
    for row in gauges:
        if row["name"].startswith("queue_worker_"):
            worker = row["labels"].get("worker", "?")
            queue_workers.setdefault(worker, {})[
                row["name"][len("queue_worker_"):]
            ] = row["value"]
    for worker in sorted(queue_workers):
        counters = queue_workers[worker]
        lines.append(
            f"  {worker:24s} claims {counters.get('claims', 0):.0f}  "
            f"takeovers {counters.get('takeovers', 0):.0f}  "
            f"renewals {counters.get('renewals', 0):.0f}  "
            f"done {counters.get('done', 0):.0f}  "
            f"failed {counters.get('failed', 0):.0f}"
        )
    leases = [row for row in gauges if row["name"] == "queue_lease_remaining_s"]
    for row in leases:
        spec = str(row["labels"].get("spec", "?"))
        state = "EXPIRED" if row["value"] < 0 else f"{row['value']:.1f}s left"
        lines.append(
            f"  lease {spec[:12]:12s} {row['labels'].get('worker', '?'):24s} "
            f"{state}"
        )
    by_spec = {}
    for row in snapshot.get("gauges", []):
        spec = row["labels"].get("spec")
        if spec is not None and row["name"].startswith("runner_"):
            by_spec.setdefault(spec, {})[row["name"]] = (
                row["value"], row["labels"]
            )
    for spec in sorted(by_spec):
        series = by_spec[spec]
        age, labels = series.get("runner_heartbeat_age_s", (None, {}))
        packets, _ = series.get("runner_packets_done", (0.0, {}))
        rss, _ = series.get("runner_rss_kb", (0.0, {}))
        age_text = f"{age:.1f}s ago" if age is not None else "never"
        lines.append(
            f"  {spec[:12]:12s} {labels.get('status', '?'):10s} "
            f"{packets:10.0f} packets  rss {rss:8.0f} kB  "
            f"heartbeat {age_text}"
        )
    return "\n".join(lines) if lines else "no fleet records found"


def _cmd_top(args: argparse.Namespace) -> int:
    """Live service/fleet metrics view (polls ``stats`` over the wire)."""
    import asyncio
    import time

    if args.run_dir or args.queue:
        from repro.obs.fleet import fleet_registry, queue_registry
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.prom import registry_to_prom
        from repro.runner.queue import QueueError

        run_dir = Path(args.run_dir) if args.run_dir else None
        if run_dir is not None and not run_dir.is_dir():
            print(f"no such run directory: {run_dir}", file=sys.stderr)
            return 2
        if args.queue and not Path(args.queue).is_file():
            print(f"no such queue database: {args.queue}", file=sys.stderr)
            return 2
        shown = 0
        while True:
            registry = MetricsRegistry()
            if run_dir is not None:
                fleet_registry(run_dir, registry)
            if args.queue:
                try:
                    queue_registry(args.queue, registry)
                except QueueError as error:
                    print(f"error: {error}", file=sys.stderr)
                    return 2
            snapshot = registry.snapshot()
            if args.format == "prom":
                print(registry_to_prom(snapshot), end="", flush=True)
            else:
                print(_render_fleet_table(snapshot), flush=True)
            shown += 1
            if args.iterations and shown >= args.iterations:
                return 0
            time.sleep(args.interval)
            print(flush=True)

    from repro.service.client import ServiceClient, ServiceClientError

    async def _watch() -> int:
        client = ServiceClient(args.host, args.port, connect_timeout=2.0)
        try:
            await client.connect()
        except (OSError, ServiceClientError) as error:
            print(
                f"cannot connect to {args.host}:{args.port}: {error}",
                file=sys.stderr,
            )
            return 2
        try:
            shown = 0
            while True:
                reply = await client.stats(
                    "prom" if args.format == "prom" else None
                )
                if args.format == "prom":
                    print(reply.get("text", ""), end="", flush=True)
                else:
                    print(_render_stats_table(reply), flush=True)
                shown += 1
                if args.iterations and shown >= args.iterations:
                    return 0
                await asyncio.sleep(args.interval)
                print(flush=True)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            print("connection to the service lost", file=sys.stderr)
            return 1
        finally:
            await client.close()

    return asyncio.run(_watch())


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the pinned benchmark matrix -> BENCH_<n>.json."""
    from repro.analysis.bench import run_bench

    root = Path(args.root)
    if not root.is_dir():
        print(f"no such directory: {root}", file=sys.stderr)
        return 2
    kwargs = {}
    if args.vector_packets is not None:
        kwargs["vector_packets"] = args.vector_packets
    _, _, lines = run_bench(
        root,
        analytic_packets=args.analytic_packets,
        service_packets=args.service_packets,
        output=Path(args.output) if args.output else None,
        engine=args.engine,
        **kwargs,
    )
    print("\n".join(lines))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    profile = profile_by_name(args.benchmark)
    if args.regular:
        profile = dataclasses.replace(profile, jump_probability=0.0)
    log = collect_single_tenant(profile, packets=args.packets, seed=args.seed)
    analysis = characterize_single_tenant(log)
    print(f"benchmark {args.benchmark}: {analysis.total_requests} requests")
    for name in ("ring", "data", "init"):
        group = analysis.groups[name]
        print(
            f"  {name:5s}: {group.page_count:3d} pages, "
            f"{group.accesses_per_page:10.1f} accesses/page"
        )
    print(f"  periodic: {analysis.periodic}, "
          f"mean run length {analysis.mean_run_length:.0f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.scale:
        os.environ[SCALE_ENV_VAR] = args.scale
    if args.name not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; see 'repro-sim list'",
              file=sys.stderr)
        return 2
    table = run_driver(args.name, scale=current_scale())
    print(table.render())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.runner import (
        ExperimentRunner,
        ProgressReporter,
        ResultStore,
        RunFailedError,
        RunnerOptions,
        SupervisionOptions,
    )

    if args.scale:
        os.environ[SCALE_ENV_VAR] = args.scale
    scale = current_scale()
    if args.experiment not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; see 'repro-sim list'",
              file=sys.stderr)
        return 2
    runs_dir = Path(args.runs_dir)
    run_id = args.resume or args.run_id or f"{args.experiment}-{scale.name}"
    if args.resume and not (runs_dir / run_id).is_dir():
        print(f"no run directory to resume: {runs_dir / run_id}", file=sys.stderr)
        return 2
    store = ResultStore(runs_dir, run_id)
    if store.corrupt_records:
        print(
            f"[run {run_id}] warning: {len(store.corrupt_records)} corrupt "
            f"result record(s) quarantined to {store.quarantine_path}; "
            f"affected points will be re-executed",
            file=sys.stderr,
        )
    store.write_manifest(experiment=args.experiment, scale=scale.name)
    options = RunnerOptions(
        jobs=args.jobs,
        timeout_s=args.timeout,
        max_attempts=args.retries + 1,
    )
    supervision = SupervisionOptions(
        checkpoint_every=args.checkpoint_every,
        heartbeat_timeout_s=args.heartbeat_timeout,
        deadline_s=args.deadline,
        memory_budget_kb=(
            args.memory_budget_mb * 1024 if args.memory_budget_mb else None
        ),
    )
    reporter = ProgressReporter(stream=sys.stderr, enabled=not args.no_progress)
    runner = ExperimentRunner(
        store=store, options=options, reporter=reporter, supervision=supervision
    )
    if args.queue:
        return _run_queue_mode(args, store, runner, run_id, scale)
    try:
        table = run_driver(args.experiment, scale=scale, runner=runner)
    except KeyboardInterrupt:
        stats = runner.stats
        store.write_manifest(
            wall_clock_s=stats.wall_clock_s,
            status="interrupted",
            jobs=stats.as_dict(),
            supervision=store.supervision_summary(),
        )
        print(
            f"run {run_id} interrupted; 'repro-sim run --experiment "
            f"{args.experiment} --resume {run_id}' continues it "
            f"(mid-simulation, from the per-job checkpoints)",
            file=sys.stderr,
        )
        return 130
    except RunFailedError as error:
        stats = runner.stats
        store.write_manifest(
            wall_clock_s=stats.wall_clock_s, status="failed",
            jobs=stats.as_dict(), supervision=store.supervision_summary(),
        )
        print(f"run {run_id} failed: {error}", file=sys.stderr)
        return 1
    stats = runner.stats
    store.write_manifest(
        wall_clock_s=stats.wall_clock_s, status="ok", jobs=stats.as_dict(),
        metrics=store.metrics_summary(),
        supervision=store.supervision_summary(),
    )
    print(table.render())
    interrupted_text = (
        f"{stats.interrupted} interrupted, " if stats.interrupted else ""
    )
    print(
        f"[run {run_id}] {stats.total} jobs: {stats.executed} executed, "
        f"{stats.cached} cached, {stats.failed} failed, {interrupted_text}"
        f"in {stats.wall_clock_s:.1f}s -> {store.directory}"
    )
    return 0


def _run_queue_mode(args, store, runner, run_id, scale) -> int:
    """``repro-sim run --queue``: cooperate on a shared SQLite job queue.

    Multiple invocations — on one machine or several sharing the queue
    file and (ideally) the run directory — plan the same experiment,
    enqueue it idempotently, and drain it together.  Results land only
    in each worker's ``results.jsonl`` (the queue is coordination, not
    storage), so a deleted or corrupt queue database is rebuilt by
    simply re-running this command.
    """
    from repro.runner import QueueCorruptError, QueueError
    from repro.runner.queue import ExperimentQueue

    try:
        queue = ExperimentQueue(args.queue, lease_s=args.lease)
    except QueueCorruptError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except QueueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    def on_event(message: str) -> None:
        if not args.no_progress:
            print(f"[run {run_id}] {message}", file=sys.stderr)

    table = stats = None
    try:
        try:
            table, stats = run_driver(
                args.experiment, scale=scale, runner=runner,
                queue=queue, on_event=on_event,
            )
        except KeyboardInterrupt:
            store.write_manifest(
                wall_clock_s=runner.stats.wall_clock_s,
                status="interrupted",
                jobs=runner.stats.as_dict(),
                supervision=store.supervision_summary(),
                queue=queue.summary(),
            )
            print(
                f"run {run_id} interrupted; claims released — surviving "
                f"workers (or a rerun of this command) continue the sweep",
                file=sys.stderr,
            )
            return 130
        except QueueCorruptError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        summary = queue.summary()
        counts = summary["counts"]
        failed = counts.get("failed", 0) + counts.get("quarantined", 0)
        store.write_manifest(
            wall_clock_s=stats.wall_clock_s if stats else None,
            status="failed" if failed else "ok",
            jobs=runner.stats.as_dict(),
            metrics=store.metrics_summary(),
            supervision=store.supervision_summary(),
            queue=summary,
            queue_worker=stats.as_dict() if stats else None,
        )
        if table is not None:
            print(table.render())
        if stats is not None:
            takeover_text = (
                f"{stats.takeovers} takeovers, " if stats.takeovers else ""
            )
            print(
                f"[run {run_id}] queue {queue.path}: {stats.claims} claims, "
                f"{stats.executed} executed, {stats.memo_hits} answered from "
                f"store, {takeover_text}{stats.failed} failed, "
                f"in {stats.wall_clock_s:.1f}s -> {store.directory}"
            )
            counts_text = ", ".join(
                f"{status}={count}" for status, count in counts.items()
            )
            print(f"[run {run_id}] queue state: {counts_text}")
        if table is None and stats is not None:
            print(
                f"[run {run_id}] some results live in other workers' "
                f"stores; render the table from a shared run directory "
                f"or re-run single-host",
                file=sys.stderr,
            )
        return 1 if failed else 0
    finally:
        queue.close()


def _cmd_report_metrics(args: argparse.Namespace) -> int:
    """Render a metrics JSON file (from ``--metrics-out``) as tables."""
    import json

    from repro.analysis.report import ExperimentTable

    path = Path(args.metrics_file)
    if not path.is_file():
        print(f"no such metrics file: {path}", file=sys.stderr)
        return 2
    document = json.loads(path.read_text(encoding="utf-8"))
    schema = document.get("schema", "")
    if not schema.startswith("repro-obs-metrics/"):
        print(f"not a repro-obs metrics file (schema {schema!r})", file=sys.stderr)
        return 2

    run = document.get("run") or {}
    if run:
        print(
            f"run: {run.get('config')} / {run.get('benchmark')} / "
            f"{run.get('num_tenants')} tenants / {run.get('interleaving')}"
        )
        print(
            f"  bandwidth {run.get('achieved_bandwidth_gbps', 0.0):.1f} Gb/s "
            f"({run.get('link_utilization', 0.0) * 100:.1f}% of link), "
            f"drops {run.get('packets_dropped', 0)}"
        )
    overall = document.get("overall_latency") or {}
    if overall:
        print(
            f"  latency mean {overall.get('mean_ns', 0.0):.0f} ns, "
            f"p50/p95/p99 {overall.get('p50_ns', 0.0):.0f}/"
            f"{overall.get('p95_ns', 0.0):.0f}/"
            f"{overall.get('p99_ns', 0.0):.0f} ns"
        )
        print()

    per_sid = document.get("per_sid_latency") or {}
    if per_sid:
        table = ExperimentTable(
            experiment_id="per-tenant latency",
            title="translation latency percentiles by SID (ns)",
            columns=["sid", "requests", "mean", "p50", "p95", "p99", "max"],
        )
        for sid in sorted(per_sid, key=int):
            summary = per_sid[sid]
            table.add_row(
                sid,
                summary.get("count", 0),
                summary.get("mean_ns", 0.0),
                summary.get("p50_ns", 0.0),
                summary.get("p95_ns", 0.0),
                summary.get("p99_ns", 0.0),
                summary.get("max_ns", 0.0),
            )
        print(table.render())
        if args.chart and len(per_sid) > 1:
            from repro.analysis.ascii_plot import AsciiChart

            chart = AsciiChart(title="p99 translation latency by SID (ns)")
            chart.add_series(
                "p99",
                [
                    (int(sid), per_sid[sid].get("p99_ns", 0.0))
                    for sid in sorted(per_sid, key=int)
                ],
            )
            print()
            print(chart.render())

    evictions = document.get("cross_tenant_evictions") or {}
    shown = {
        name: block for name, block in sorted(evictions.items())
        if block.get("total_cross_tenant")
    }
    if shown:
        print()
        table = ExperimentTable(
            experiment_id="cross-tenant evictions",
            title="entries evicted by another tenant (evictor -> victim)",
            columns=["cache", "pair", "evictions"],
        )
        for name, block in shown.items():
            pairs = sorted(
                (block.get("pairs") or {}).items(),
                key=lambda item: -item[1],
            )
            for pair, count in pairs[: args.top]:
                table.add_row(name, pair, count)
            if len(pairs) > args.top:
                table.add_note(
                    f"{name}: top {args.top} of {len(pairs)} pairs shown "
                    f"({block['total_cross_tenant']} cross-tenant evictions total)"
                )
        print(table.render())
    elif evictions:
        print()
        print("cross-tenant evictions: none recorded")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("experiments:")
    for name in sorted(ALL_EXPERIMENTS):
        print(f"  {name}")
    print("benchmarks:")
    for name in sorted(BENCHMARKS):
        profile = BENCHMARKS[name]
        print(
            f"  {name:12s} active translation set "
            f"{profile.active_translation_set}"
        )
    print("configs: base, hypertrio")
    from repro.runner.store import DEFAULT_RUNS_DIR, list_runs

    runs = list_runs(Path(DEFAULT_RUNS_DIR))
    if runs:
        print(f"runs ({DEFAULT_RUNS_DIR}):")
        for run_id in runs:
            print(f"  {run_id}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="HyperTRIO / HyperSIO reproduction (ISCA 2020)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser("simulate", help="run one configuration")
    _add_common_workload_args(simulate)
    _add_engine_arg(simulate)
    simulate.add_argument("--tenants", type=int, default=64)
    simulate.add_argument("--config", default="hypertrio", choices=sorted(_CONFIGS))
    simulate.add_argument(
        "--config-file", default=None,
        help="load an ArchConfig JSON file instead of a named preset "
             "(see repro.core.config_io)",
    )
    simulate.add_argument(
        "--devices", type=int, default=1, metavar="N",
        help="device paths sharing the chipset (default: 1, the paper's "
             "single device)",
    )
    simulate.add_argument(
        "--sid-map", default="round_robin", metavar="SPEC",
        help="SID->device routing: round_robin, hash, or "
             "explicit:SID=DEV,... (default: round_robin)",
    )
    simulate.add_argument("-v", "--verbose", action="store_true")
    simulate.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a per-request event trace (.json = Perfetto-loadable "
             "Chrome trace, .jsonl = one event per line)",
    )
    simulate.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write per-tenant metrics (latency percentiles, cross-tenant "
             "evictions) as JSON; view with 'repro-sim report-metrics'",
    )
    simulate.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="RATE",
        help="fraction of packets to trace, 0..1 (default: 1.0); sampling "
             "is deterministic for a given --seed",
    )
    simulate.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="inject faults from a FaultPlan JSON file (see repro.faults); "
             "runs are bit-reproducible for a given plan seed",
    )
    _add_trace_file_args(simulate)
    simulate.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write crash-safe checkpoints into DIR (enables checkpointing "
             "every 5000 packets unless --checkpoint-every says otherwise); "
             "SIGINT/SIGTERM flush a final checkpoint before exiting",
    )
    simulate.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="packets between checkpoints (0 = off unless --checkpoint-dir "
             "is given); a resumed run is byte-identical to an "
             "uninterrupted one",
    )
    simulate.add_argument(
        "--resume-from", default=None, metavar="PATH",
        help="restore a checkpoint file and run it to completion "
             "(workload/trace flags are ignored: the checkpoint carries "
             "the full engine state)",
    )
    simulate.set_defaults(func=_cmd_simulate)

    sweep = subparsers.add_parser("sweep", help="Base vs HyperTRIO tenant sweep")
    _add_common_workload_args(sweep, packets_default=None)
    _add_engine_arg(sweep)
    sweep.add_argument(
        "--tenants", default="4,16,64,256",
        help="comma-separated tenant counts (default: 4,16,64,256)",
    )
    sweep.add_argument(
        "--devices", default="1", metavar="COUNTS",
        help="comma-separated device counts to sweep alongside tenants "
             "(default: 1)",
    )
    sweep.add_argument(
        "--sid-map", default="round_robin", metavar="SPEC",
        help="SID->device routing for multi-device points "
             "(default: round_robin)",
    )
    sweep.add_argument("--chart", action="store_true", help="ASCII chart output")
    sweep.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write per-point latency percentiles and drop counts as JSON",
    )
    sweep.add_argument(
        "--fault-axis", default=None, metavar="RATES",
        help="comma-separated translation-fault probabilities to sweep "
             "(e.g. 0,0.01,0.05); each point runs under a seeded FaultPlan",
    )
    _add_trace_file_args(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    serve = subparsers.add_parser(
        "serve",
        help="translation-as-a-service TCP front end (docs/SERVICE.md)",
    )
    _add_common_workload_args(serve)
    serve.add_argument("--tenants", type=int, default=64)
    serve.add_argument(
        "--config", default="hypertrio", choices=sorted(_CONFIGS)
    )
    serve.add_argument(
        "--config-file", default=None,
        help="load an ArchConfig JSON file instead of a named preset",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default: 0 = ephemeral; the bound port is printed "
             "as 'listening on HOST:PORT')",
    )
    serve.add_argument(
        "--rate", type=float, default=None, metavar="REQ_PER_S",
        help="per-tenant token-bucket rate limit (default: unlimited); "
             "0 denies the tenant outright",
    )
    serve.add_argument(
        "--burst", type=int, default=64,
        help="token-bucket burst capacity (default: 64)",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=None, metavar="N",
        help="per-tenant in-flight request cap (default: unlimited)",
    )
    serve.add_argument(
        "--ptb-high-watermark", type=int, default=None, metavar="N",
        help="modeled PTB occupancy that triggers backpressure "
             "(default: off)",
    )
    serve.add_argument(
        "--ptb-low-watermark", type=int, default=None, metavar="N",
        help="occupancy that releases backpressure (default: half the "
             "high watermark)",
    )
    serve.add_argument(
        "--backpressure", default="shed", choices=("shed", "pause"),
        help="over the high watermark: 'shed' rejects with a typed error, "
             "'pause' stalls the device's virtual clock to the drain time",
    )
    serve.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="flush a warm-restart snapshot here on graceful shutdown "
             "(SIGTERM/SIGINT); restart with --resume-from PATH",
    )
    serve.add_argument(
        "--resume-from", default=None, metavar="PATH",
        help="warm-restart from a service checkpoint (workload flags are "
             "ignored: the checkpoint carries the full engine state)",
    )
    serve.add_argument(
        "--no-metrics", action="store_true",
        help="disable the live per-SID metrics registry (slightly faster; "
             "'stats' replies omit per_sid)",
    )
    serve.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="inject faults from a FaultPlan JSON file (see repro.faults)",
    )
    serve.add_argument(
        "--slo-rules", default=None, metavar="PATH",
        help="arm the SLO watch engine with a repro-slo/1 JSON rules file "
             "(p99 latency, drop rate, PTB dwell); breach state shows in "
             "'stats' replies and the prom export",
    )
    serve.add_argument(
        "--slo-backpressure", action="store_true",
        help="let an SLO breach latch admission backpressure until every "
             "rule recovers (requires --slo-rules)",
    )
    serve.add_argument(
        "--span-out", default=None, metavar="PATH",
        help="record wire-to-engine request spans and write them as a "
             "Perfetto-loadable Chrome trace on shutdown (enables phase "
             "profiling too; clients opt in per request via 'trace')",
    )
    serve.add_argument(
        "--max-frame-bytes", type=int, default=1 << 20, metavar="BYTES",
        help="reject request frames longer than this with a typed "
             "frame_too_large error (default: 1 MiB)",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=600.0, metavar="SECONDS",
        help="close connections with no traffic and no inflight work "
             "after this long (default: 600; 0 disables)",
    )
    serve.add_argument(
        "--frame-deadline", type=float, default=30.0, metavar="SECONDS",
        help="a started frame must finish (newline arrive) within this "
             "deadline or the peer is cut (default: 30; 0 disables)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=4096, metavar="N",
        help="per-connection inflight request cap; excess requests get a "
             "retryable typed error (default: 4096)",
    )
    serve.add_argument(
        "--max-write-buffer", type=int, default=8 << 20, metavar="BYTES",
        help="evict peers that let this many reply bytes pile up unread "
             "(default: 8 MiB)",
    )
    serve.set_defaults(func=_cmd_serve)

    chaos_proxy = subparsers.add_parser(
        "chaos-proxy",
        help="run a seeded wire-fault proxy in front of a serving "
             "instance (see docs/RESILIENCE.md)",
    )
    chaos_proxy.add_argument(
        "--upstream", required=True, metavar="HOST:PORT",
        help="the serving instance to proxy for",
    )
    chaos_proxy.add_argument(
        "--plan", default=None, metavar="PATH",
        help="NetworkFaultPlan JSON (see repro.faults.netchaos); omitted "
             "= byte-transparent relay",
    )
    chaos_proxy.add_argument("--host", default="127.0.0.1")
    chaos_proxy.add_argument(
        "--port", type=int, default=0,
        help="listen port (default: 0 = ephemeral, printed on start)",
    )
    chaos_proxy.set_defaults(func=_cmd_chaos_proxy)

    top = subparsers.add_parser(
        "top",
        help="live metrics view: poll a serving instance's 'stats', or "
             "aggregate a runner fleet's run directory",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument(
        "--port", type=int, default=7411,
        help="port of the serving instance (default: 7411)",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between polls (default: 2)",
    )
    top.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N renders (default: 0 = poll until interrupted)",
    )
    top.add_argument(
        "--format", default="table", choices=("table", "prom"),
        help="'table' is the per-SID terminal view; 'prom' prints the "
             "Prometheus exposition text verbatim",
    )
    top.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="offline fleet mode: aggregate DIR's heartbeat and result "
             "records instead of polling a server (see docs/RUNNER.md)",
    )
    top.add_argument(
        "--queue", default=None, metavar="PATH",
        help="also fold a distributed experiment queue database into the "
             "view: per-status job counts, per-worker claim/takeover "
             "counters, and live lease runway (combine with --run-dir)",
    )
    top.set_defaults(func=_cmd_top)

    bench = subparsers.add_parser(
        "bench",
        help="pinned benchmark matrix -> BENCH_<n>.json (throughput "
             "tracking)",
    )
    bench.add_argument(
        "--root", default=".",
        help="directory holding the BENCH_<n>.json series (default: .)",
    )
    bench.add_argument(
        "--output", default=None, metavar="PATH",
        help="explicit output path (default: next BENCH_<n>.json in --root)",
    )
    _add_engine_arg(bench)
    bench.add_argument(
        "--analytic-packets", type=int, default=6000,
        help="packet budget applied uniformly to every analytic-engine "
             "row — config comparison, profiled, runner, and "
             "checkpointed (default: 6000)",
    )
    bench.add_argument(
        "--service-packets", type=int, default=2500,
        help="packet budget for the service replay row (default: 2500)",
    )
    bench.add_argument(
        "--vector-packets", type=int, default=None, metavar="N",
        help="packet budget for the vectorized-vs-analytic pair "
             "(default: the pinned 102400-packet, 1024-tenant trace)",
    )
    bench.set_defaults(func=_cmd_bench)

    characterize = subparsers.add_parser(
        "characterize", help="single-tenant Figure 8 analysis"
    )
    characterize.add_argument(
        "--benchmark", default="mediastream", choices=sorted(BENCHMARKS)
    )
    characterize.add_argument("--packets", type=int, default=95_000)
    characterize.add_argument("--seed", type=int, default=0)
    characterize.add_argument(
        "--regular", action="store_true",
        help="disable the profile's irregularity (pure periodic stream)",
    )
    characterize.set_defaults(func=_cmd_characterize)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument("name", help="e.g. figure10, table3")
    experiment.add_argument("--scale", choices=("smoke", "default", "full"))
    experiment.set_defaults(func=_cmd_experiment)

    run = subparsers.add_parser(
        "run",
        help="parallel, resumable experiment run with a persistent "
             "result cache",
    )
    run.add_argument(
        "--experiment", required=True, help="driver name, e.g. figure10"
    )
    run.add_argument(
        "--jobs", type=int, default=0,
        help="worker processes (0 = all cores; 1 = in-process)",
    )
    run.add_argument("--scale", choices=("smoke", "default", "full"))
    run.add_argument(
        "--run-id", default=None,
        help="name of the result-store directory "
             "(default: <experiment>-<scale>; reuse to resume/re-use cache)",
    )
    run.add_argument(
        "--resume", metavar="RUN_ID", default=None,
        help="resume an existing run: executes only its missing points",
    )
    run.add_argument(
        "--runs-dir", default=".repro-runs",
        help="root directory for result stores (default: .repro-runs)",
    )
    run.add_argument(
        "--timeout", type=float, default=None,
        help="per-job timeout in seconds (hung workers are killed)",
    )
    run.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts per job lost to infrastructure failures — "
             "crashed or timed-out workers (default: 1); deterministic job "
             "errors fail fast regardless",
    )
    run.add_argument(
        "--no-progress", action="store_true",
        help="suppress progress/telemetry lines on stderr",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=5000, metavar="N",
        help="packets between worker checkpoints (0 = off; default: 5000); "
             "interrupted or killed jobs resume mid-simulation from the "
             "last checkpoint on 'run --resume'",
    )
    run.add_argument(
        "--heartbeat-timeout", type=float, default=None, metavar="SECONDS",
        help="watchdog: kill and requeue a worker whose heartbeat is older "
             "than this (detects silently hung workers; default: off)",
    )
    run.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="watchdog: per-job wall-clock deadline; jobs over it are "
             "killed and requeued under the retry budget (default: off)",
    )
    run.add_argument(
        "--memory-budget-mb", type=int, default=None, metavar="MB",
        help="watchdog: soft per-worker RSS budget; jobs over it are "
             "killed and requeued under the retry budget (default: off)",
    )
    run.add_argument(
        "--queue", default=None, metavar="PATH",
        help="distributed mode: pull jobs from a shared SQLite experiment "
             "queue instead of running the local plan directly; multiple "
             "invocations (multiple hosts) sharing PATH cooperate on one "
             "sweep, with lease-based takeover of dead workers' claims "
             "(see docs/RUNNER.md)",
    )
    run.add_argument(
        "--lease", type=float, default=30.0, metavar="SECONDS",
        help="queue mode: lease duration for claimed jobs; a worker silent "
             "longer than this loses its claims to survivors (default: 30)",
    )
    run.set_defaults(func=_cmd_run)

    report = subparsers.add_parser(
        "report-metrics",
        help="render a --metrics-out file as per-tenant tables",
    )
    report.add_argument("metrics_file", help="metrics JSON written by simulate")
    report.add_argument(
        "--chart", action="store_true",
        help="ASCII chart of p99 latency by SID",
    )
    report.add_argument(
        "--top", type=int, default=10,
        help="cross-tenant eviction pairs to show per cache (default: 10)",
    )
    report.set_defaults(func=_cmd_report_metrics)

    lister = subparsers.add_parser("list", help="list experiments and benchmarks")
    lister.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
