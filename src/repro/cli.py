"""Command-line interface for the HyperTRIO/HyperSIO reproduction.

Subcommands::

    repro-sim simulate    --benchmark mediastream --tenants 64 --config hypertrio
    repro-sim sweep       --benchmark websearch --interleaving RR4
    repro-sim characterize --benchmark mediastream --packets 95000
    repro-sim experiment  figure10 [--scale default]
    repro-sim list        # available experiments / benchmarks

Installed as the ``repro-sim`` console script (see pyproject.toml); also
runnable as ``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from typing import List, Optional

from repro.analysis.ascii_plot import chart_from_columns
from repro.analysis.experiments import ALL_EXPERIMENTS
from repro.analysis.scale import SCALE_ENV_VAR, RunScale, current_scale
from repro.analysis.sweeps import run_point
from repro.core.config import base_config, hypertrio_config
from repro.sim.simulator import HyperSimulator
from repro.trace.characterize import characterize_single_tenant
from repro.trace.collector import collect_single_tenant
from repro.trace.constructor import construct_trace
from repro.trace.tenant import BENCHMARKS, profile_by_name

_CONFIGS = {"base": base_config, "hypertrio": hypertrio_config}


def _add_common_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--benchmark", default="mediastream", choices=sorted(BENCHMARKS),
        help="workload profile (default: mediastream)",
    )
    parser.add_argument(
        "--interleaving", default="RR1",
        help="inter-tenant order: RR<n> or RAND<n> (default: RR1)",
    )
    parser.add_argument(
        "--packets", type=int, default=12_000,
        help="trace length cap in packets (default: 12000)",
    )
    parser.add_argument("--seed", type=int, default=0)


def _cmd_simulate(args: argparse.Namespace) -> int:
    trace = construct_trace(
        profile_by_name(args.benchmark),
        num_tenants=args.tenants,
        packets_per_tenant=200_000,
        interleaving=args.interleaving,
        seed=args.seed,
        max_packets=args.packets,
    )
    if args.config_file:
        from repro.core.config_io import load_config

        config = load_config(args.config_file)
    else:
        config = _CONFIGS[args.config]()
    result = HyperSimulator(config, trace).run(
        warmup_packets=len(trace.packets) // 4
    )
    print(result.summary())
    if args.verbose:
        for name, stats in sorted(result.cache_stats.items()):
            print(f"  {name:16s} hit {stats.hit_rate * 100:5.1f}% "
                  f"({stats.hits}/{stats.accesses})")
        print(f"  mean request latency {result.latency.mean_ns:.0f} ns, "
              f"drops {result.packets.dropped}")
        if result.prefetch_requests:
            print(f"  prefetch supplied "
                  f"{result.prefetch_supplied_fraction * 100:.1f}%")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    scale = current_scale()
    counts = [int(c) for c in args.tenants.split(",")]
    columns = {"Base": [], "HyperTRIO": []}
    for count in counts:
        for name, factory in (("Base", base_config), ("HyperTRIO", hypertrio_config)):
            point = run_point(
                factory(), args.benchmark, count, args.interleaving, scale
            )
            columns[name].append(point.utilization_percent)
            print(
                f"{name:10s} {count:5d} tenants: "
                f"{point.utilization_percent:5.1f}%"
            )
    if args.chart and len(counts) > 1:
        chart = chart_from_columns(
            f"{args.benchmark} / {args.interleaving}: link utilisation %",
            counts,
            columns,
            log_x=True,
        )
        print()
        print(chart.render())
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    profile = profile_by_name(args.benchmark)
    if args.regular:
        profile = dataclasses.replace(profile, jump_probability=0.0)
    log = collect_single_tenant(profile, packets=args.packets, seed=args.seed)
    analysis = characterize_single_tenant(log)
    print(f"benchmark {args.benchmark}: {analysis.total_requests} requests")
    for name in ("ring", "data", "init"):
        group = analysis.groups[name]
        print(
            f"  {name:5s}: {group.page_count:3d} pages, "
            f"{group.accesses_per_page:10.1f} accesses/page"
        )
    print(f"  periodic: {analysis.periodic}, "
          f"mean run length {analysis.mean_run_length:.0f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.scale:
        os.environ[SCALE_ENV_VAR] = args.scale
    driver = ALL_EXPERIMENTS.get(args.name)
    if driver is None:
        print(f"unknown experiment {args.name!r}; see 'repro-sim list'",
              file=sys.stderr)
        return 2
    import inspect

    kwargs = {}
    if "scale" in inspect.signature(driver).parameters:
        kwargs["scale"] = current_scale()
    table = driver(**kwargs)
    print(table.render())
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("experiments:")
    for name in sorted(ALL_EXPERIMENTS):
        print(f"  {name}")
    print("benchmarks:")
    for name in sorted(BENCHMARKS):
        profile = BENCHMARKS[name]
        print(
            f"  {name:12s} active translation set "
            f"{profile.active_translation_set}"
        )
    print("configs: base, hypertrio")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="HyperTRIO / HyperSIO reproduction (ISCA 2020)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser("simulate", help="run one configuration")
    _add_common_workload_args(simulate)
    simulate.add_argument("--tenants", type=int, default=64)
    simulate.add_argument("--config", default="hypertrio", choices=sorted(_CONFIGS))
    simulate.add_argument(
        "--config-file", default=None,
        help="load an ArchConfig JSON file instead of a named preset "
             "(see repro.core.config_io)",
    )
    simulate.add_argument("-v", "--verbose", action="store_true")
    simulate.set_defaults(func=_cmd_simulate)

    sweep = subparsers.add_parser("sweep", help="Base vs HyperTRIO tenant sweep")
    _add_common_workload_args(sweep)
    sweep.add_argument(
        "--tenants", default="4,16,64,256",
        help="comma-separated tenant counts (default: 4,16,64,256)",
    )
    sweep.add_argument("--chart", action="store_true", help="ASCII chart output")
    sweep.set_defaults(func=_cmd_sweep)

    characterize = subparsers.add_parser(
        "characterize", help="single-tenant Figure 8 analysis"
    )
    characterize.add_argument(
        "--benchmark", default="mediastream", choices=sorted(BENCHMARKS)
    )
    characterize.add_argument("--packets", type=int, default=95_000)
    characterize.add_argument("--seed", type=int, default=0)
    characterize.add_argument(
        "--regular", action="store_true",
        help="disable the profile's irregularity (pure periodic stream)",
    )
    characterize.set_defaults(func=_cmd_characterize)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument("name", help="e.g. figure10, table3")
    experiment.add_argument("--scale", choices=("smoke", "default", "full"))
    experiment.set_defaults(func=_cmd_experiment)

    lister = subparsers.add_parser("list", help="list experiments and benchmarks")
    lister.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
