"""Assembly of the full device + chipset translation path.

:func:`build_translation_path` instantiates, from an
:class:`~repro.core.config.ArchConfig`, every structure of Figure 6: the
(possibly partitioned) DevTLB, the Pending Translation Buffer, the Prefetch
Unit with its IOVA history, and the chipset IOMMU with its IOTLB, nested TLB
and PTE cache.  The returned :class:`TranslationPath` is what the
performance model drives.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from repro.cache.base import TranslationCache
from repro.cache.partitioned import PartitionedCache
from repro.cache.setassoc import FullyAssociativeCache, SetAssociativeCache
from repro.core.config import ArchConfig, TlbConfig
from repro.core.prefetch import IovaHistory, PrefetchUnit
from repro.core.ptb import PendingTranslationBuffer
from repro.device.devtlb import build_devtlb
from repro.iommu.context import ContextCache, ContextEntry
from repro.iommu.iommu import Iommu, IommuTimings
from repro.mem.dram import MainMemory


@dataclass
class TranslationPath:
    """All hardware structures of one device + chipset pair."""

    config: ArchConfig
    devtlb: TranslationCache
    ptb: PendingTranslationBuffer
    iommu: Iommu
    memory: MainMemory
    prefetch_unit: Optional[PrefetchUnit]
    iova_history: Optional[IovaHistory]
    context_cache: ContextCache

    def named_caches(self):
        """``(name, cache)`` pairs for every translation cache in the path
        (the names match :attr:`SimulationResult.cache_stats` keys)."""
        pairs = [
            ("devtlb", self.devtlb),
            ("iotlb", self.iommu.iotlb),
            ("nested_tlb", self.iommu.nested_tlb),
            ("pte_cache", self.iommu.pte_cache),
        ]
        if self.prefetch_unit is not None:
            pairs.append(("prefetch_buffer", self.prefetch_unit.buffer))
        return pairs


def attach_observability(path: TranslationPath, observability) -> None:
    """Wire an :class:`~repro.obs.Observability` bundle into ``path``.

    Currently this means installing cross-tenant eviction attribution
    listeners on every cache (the direct measurement behind the paper's
    isolation claim).  A disabled bundle — or one without an eviction
    layer — attaches nothing, leaving every hot path untouched.
    """
    if observability is None or not observability.enabled:
        return
    evictions = observability.evictions
    if evictions is None:
        return
    for name, cache in path.named_caches():
        cache.eviction_listener = evictions.listener_for(name)


def _build_tlb(
    tlb_config: TlbConfig,
    name: str,
    next_use: Optional[Callable[[Hashable], Optional[float]]] = None,
) -> TranslationCache:
    """Instantiate one cache from a :class:`TlbConfig`."""
    if tlb_config.fully_associative:
        return FullyAssociativeCache(
            num_entries=tlb_config.num_entries,
            policy=tlb_config.policy,
            name=name,
            next_use=next_use,
        )
    if tlb_config.num_partitions > 1:
        return PartitionedCache(
            num_entries=tlb_config.num_entries,
            ways=tlb_config.ways,
            num_partitions=tlb_config.num_partitions,
            policy=tlb_config.policy,
            name=name,
            next_use=next_use,
        )
    return SetAssociativeCache(
        num_entries=tlb_config.num_entries,
        ways=tlb_config.ways,
        policy=tlb_config.policy,
        name=name,
        next_use=next_use,
    )


def build_translation_path(
    config: ArchConfig,
    walker_for_sid: Callable[[int], object],
    sids=(),
    devtlb_next_use: Optional[Callable[[Hashable], Optional[float]]] = None,
) -> TranslationPath:
    """Build the Figure 6 hardware for ``config``.

    Parameters
    ----------
    walker_for_sid:
        Callback giving the IOMMU each tenant's two-dimensional walker
        (usually ``HyperTenantSystem.walker_for``).
    sids:
        Tenants to pre-register in the context cache's backing table.
    devtlb_next_use:
        Future-knowledge callable, required when the DevTLB policy is
        ``oracle``.
    """
    memory = MainMemory(latency_ns=config.timing.dram_latency_ns)
    devtlb = build_devtlb(
        num_entries=config.devtlb.num_entries,
        ways=config.devtlb.ways,
        num_partitions=config.devtlb.num_partitions,
        policy=config.devtlb.policy,
        fully_associative=config.devtlb.fully_associative,
        name="devtlb",
        next_use=devtlb_next_use,
    )
    context_cache = ContextCache()
    for sid in sids:
        context_cache.register(sid, ContextEntry(did=sid, root_table_hpa=0))
    iotlb_config = config.effective_chipset_iotlb
    if iotlb_config.policy.lower() == "oracle" and config.chipset_iotlb is None:
        # The chipset IOTLB only mirrors the DevTLB geometry; the oracle
        # studies (Figure 11b/c) idealise the DevTLB alone, so the mirrored
        # IOTLB falls back to the paper's default LFU policy.
        ways = 8 if iotlb_config.num_entries % 8 == 0 else 1
        iotlb_config = dataclasses.replace(
            iotlb_config, policy="lfu", fully_associative=False, ways=ways,
            num_partitions=1,
        )
    iommu = Iommu(
        iotlb=_build_tlb(iotlb_config, "iotlb"),
        nested_tlb=_build_tlb(config.l3_tlb, "nested-tlb"),
        pte_cache=_build_tlb(config.l2_tlb, "pte-cache"),
        walker_for_sid=walker_for_sid,
        memory=memory,
        context_cache=context_cache,
        timings=IommuTimings(
            iotlb_hit_ns=config.timing.iotlb_hit_ns,
            cache_hit_ns=config.timing.iotlb_hit_ns,
        ),
    )
    prefetch_unit = None
    iova_history = None
    if config.prefetch.enabled:
        prefetch_unit = PrefetchUnit(config.prefetch)
        iova_history = IovaHistory(depth=config.prefetch.pages_per_tenant)
    return TranslationPath(
        config=config,
        devtlb=devtlb,
        ptb=PendingTranslationBuffer(config.ptb_entries),
        iommu=iommu,
        memory=memory,
        prefetch_unit=prefetch_unit,
        iova_history=iova_history,
        context_cache=context_cache,
    )
