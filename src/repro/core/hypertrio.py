"""Assembly of the device + chipset translation path.

Historically this module built the *single* device + chipset pair of the
paper's Figure 6.  The hardware now lives in :mod:`repro.core.fabric`,
split into its two physical halves — :class:`~repro.core.fabric.DevicePath`
(DevTLB, PTB, Prefetch Unit) and :class:`~repro.core.fabric.ChipsetPath`
(IOMMU + caches, context cache, walker pool, IOVA history, DRAM) — which a
:class:`~repro.core.fabric.Fabric` composes N-of-one-behind.

:class:`TranslationPath` remains the single-device API: a *view* pairing
one device path with the shared chipset, exposing every structure under
its historical attribute name.  :func:`build_translation_path` builds a
one-device fabric and returns its view, so existing callers (the NIC
model, tests, examples) are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from repro.core.config import ArchConfig
from repro.core.fabric import ChipsetPath, DevicePath, Fabric


@dataclass
class TranslationPath:
    """One device path + the (possibly shared) chipset path.

    With one device this is exactly the paper's Figure 6 hardware; in a
    multi-device fabric each device gets its own view onto the shared
    chipset.  Attribute names match the pre-fabric ``TranslationPath`` so
    the simulator, NIC model, and tests read structures the same way.
    """

    config: ArchConfig
    device: DevicePath
    chipset: ChipsetPath

    # -- device-side structures ----------------------------------------
    @property
    def devtlb(self):
        return self.device.devtlb

    @property
    def ptb(self):
        return self.device.ptb

    @property
    def prefetch_unit(self):
        return self.device.prefetch_unit

    # -- chipset-side structures ---------------------------------------
    @property
    def iommu(self):
        return self.chipset.iommu

    @property
    def memory(self):
        return self.chipset.memory

    @property
    def context_cache(self):
        return self.chipset.context_cache

    @property
    def iova_history(self):
        return self.chipset.iova_history

    @property
    def walker_pool(self):
        return self.chipset.walker_pool

    def named_caches(self):
        """``(name, cache)`` pairs for every translation cache in the path
        (the names match :attr:`SimulationResult.cache_stats` keys)."""
        pairs = [
            ("devtlb", self.devtlb),
            ("iotlb", self.iommu.iotlb),
            ("nested_tlb", self.iommu.nested_tlb),
            ("pte_cache", self.iommu.pte_cache),
        ]
        if self.prefetch_unit is not None:
            pairs.append(("prefetch_buffer", self.prefetch_unit.buffer))
        return pairs


def attach_observability(path, observability) -> None:
    """Wire an :class:`~repro.obs.Observability` bundle into ``path``.

    ``path`` is anything exposing ``named_caches()`` — a
    :class:`TranslationPath` view or a whole
    :class:`~repro.core.fabric.Fabric` (whose cache names carry a
    ``dev<i>.`` prefix when more than one device exists).  Currently this
    means installing cross-tenant eviction attribution listeners on every
    cache (the direct measurement behind the paper's isolation claim).  A
    disabled bundle — or one without an eviction layer — attaches nothing,
    leaving every hot path untouched.
    """
    if observability is None or not observability.enabled:
        return
    evictions = observability.evictions
    if evictions is None:
        return
    for name, cache in path.named_caches():
        cache.eviction_listener = evictions.listener_for(name)


def build_translation_path(
    config: ArchConfig,
    walker_for_sid: Callable[[int], object],
    sids=(),
    devtlb_next_use: Optional[Callable[[Hashable], Optional[float]]] = None,
) -> TranslationPath:
    """Build the Figure 6 hardware for ``config`` (single-device view).

    Always assembles exactly one device path regardless of
    ``config.devices.count`` — multi-device callers build a
    :class:`~repro.core.fabric.Fabric` directly.

    Parameters
    ----------
    walker_for_sid:
        Callback giving the IOMMU each tenant's two-dimensional walker
        (usually ``HyperTenantSystem.walker_for``).
    sids:
        Tenants to pre-register in the context cache's backing table.
    devtlb_next_use:
        Future-knowledge callable, required when the DevTLB policy is
        ``oracle``.
    """
    if config.devices.count != 1:
        from repro.core.config import DeviceConfig

        config = config.with_overrides(devices=DeviceConfig())
    fabric = Fabric(
        config, walker_for_sid, sids=sids, devtlb_next_use=devtlb_next_use
    )
    return fabric.view(0)
