"""Configuration presets for the performance model.

:class:`TimingParams` captures the paper's Table II (system parameters used
by the performance simulator); :class:`ArchConfig` captures Table IV (the
architectural parameters of the *Base* and *HyperTRIO* designs).  The
factory functions :func:`base_config` and :func:`hypertrio_config` return
the exact configurations evaluated in the paper; individual studies override
single fields via :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


@dataclass(frozen=True)
class TimingParams:
    """Latency and link parameters (Table II).

    Attributes
    ----------
    pcie_one_way_ns:
        One-way PCIe traversal between device and chipset (450 ns).
    dram_latency_ns:
        One DRAM access (50 ns).
    iotlb_hit_ns:
        Hit latency of translation caches (2 ns) — used for the DevTLB,
        IOTLB, nested TLBs, and the prefetch buffer alike.
    packet_bytes:
        Ethernet packet plus inter-packet gap (1542 B).
    link_bandwidth_gbps:
        Nominal I/O link rate (200 Gb/s in the evaluation, 10 Gb/s in the
        motivational case study).
    fault_max_retries:
        Degraded-mode retries when fault injection makes an IOMMU
        translation attempt fault (not-present); exhausting the budget
        drops the packet with cause ``translation_fault``.
    fault_backoff_ns:
        Base of the capped exponential backoff between those retries
        (attempt ``k`` waits ``fault_backoff_ns * 2**k``).
    """

    pcie_one_way_ns: float = 450.0
    dram_latency_ns: float = 50.0
    iotlb_hit_ns: float = 2.0
    packet_bytes: int = 1542
    link_bandwidth_gbps: float = 200.0
    fault_max_retries: int = 3
    fault_backoff_ns: float = 200.0

    @property
    def packet_interarrival_ns(self) -> float:
        """Time between back-to-back packets on a saturated link.

        1542 B at 200 Gb/s is ~61.7 ns, matching the paper's "1500B packet
        arrives every 62 ns" for a 200 Gb/s link.
        """
        bits = self.packet_bytes * 8
        return bits / self.link_bandwidth_gbps

    @property
    def full_walk_latency_ns(self) -> float:
        """Cold two-dimensional walk plus PCIe round trip (sanity metric)."""
        return 2 * self.pcie_one_way_ns + 24 * self.dram_latency_ns


@dataclass(frozen=True)
class TlbConfig:
    """One translation cache's geometry and policy."""

    num_entries: int
    ways: int
    num_partitions: int = 1
    policy: str = "lfu"
    fully_associative: bool = False

    def __post_init__(self):
        if self.num_entries < 1:
            raise ValueError("num_entries must be positive")
        if not self.fully_associative:
            if self.num_entries % self.ways != 0:
                raise ValueError("num_entries must be divisible by ways")
            num_sets = self.num_entries // self.ways
            if num_sets % self.num_partitions != 0:
                raise ValueError("partitions must evenly divide sets")


@dataclass(frozen=True)
class PrefetchConfig:
    """Translation Prefetching Scheme parameters (Table IV).

    ``buffer_entries``: fully-associative Prefetch Buffer size (8).
    ``history_length``: SID-predictor stride in packets — the predictor
    learns which SID appears ``history_length`` accesses after the current
    one, so prefetches are issued just far enough ahead to hide the
    translation latency.  The paper's Table IV uses 48 for the authors'
    latencies; the host is expected to retune it when the system changes
    (Section III), and for this model's latencies the just-in-time optimum
    is 36 (see ``benchmarks/bench_ablation_prefetch.py`` for the sweep).
    ``pages_per_tenant``: most-recent gIOVAs replayed per prefetch (2).
    """

    enabled: bool = False
    buffer_entries: int = 8
    history_length: int = 36
    pages_per_tenant: int = 2


#: SID -> device mapping schemes accepted by :class:`DeviceConfig`.
SID_MAP_SCHEMES = ("round_robin", "hash", "explicit")


@dataclass(frozen=True)
class DeviceConfig:
    """The I/O-fabric dimension: how many devices share the chipset.

    A hyper-tenant host typically places several NICs/accelerators behind
    one IOMMU; ``count`` instantiates that many identical device paths
    (DevTLB + PTB + Prefetch Unit each), all translating through the single
    shared chipset.  ``sid_map`` routes tenants to devices:

    * ``round_robin`` — ``device = sid % count`` (tenants striped evenly);
    * ``hash`` — a multiplicative hash of the SID (uneven but stationary,
      models hash-based queue/function assignment);
    * ``explicit`` — ``explicit_map`` pairs ``(sid, device)`` pin tenants
      to devices; unmapped SIDs fall back to round-robin.

    The default (``count=1``) is the paper's single device + chipset pair
    and is behaviour-identical to the pre-fabric model.
    """

    count: int = 1
    sid_map: str = "round_robin"
    explicit_map: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self):
        if self.count < 1:
            raise ValueError("device count must be >= 1")
        if self.sid_map not in SID_MAP_SCHEMES:
            raise ValueError(
                f"sid_map must be one of {SID_MAP_SCHEMES}, got {self.sid_map!r}"
            )
        for pair in self.explicit_map:
            if len(pair) != 2:
                raise ValueError(f"explicit_map entries are (sid, device): {pair!r}")
            sid, device = pair
            if not 0 <= device < self.count:
                raise ValueError(
                    f"explicit_map routes sid {sid} to device {device}, but only "
                    f"{self.count} devices exist"
                )

    def device_for(self, sid: int) -> int:
        """The device index tenant ``sid``'s traffic arrives on."""
        if self.count == 1:
            return 0
        if self.sid_map == "explicit":
            for mapped_sid, device in self.explicit_map:
                if mapped_sid == sid:
                    return device
            return sid % self.count
        if self.sid_map == "hash":
            # Knuth multiplicative hash: stationary but deliberately uneven
            # for small SID ranges (models hash-based queue assignment).
            return ((sid * 0x9E3779B1) & 0xFFFFFFFF) % self.count
        return sid % self.count


@dataclass(frozen=True)
class ArchConfig:
    """A complete I/O fabric architecture (one column of Table IV).

    ``devices`` adds the fabric dimension on top of the paper's columns:
    how many device paths sit in front of the shared chipset (default one,
    the paper's configuration).
    """

    name: str
    ptb_entries: int
    devtlb: TlbConfig
    l2_tlb: TlbConfig
    l3_tlb: TlbConfig
    prefetch: PrefetchConfig = field(default_factory=PrefetchConfig)
    timing: TimingParams = field(default_factory=TimingParams)
    #: Chipset IOTLB geometry; ``None`` mirrors the DevTLB geometry (the
    #: paper notes the DevTLB is sized "the same as the number of IOTLB
    #: entries in Intel's design").
    chipset_iotlb: Optional[TlbConfig] = None
    #: Concurrent page-table walkers in the IOMMU; ``None`` = unbounded.
    iommu_walkers: Optional[int] = None
    #: The multi-device fabric dimension (default: one device).
    devices: DeviceConfig = field(default_factory=DeviceConfig)

    @property
    def effective_chipset_iotlb(self) -> TlbConfig:
        """The chipset IOTLB geometry actually used."""
        return self.chipset_iotlb if self.chipset_iotlb is not None else self.devtlb

    def with_overrides(self, **kwargs) -> "ArchConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def base_config(timing: Optional[TimingParams] = None) -> ArchConfig:
    """The paper's *Base* column of Table IV.

    One-entry PTB (a single outstanding translation), unpartitioned 64-entry
    8-way LFU DevTLB, unpartitioned 512/1024-entry 16-way LFU L2/L3 TLBs,
    no prefetching.
    """
    return ArchConfig(
        name="Base",
        ptb_entries=1,
        devtlb=TlbConfig(num_entries=64, ways=8, num_partitions=1, policy="lfu"),
        l2_tlb=TlbConfig(num_entries=512, ways=16, num_partitions=1, policy="lfu"),
        l3_tlb=TlbConfig(num_entries=1024, ways=16, num_partitions=1, policy="lfu"),
        prefetch=PrefetchConfig(enabled=False),
        timing=timing or TimingParams(),
    )


def hypertrio_config(timing: Optional[TimingParams] = None) -> ArchConfig:
    """The paper's *HyperTRIO* column of Table IV.

    32-entry PTB, 8-partition DevTLB, 32/64-partition L2/L3 TLBs, and the
    prefetching scheme (8-entry buffer, 48-access stride, 2 pages of history
    per tenant).
    """
    return ArchConfig(
        name="HyperTRIO",
        ptb_entries=32,
        devtlb=TlbConfig(num_entries=64, ways=8, num_partitions=8, policy="lfu"),
        l2_tlb=TlbConfig(num_entries=512, ways=16, num_partitions=32, policy="lfu"),
        l3_tlb=TlbConfig(num_entries=1024, ways=16, num_partitions=64, policy="lfu"),
        prefetch=PrefetchConfig(
            enabled=True, buffer_entries=8, history_length=36, pages_per_tenant=2
        ),
        timing=timing or TimingParams(),
    )


def case_study_timing() -> TimingParams:
    """Timing for the 10 Gb/s motivational case study (Figures 4-5)."""
    return TimingParams(link_bandwidth_gbps=10.0)
