"""Pending Translation Buffer (PTB).

The PTB sits on the device and tracks in-flight gIOVA -> hPA translations,
allowing out-of-order completion so a long two-dimensional walk does not
head-of-line-block other requests (Section III).  A packet that arrives when
no PTB entry is free is dropped and retried at the next arrival slot.

Each *translation request* occupies one entry from issue to completion —
the paper sizes the buffer by outstanding requests (112 for full walks at
200 Gb/s), and the Base design's single entry serialises every request.

The timing model here is analytic rather than event-queued: entries are a
min-heap of completion times, so occupancy at any time ``t`` is the number
of completion times still greater than ``t``.  This is exact for the
paper's model because a request's latency is fully determined at issue.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List


@dataclass
class PtbStats:
    """Occupancy and admission accounting."""

    issued: int = 0
    rejected_packets: int = 0
    max_occupancy: int = 0
    #: Sum of occupancy sampled at each issue (for mean occupancy).
    occupancy_accumulator: int = 0
    #: Total time requests spent waiting for a free entry before issue —
    #: the head-of-line blocking the paper's single-entry Base design
    #: suffers, surfaced directly instead of only via stretched elapsed
    #: time.
    total_wait_ns: float = 0.0

    @property
    def mean_occupancy(self) -> float:
        return self.occupancy_accumulator / self.issued if self.issued else 0.0

    @property
    def mean_wait_ns(self) -> float:
        return self.total_wait_ns / self.issued if self.issued else 0.0


class PendingTranslationBuffer:
    """Fixed-capacity buffer of in-flight translation completion times."""

    def __init__(self, num_entries: int):
        if num_entries < 1:
            raise ValueError("PTB needs at least one entry")
        self.num_entries = num_entries
        #: Entries currently leaked (unusable) by fault injection.
        self._leaked = 0
        self._completions: List[float] = []
        self.stats = PtbStats()

    @property
    def effective_entries(self) -> int:
        """Usable capacity: nominal entries minus leaked ones (>= 1)."""
        return max(1, self.num_entries - self._leaked)

    def set_leak(self, leaked: int) -> None:
        """Mark ``leaked`` entries as unusable (fault injection).

        Clamped so at least one entry always remains usable — forward
        progress is preserved even under a pathological leak plan.
        """
        self._leaked = min(max(0, leaked), self.num_entries - 1)

    # ------------------------------------------------------------------
    def _drain(self, now: float) -> None:
        """Release entries whose translations completed by ``now``."""
        completions = self._completions
        while completions and completions[0] <= now:
            heapq.heappop(completions)

    def occupancy(self, now: float) -> int:
        """Entries still in flight at time ``now``."""
        self._drain(now)
        return len(self._completions)

    def can_accept(self, now: float) -> bool:
        """Whether at least one entry is free at ``now`` (packet admission)."""
        return self.occupancy(now) < self.effective_entries

    def earliest_free_time(self, now: float) -> float:
        """Earliest time a request issued at/after ``now`` can claim an entry.

        ``now`` itself when an entry is already free, otherwise the soonest
        completion time in the buffer.
        """
        self._drain(now)
        if len(self._completions) < self.effective_entries:
            return now
        return self._completions[0]

    def drain_time_to(self, target_occupancy: int) -> float:
        """Earliest time at which occupancy is <= ``target_occupancy``.

        Used by the service layer's pause-mode backpressure: with the
        buffer above its high watermark, the link is stalled until enough
        in-flight translations complete to fall back to the low watermark.
        Returns 0.0 when occupancy is already at or below the target.
        """
        if target_occupancy < 0:
            target_occupancy = 0
        excess = len(self._completions) - target_occupancy
        if excess <= 0:
            return 0.0
        # The occupancy drops to the target when the ``excess``-th smallest
        # completion time passes.
        return heapq.nsmallest(excess, self._completions)[-1]

    def issue(self, now: float, latency_ns: float) -> float:
        """Claim an entry for a request issued at ``now``.

        The request may have to wait for an entry (requests of an accepted
        packet queue behind the buffer, as in the paper's Base design where
        a packet's three translations trickle through the single entry).
        Returns the completion time.
        """
        if latency_ns < 0:
            raise ValueError("latency cannot be negative")
        start = self.earliest_free_time(now)
        self.stats.total_wait_ns += start - now
        if len(self._completions) >= self.effective_entries:
            # earliest_free_time returned a completion in the future: that
            # entry is the one we will reuse.
            heapq.heappop(self._completions)
        completion = start + latency_ns
        heapq.heappush(self._completions, completion)
        self.stats.issued += 1
        occupancy = len(self._completions)
        self.stats.occupancy_accumulator += occupancy
        if occupancy > self.stats.max_occupancy:
            self.stats.max_occupancy = occupancy
        return completion

    def reject_packet(self) -> None:
        """Record a packet drop caused by a full buffer."""
        self.stats.rejected_packets += 1

    def drain_all(self) -> float:
        """Return the completion time of the last in-flight request (or 0)."""
        return max(self._completions) if self._completions else 0.0

    def flush(self) -> int:
        """Discard all in-flight entries (device reset), keeping stats.

        Returns how many entries were discarded.
        """
        discarded = len(self._completions)
        self._completions.clear()
        return discarded

    def reset(self) -> None:
        self._completions.clear()
        self._leaked = 0
        self.stats = PtbStats()
