"""Translation Prefetching Scheme: Prefetch Unit + IOVA history reader.

The Prefetch Unit (PU) lives on the device and has two parts (Section III):

* the **Prefetch Buffer (PB)** — a small fully-associative cache of
  gIOVA -> hPA translations shared by all tenants, populated by completed
  prefetches and checked concurrently with the DevTLB;
* the **SID predictor** — a direct-mapped table from the currently accessed
  SID to a predicted future SID, learned from the observed SID stream with a
  host-configured *history length* register (how many accesses ahead the
  prediction targets).

The chipset-side **IOVA history reader** keeps each tenant's most recently
accessed gIOVAs in main memory; when the PU predicts a SID, the reader
fetches that tenant's two most recent gIOVAs and issues IOMMU translations
for them (which also warms the nested TLBs).

Timing is handled by the simulator; this module owns state, prediction, and
accounting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.cache.setassoc import FullyAssociativeCache
from repro.core.config import PrefetchConfig


@dataclass
class PrefetchStats:
    """Accuracy/coverage accounting for the prefetching scheme."""

    predictions: int = 0
    prefetch_requests: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    useless_prefetches: int = 0
    #: Prefetches that completed and were installed at the device; the gap
    #: to :attr:`supplied_translations` is translations fetched but never
    #: used before eviction (the prefetcher's wasted work).
    installs: int = 0
    #: Demand translations answered by a prefetched entry — whether it was
    #: found in the Prefetch Buffer or in the DevTLB row the prefetch
    #: completion installed it into (the paper's "valid translation from a
    #: Prefetch Buffer" metric).
    supplied_translations: int = 0

    @property
    def buffer_hit_rate(self) -> float:
        total = self.buffer_hits + self.buffer_misses
        return self.buffer_hits / total if total else 0.0


class SidPredictor:
    """Direct-mapped SID -> predicted-SID table with a history window.

    On every access the predictor learns ``table[sid seen H accesses ago] =
    current sid``, where ``H`` is the history length.  Under round-robin
    interleaving this converges to ``table[s] = (s + H) mod n`` after one
    window, giving the PU exactly ``H`` packet slots of lead time.
    """

    def __init__(self, history_length: int):
        if history_length < 1:
            raise ValueError("history_length must be >= 1")
        self.history_length = history_length
        self._window: Deque[int] = deque(maxlen=history_length)
        self._table: Dict[int, int] = {}

    def observe(self, sid: int) -> None:
        """Record one SID from the device's request stream."""
        if len(self._window) == self.history_length:
            anchor = self._window[0]
            self._table[anchor] = sid
        self._window.append(sid)

    def predict(self, sid: int) -> Optional[int]:
        """SID expected ~history_length accesses after ``sid``, if known."""
        return self._table.get(sid)

    def reconfigure(self, history_length: int) -> None:
        """Host update after tenant add/remove or bandwidth change."""
        if history_length < 1:
            raise ValueError("history_length must be >= 1")
        self.history_length = history_length
        self._window = deque(self._window, maxlen=history_length)
        self._table.clear()

    def __len__(self) -> int:
        return len(self._table)


class IovaHistory:
    """Per-DID record of recently accessed gIOVA pages (kept in DRAM).

    Hardware cost is independent of tenant count because the history lives
    in main memory; the reader is just a state machine (Section III).
    """

    def __init__(self, depth: int = 2):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        self._recent: Dict[int, Deque[int]] = {}

    def record(self, sid: int, giova_page: int) -> None:
        """Note that ``sid`` accessed ``giova_page`` (deduplicated MRU)."""
        history = self._recent.get(sid)
        if history is None:
            history = deque(maxlen=self.depth)
            self._recent[sid] = history
        if giova_page in history:
            history.remove(giova_page)
        history.append(giova_page)

    def most_recent(self, sid: int) -> List[int]:
        """Most recent distinct pages for ``sid``, newest first."""
        history = self._recent.get(sid)
        if not history:
            return []
        return list(reversed(history))

    def forget(self, sid: int) -> None:
        """Drop history on tenant removal."""
        self._recent.pop(sid, None)


class PrefetchUnit:
    """Device-side PU: prefetch buffer + SID predictor.

    The simulator calls :meth:`lookup` concurrently with the DevTLB,
    :meth:`observe_and_predict` on every request to drive training and get
    prefetch candidates, and :meth:`install` when a prefetch completes.
    """

    def __init__(self, config: PrefetchConfig):
        self.config = config
        self.buffer = FullyAssociativeCache(
            num_entries=config.buffer_entries, policy="lru", name="prefetch-buffer"
        )
        self.predictor = SidPredictor(config.history_length)
        self.stats = PrefetchStats()

    def lookup(self, sid: int, giova_page: int) -> Optional[Tuple[int, int]]:
        """Check the PB for a valid translation; returns (hpa, page_shift)."""
        value = self.buffer.lookup((sid, giova_page))
        if value is not None:
            self.stats.buffer_hits += 1
            return value
        self.stats.buffer_misses += 1
        return None

    def observe_and_predict(self, sid: int) -> Optional[int]:
        """Train on ``sid`` and return a predicted SID to prefetch for."""
        self.predictor.observe(sid)
        predicted = self.predictor.predict(sid)
        if predicted is not None:
            self.stats.predictions += 1
        return predicted

    def install(self, sid: int, giova_page: int, hpa: int, page_shift: int) -> None:
        """Insert a completed prefetch into the PB."""
        self.stats.installs += 1
        self.buffer.insert((sid, giova_page), (hpa, page_shift))

    def note_prefetch_issued(self, count: int = 1) -> None:
        self.stats.prefetch_requests += count
