"""Result records produced by the performance model.

A :class:`SimulationResult` captures everything the paper's figures report:
achieved bandwidth / link utilisation, packet admission statistics, and the
hit rates of every structure in the translation path.  Results are plain
dataclasses so sweeps can tabulate them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.base import CacheStats
from repro.core.ptb import PtbStats
from repro.device.packet import PacketStats
from repro.mem.dram import DramStats
from repro.obs.metrics import latency_bucket, percentile_from_buckets


@dataclass
class RequestLatencyStats:
    """Aggregate translation-request latency accounting.

    Besides the exact count/total/min/max, every recorded latency lands in
    a log-spaced bucket (shared with :mod:`repro.obs.metrics`), so any
    percentile of the distribution can be recovered via
    :meth:`percentile` — the tail behaviour the paper's figures are
    actually about, at a few dozen integers of state.
    """

    count: int = 0
    total_ns: float = 0.0
    max_ns: float = 0.0
    min_ns: float = 0.0
    #: Log-bucket id -> observation count (see
    #: :func:`repro.obs.metrics.latency_bucket`).
    buckets: Dict[int, int] = field(default_factory=dict)

    def record(self, latency_ns: float) -> None:
        if self.count == 0 or latency_ns < self.min_ns:
            self.min_ns = latency_ns
        self.count += 1
        self.total_ns += latency_ns
        if latency_ns > self.max_ns:
            self.max_ns = latency_ns
        bucket = latency_bucket(latency_ns)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Histogram-backed ``p``-th percentile (``0 <= p <= 100``).

        Accurate to within half a log bucket (< ~6 % relative error);
        0.0 when nothing was recorded.
        """
        return percentile_from_buckets(self.buckets, self.count, p)


@dataclass
class DeviceResult:
    """Per-device breakdown of one multi-device fabric run.

    Each device of the fabric gets its own link-level packet accounting,
    translation-latency distribution, PTB stats, and device-local cache
    stats, plus its share of the *shared* chipset: how often its misses hit
    the shared IOTLB and how long they queued for the bounded walker pool
    — the cross-device contention the fabric experiments measure.
    """

    device_id: int
    packets: PacketStats
    latency: RequestLatencyStats
    ptb: PtbStats
    elapsed_ns: float
    achieved_bandwidth_gbps: float
    cache_stats: Dict[str, CacheStats] = field(default_factory=dict)
    #: Shared-IOTLB outcomes of this device's DevTLB misses.
    iotlb_hits: int = 0
    iotlb_misses: int = 0
    #: Time this device's walks queued behind other devices' walks.
    walker_queue_delay_ns: float = 0.0
    invalidation_messages: int = 0

    @property
    def iotlb_hit_rate(self) -> float:
        total = self.iotlb_hits + self.iotlb_misses
        return self.iotlb_hits / total if total else 0.0


@dataclass
class FabricStats:
    """Shared-chipset aggregates of one multi-device run."""

    num_devices: int
    sid_map: str
    #: Jobs served by the shared walker pool and their accumulated queue
    #: delay (cross-device walker contention).
    walker_jobs: int = 0
    walker_total_queue_delay_ns: float = 0.0

    @property
    def walker_mean_queue_delay_ns(self) -> float:
        return (
            self.walker_total_queue_delay_ns / self.walker_jobs
            if self.walker_jobs
            else 0.0
        )


@dataclass
class SimulationResult:
    """Output of one :class:`~repro.sim.simulator.HyperSimulator` run."""

    config_name: str
    benchmark: str
    num_tenants: int
    interleaving: str
    link_bandwidth_gbps: float
    elapsed_ns: float
    achieved_bandwidth_gbps: float
    packets: PacketStats
    latency: RequestLatencyStats
    ptb: PtbStats
    dram: DramStats
    cache_stats: Dict[str, CacheStats] = field(default_factory=dict)
    prefetch_buffer_hit_rate: float = 0.0
    prefetch_requests: int = 0
    prefetch_supplied: int = 0
    #: ATS invalidation messages processed (driver unmap events).
    invalidation_messages: int = 0
    #: Translation-latency percentiles (``p50_ns``/``p95_ns``/``p99_ns``),
    #: filled from :attr:`latency`'s histogram when the simulator builds
    #: the result.
    percentiles: Dict[str, float] = field(default_factory=dict)
    #: Per-device breakdowns; populated only for multi-device fabrics
    #: (``devices.count > 1``) — with one device the top-level fields *are*
    #: that device, and single-device serialisations stay byte-identical to
    #: the pre-fabric model.
    device_results: List[DeviceResult] = field(default_factory=list)
    #: Shared-chipset aggregates; ``None`` for single-device runs.
    fabric: Optional[FabricStats] = None
    #: Host-time cost attribution of the hot path's phases
    #: (``lookup`` / ``walk`` / ``ptb`` — see :mod:`repro.obs.phases`),
    #: filled only when a :class:`~repro.obs.phases.PhaseProfiler` was
    #: attached; empty otherwise so serialisations stay byte-identical.
    phase_profile: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def num_devices(self) -> int:
        """Devices in the fabric this result came from."""
        return len(self.device_results) if self.device_results else 1

    @property
    def prefetch_supplied_fraction(self) -> float:
        """Fraction of demand translations answered by a prefetched entry
        (the paper reports 45 % for websearch at 1024 tenants)."""
        return self.prefetch_supplied / self.latency.count if self.latency.count else 0.0

    @property
    def link_utilization(self) -> float:
        """Fraction of the nominal link bandwidth actually used (0..1)."""
        if self.link_bandwidth_gbps <= 0:
            return 0.0
        return min(1.0, self.achieved_bandwidth_gbps / self.link_bandwidth_gbps)

    def hit_rate(self, structure: str) -> float:
        """Hit rate of a named structure (``devtlb``, ``iotlb``, ...)."""
        return self.cache_stats[structure].hit_rate

    def miss_rate(self, structure: str) -> float:
        return self.cache_stats[structure].miss_rate

    def summary(self) -> str:
        """One-line human-readable summary (used by examples)."""
        line = (
            f"{self.config_name:10s} {self.benchmark:12s} "
            f"{self.num_tenants:5d} tenants {self.interleaving:6s} "
            f"{self.achieved_bandwidth_gbps:7.1f} Gb/s "
            f"({self.link_utilization * 100.0:5.1f}% of link), "
            f"drops {self.packets.dropped}, "
            f"devtlb hit {self.hit_rate('devtlb') * 100.0:5.1f}%, "
            f"lat p50/p95/p99 {self.latency.percentile(50):.0f}/"
            f"{self.latency.percentile(95):.0f}/"
            f"{self.latency.percentile(99):.0f} ns"
        )
        # Fault-injected drop causes (anything beyond the paper's
        # PTB-overflow drop-and-retry) get called out explicitly.
        injected = {
            cause: count
            for cause, count in self.packets.drop_causes.items()
            if cause != "ptb_overflow" and count
        }
        if injected:
            detail = ", ".join(
                f"{cause}={count}" for cause, count in sorted(injected.items())
            )
            line += f" [drops by cause: {detail}]"
        if self.phase_profile:
            from repro.obs.phases import format_phase_profile

            line += f" [host phases: {format_phase_profile(self.phase_profile)}]"
        return line
