"""JSON (de)serialisation of architecture configurations.

Experiments should be reproducible from a file, not from code edits:
``config_to_json`` / ``config_from_json`` round-trip an
:class:`~repro.core.config.ArchConfig`, and the CLI's ``--config-file``
option loads one.  The format is a plain nested JSON object mirroring the
dataclass structure, with unknown keys rejected (typos should fail
loudly, not run the wrong experiment).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

from repro.core.config import (
    ArchConfig,
    DeviceConfig,
    PrefetchConfig,
    TimingParams,
    TlbConfig,
)


class ConfigFormatError(ValueError):
    """Raised when a configuration document does not parse."""


def _check_keys(raw: Dict[str, Any], allowed, context: str) -> None:
    unknown = set(raw) - set(allowed)
    if unknown:
        raise ConfigFormatError(
            f"{context}: unknown keys {sorted(unknown)}; allowed: "
            f"{sorted(allowed)}"
        )


def _tlb_to_dict(tlb: TlbConfig) -> Dict[str, Any]:
    return {
        "num_entries": tlb.num_entries,
        "ways": tlb.ways,
        "num_partitions": tlb.num_partitions,
        "policy": tlb.policy,
        "fully_associative": tlb.fully_associative,
    }


def _tlb_from_dict(raw: Dict[str, Any], context: str) -> TlbConfig:
    _check_keys(
        raw,
        ("num_entries", "ways", "num_partitions", "policy", "fully_associative"),
        context,
    )
    try:
        return TlbConfig(**raw)
    except (TypeError, ValueError) as error:
        raise ConfigFormatError(f"{context}: {error}") from None


def config_to_dict(config: ArchConfig) -> Dict[str, Any]:
    """Serialise ``config`` to plain JSON-compatible data."""
    timing = config.timing
    prefetch = config.prefetch
    document: Dict[str, Any] = {
        "name": config.name,
        "ptb_entries": config.ptb_entries,
        "devtlb": _tlb_to_dict(config.devtlb),
        "l2_tlb": _tlb_to_dict(config.l2_tlb),
        "l3_tlb": _tlb_to_dict(config.l3_tlb),
        "prefetch": {
            "enabled": prefetch.enabled,
            "buffer_entries": prefetch.buffer_entries,
            "history_length": prefetch.history_length,
            "pages_per_tenant": prefetch.pages_per_tenant,
        },
        "timing": {
            "pcie_one_way_ns": timing.pcie_one_way_ns,
            "dram_latency_ns": timing.dram_latency_ns,
            "iotlb_hit_ns": timing.iotlb_hit_ns,
            "packet_bytes": timing.packet_bytes,
            "link_bandwidth_gbps": timing.link_bandwidth_gbps,
        },
        "iommu_walkers": config.iommu_walkers,
    }
    # The fault-handling knobs follow the `devices` precedent: omitted at
    # their defaults so pre-fault documents — and their content hashes in
    # the result store — are unchanged.
    timing_defaults = TimingParams()
    if timing.fault_max_retries != timing_defaults.fault_max_retries:
        document["timing"]["fault_max_retries"] = timing.fault_max_retries
    if timing.fault_backoff_ns != timing_defaults.fault_backoff_ns:
        document["timing"]["fault_backoff_ns"] = timing.fault_backoff_ns
    if config.chipset_iotlb is not None:
        document["chipset_iotlb"] = _tlb_to_dict(config.chipset_iotlb)
    if config.devices != DeviceConfig():
        # Omitted at the default (one device) so pre-fabric documents —
        # and their content hashes in the result store — are unchanged.
        document["devices"] = {
            "count": config.devices.count,
            "sid_map": config.devices.sid_map,
            "explicit_map": [list(pair) for pair in config.devices.explicit_map],
        }
    return document


def config_from_dict(raw: Dict[str, Any]) -> ArchConfig:
    """Parse an :class:`ArchConfig` from plain data (strict)."""
    _check_keys(
        raw,
        (
            "name", "ptb_entries", "devtlb", "l2_tlb", "l3_tlb",
            "prefetch", "timing", "chipset_iotlb", "iommu_walkers", "devices",
        ),
        "config",
    )
    for required in ("name", "ptb_entries", "devtlb", "l2_tlb", "l3_tlb"):
        if required not in raw:
            raise ConfigFormatError(f"config: missing required key {required!r}")
    prefetch_raw = raw.get("prefetch", {})
    _check_keys(
        prefetch_raw,
        ("enabled", "buffer_entries", "history_length", "pages_per_tenant"),
        "prefetch",
    )
    timing_raw = raw.get("timing", {})
    _check_keys(
        timing_raw,
        (
            "pcie_one_way_ns", "dram_latency_ns", "iotlb_hit_ns",
            "packet_bytes", "link_bandwidth_gbps",
            "fault_max_retries", "fault_backoff_ns",
        ),
        "timing",
    )
    chipset: Optional[TlbConfig] = None
    if "chipset_iotlb" in raw:
        chipset = _tlb_from_dict(raw["chipset_iotlb"], "chipset_iotlb")
    devices_raw = raw.get("devices", {})
    _check_keys(devices_raw, ("count", "sid_map", "explicit_map"), "devices")
    try:
        devices = DeviceConfig(
            count=devices_raw.get("count", 1),
            sid_map=devices_raw.get("sid_map", "round_robin"),
            explicit_map=tuple(
                tuple(pair) for pair in devices_raw.get("explicit_map", ())
            ),
        )
    except (TypeError, ValueError) as error:
        raise ConfigFormatError(f"devices: {error}") from None
    try:
        return ArchConfig(
            name=raw["name"],
            ptb_entries=raw["ptb_entries"],
            devtlb=_tlb_from_dict(raw["devtlb"], "devtlb"),
            l2_tlb=_tlb_from_dict(raw["l2_tlb"], "l2_tlb"),
            l3_tlb=_tlb_from_dict(raw["l3_tlb"], "l3_tlb"),
            prefetch=PrefetchConfig(**prefetch_raw),
            timing=TimingParams(**timing_raw),
            chipset_iotlb=chipset,
            iommu_walkers=raw.get("iommu_walkers"),
            devices=devices,
        )
    except (TypeError, ValueError) as error:
        raise ConfigFormatError(f"config: {error}") from None


def config_to_json(config: ArchConfig, indent: int = 2) -> str:
    """Serialise ``config`` to a JSON string."""
    return json.dumps(config_to_dict(config), indent=indent)


def config_from_json(text: str) -> ArchConfig:
    """Parse a JSON string into an :class:`ArchConfig`."""
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigFormatError(f"invalid JSON: {error}") from None
    if not isinstance(raw, dict):
        raise ConfigFormatError("config document must be a JSON object")
    return config_from_dict(raw)


def save_config(config: ArchConfig, path: Path) -> None:
    """Write ``config`` to ``path`` as JSON."""
    Path(path).write_text(config_to_json(config) + "\n", encoding="utf-8")


def load_config(path: Path) -> ArchConfig:
    """Load an :class:`ArchConfig` from a JSON file."""
    return config_from_json(Path(path).read_text(encoding="utf-8"))
