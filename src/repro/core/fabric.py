"""The multi-device I/O fabric: N device paths behind one shared chipset.

The paper's Figure 6 describes one device + chipset pair; a hyper-tenant
host puts *several* NICs/accelerators behind the same IOMMU.  This module
splits the translation architecture into its two physical halves and
composes them:

* :class:`DevicePath` — everything that lives on one device: the
  (possibly partitioned) DevTLB, the Pending Translation Buffer, and the
  Prefetch Unit.  One instance per device.
* :class:`ChipsetPath` — everything shared at the chipset: the IOMMU with
  its IOTLB / nested TLB / PTE cache, the context cache, the bounded
  page-table-walker pool, the chipset-side IOVA history, and main memory.
  Exactly one instance per fabric.
* :class:`Fabric` — ``config.devices.count`` device paths in front of one
  chipset, plus the SID -> device routing
  (:meth:`~repro.core.config.DeviceConfig.device_for`).

:class:`~repro.core.hypertrio.TranslationPath` is now a *view* pairing one
device path with the shared chipset; with one device it is exactly the
paper's Figure 6 hardware.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional

from repro.cache.base import TranslationCache
from repro.cache.partitioned import PartitionedCache
from repro.cache.setassoc import FullyAssociativeCache, SetAssociativeCache
from repro.core.config import ArchConfig, TlbConfig
from repro.core.prefetch import IovaHistory, PrefetchUnit
from repro.core.ptb import PendingTranslationBuffer
from repro.device.devtlb import build_devtlb
from repro.iommu.context import ContextCache, ContextEntry
from repro.iommu.iommu import Iommu, IommuTimings
from repro.mem.dram import MainMemory


@dataclass
class DevicePath:
    """The device-side hardware of one fabric endpoint."""

    device_id: int
    devtlb: TranslationCache
    ptb: PendingTranslationBuffer
    prefetch_unit: Optional[PrefetchUnit]

    def named_caches(self):
        """``(name, cache)`` pairs for this device's translation caches."""
        pairs = [("devtlb", self.devtlb)]
        if self.prefetch_unit is not None:
            pairs.append(("prefetch_buffer", self.prefetch_unit.buffer))
        return pairs


@dataclass
class ChipsetPath:
    """The chipset-side hardware every device shares."""

    iommu: Iommu
    context_cache: ContextCache
    memory: MainMemory
    walker_pool: object  #: :class:`ResourcePool` or :class:`UnboundedPool`
    iova_history: Optional[IovaHistory]

    def named_caches(self):
        """``(name, cache)`` pairs for the shared chipset caches."""
        return [
            ("iotlb", self.iommu.iotlb),
            ("nested_tlb", self.iommu.nested_tlb),
            ("pte_cache", self.iommu.pte_cache),
        ]


def _build_tlb(
    tlb_config: TlbConfig,
    name: str,
    next_use: Optional[Callable[[Hashable], Optional[float]]] = None,
) -> TranslationCache:
    """Instantiate one cache from a :class:`TlbConfig`."""
    if tlb_config.fully_associative:
        return FullyAssociativeCache(
            num_entries=tlb_config.num_entries,
            policy=tlb_config.policy,
            name=name,
            next_use=next_use,
        )
    if tlb_config.num_partitions > 1:
        return PartitionedCache(
            num_entries=tlb_config.num_entries,
            ways=tlb_config.ways,
            num_partitions=tlb_config.num_partitions,
            policy=tlb_config.policy,
            name=name,
            next_use=next_use,
        )
    return SetAssociativeCache(
        num_entries=tlb_config.num_entries,
        ways=tlb_config.ways,
        policy=tlb_config.policy,
        name=name,
        next_use=next_use,
    )


def _build_device(
    config: ArchConfig,
    device_id: int,
    name_prefix: str,
    devtlb_next_use: Optional[Callable[[Hashable], Optional[float]]],
) -> DevicePath:
    """Build one device path (DevTLB + PTB + Prefetch Unit)."""
    devtlb = build_devtlb(
        num_entries=config.devtlb.num_entries,
        ways=config.devtlb.ways,
        num_partitions=config.devtlb.num_partitions,
        policy=config.devtlb.policy,
        fully_associative=config.devtlb.fully_associative,
        name=f"{name_prefix}devtlb",
        next_use=devtlb_next_use,
    )
    prefetch_unit = PrefetchUnit(config.prefetch) if config.prefetch.enabled else None
    return DevicePath(
        device_id=device_id,
        devtlb=devtlb,
        ptb=PendingTranslationBuffer(config.ptb_entries),
        prefetch_unit=prefetch_unit,
    )


def _build_chipset(
    config: ArchConfig,
    walker_for_sid: Callable[[int], object],
    sids=(),
) -> ChipsetPath:
    """Build the shared chipset path (IOMMU, walker pool, DRAM, history)."""
    memory = MainMemory(latency_ns=config.timing.dram_latency_ns)
    context_cache = ContextCache()
    for sid in sids:
        context_cache.register(sid, ContextEntry(did=sid, root_table_hpa=0))
    iotlb_config = config.effective_chipset_iotlb
    if iotlb_config.policy.lower() == "oracle" and config.chipset_iotlb is None:
        # The chipset IOTLB only mirrors the DevTLB geometry; the oracle
        # studies (Figure 11b/c) idealise the DevTLB alone, so the mirrored
        # IOTLB falls back to the paper's default LFU policy.
        ways = 8 if iotlb_config.num_entries % 8 == 0 else 1
        iotlb_config = dataclasses.replace(
            iotlb_config, policy="lfu", fully_associative=False, ways=ways,
            num_partitions=1,
        )
    iommu = Iommu(
        iotlb=_build_tlb(iotlb_config, "iotlb"),
        nested_tlb=_build_tlb(config.l3_tlb, "nested-tlb"),
        pte_cache=_build_tlb(config.l2_tlb, "pte-cache"),
        walker_for_sid=walker_for_sid,
        memory=memory,
        context_cache=context_cache,
        timings=IommuTimings(
            iotlb_hit_ns=config.timing.iotlb_hit_ns,
            cache_hit_ns=config.timing.iotlb_hit_ns,
        ),
    )
    # Imported lazily: repro.sim's package init imports the simulator,
    # which imports this module — a top-level import would be circular.
    from repro.sim.resources import ResourcePool, UnboundedPool

    if config.iommu_walkers is None:
        walker_pool = UnboundedPool()
    else:
        walker_pool = ResourcePool(config.iommu_walkers)
    iova_history = (
        IovaHistory(depth=config.prefetch.pages_per_tenant)
        if config.prefetch.enabled
        else None
    )
    return ChipsetPath(
        iommu=iommu,
        context_cache=context_cache,
        memory=memory,
        walker_pool=walker_pool,
        iova_history=iova_history,
    )


class Fabric:
    """``config.devices.count`` device paths sharing one chipset path.

    Parameters mirror :func:`~repro.core.hypertrio.build_translation_path`;
    the fabric is what multi-device simulators drive, while single-device
    callers keep using the :class:`~repro.core.hypertrio.TranslationPath`
    view returned by :meth:`view`.
    """

    def __init__(
        self,
        config: ArchConfig,
        walker_for_sid: Callable[[int], object],
        sids=(),
        devtlb_next_use: Optional[Callable[[Hashable], Optional[float]]] = None,
    ):
        self.config = config
        self.num_devices = config.devices.count
        self.chipset = _build_chipset(config, walker_for_sid, sids=sids)
        self.devices: List[DevicePath] = [
            _build_device(
                config,
                device_id=index,
                name_prefix="" if self.num_devices == 1 else f"dev{index}.",
                devtlb_next_use=devtlb_next_use,
            )
            for index in range(self.num_devices)
        ]

    # ------------------------------------------------------------------
    def device_for_sid(self, sid: int) -> int:
        """Route tenant ``sid`` to its device index."""
        return self.config.devices.device_for(sid)

    def view(self, device_id: int = 0):
        """A :class:`TranslationPath` view of one device + the chipset."""
        from repro.core.hypertrio import TranslationPath

        return TranslationPath(
            config=self.config,
            device=self.devices[device_id],
            chipset=self.chipset,
        )

    def named_caches(self):
        """``(name, cache)`` pairs across the whole fabric.

        Device caches come first (prefixed ``dev<i>.`` when more than one
        device exists, keeping single-device names identical to the
        pre-fabric model), then the shared chipset caches once.
        """
        pairs = []
        for device in self.devices:
            prefix = "" if self.num_devices == 1 else f"dev{device.device_id}."
            for name, cache in device.named_caches():
                pairs.append((f"{prefix}{name}", cache))
        pairs.extend(self.chipset.named_caches())
        return pairs


def build_fabric(
    config: ArchConfig,
    walker_for_sid: Callable[[int], object],
    sids=(),
    devtlb_next_use: Optional[Callable[[Hashable], Optional[float]]] = None,
) -> Fabric:
    """Build the full I/O fabric for ``config`` (N devices, one chipset)."""
    return Fabric(
        config, walker_for_sid, sids=sids, devtlb_next_use=devtlb_next_use
    )
