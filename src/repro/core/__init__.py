"""HyperTRIO core: configuration presets, PTB, prefetching, assembly."""

from repro.core.config import (
    ArchConfig,
    DeviceConfig,
    PrefetchConfig,
    TimingParams,
    TlbConfig,
    base_config,
    case_study_timing,
    hypertrio_config,
)
from repro.core.fabric import ChipsetPath, DevicePath, Fabric, build_fabric
from repro.core.config_io import (
    ConfigFormatError,
    config_from_json,
    config_to_json,
    load_config,
    save_config,
)
from repro.core.hypertrio import TranslationPath, build_translation_path
from repro.core.prefetch import (
    IovaHistory,
    PrefetchStats,
    PrefetchUnit,
    SidPredictor,
)
from repro.core.ptb import PendingTranslationBuffer, PtbStats
from repro.core.results import RequestLatencyStats, SimulationResult

__all__ = [
    "ArchConfig",
    "TlbConfig",
    "TimingParams",
    "PrefetchConfig",
    "base_config",
    "hypertrio_config",
    "case_study_timing",
    "ConfigFormatError",
    "config_to_json",
    "config_from_json",
    "save_config",
    "load_config",
    "DeviceConfig",
    "DevicePath",
    "ChipsetPath",
    "Fabric",
    "build_fabric",
    "TranslationPath",
    "build_translation_path",
    "PendingTranslationBuffer",
    "PtbStats",
    "PrefetchUnit",
    "SidPredictor",
    "IovaHistory",
    "PrefetchStats",
    "RequestLatencyStats",
    "SimulationResult",
]
