"""Replacement policies for translation caches.

The paper studies LRU, LFU (motivated by the three access-frequency groups
observed in single-tenant traces, Section IV-D) and a Belady *oracle* that
evicts the entry reused furthest in the future (Section V-C).  The LFU
implementation follows the paper exactly: a 4-bit saturating counter per
entry, and when any counter in a row saturates, every counter in that row is
halved.

Policies are per-*set* objects: the owning cache creates one policy instance
per set (row), and notifies it on hits, fills, and when it must pick a
victim.  Keys are opaque hashables.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional


class ReplacementPolicy(ABC):
    """Interface implemented by every per-set replacement policy."""

    @abstractmethod
    def on_hit(self, key: Hashable) -> None:
        """Record a hit on ``key``."""

    @abstractmethod
    def on_fill(self, key: Hashable) -> None:
        """Record that ``key`` was inserted into the set."""

    @abstractmethod
    def on_evict(self, key: Hashable) -> None:
        """Record that ``key`` was removed from the set."""

    @abstractmethod
    def victim(self, excluding=frozenset()) -> Hashable:
        """Return the key that should be evicted next.

        ``excluding`` holds keys that must not be chosen (pinned prefetch
        entries awaiting their predicted use).  Returns ``None`` when every
        tracked key is excluded.
        """

    @abstractmethod
    def keys(self):
        """Return the keys currently tracked (iteration order unspecified)."""

    def promote(self, key: Hashable, steps: int = 1) -> None:
        """Raise ``key``'s replacement priority (prefetch-aware insertion).

        Used when a prefetched translation is installed: the entry must
        survive the window between install and predicted use, so it enters
        with elevated priority.  Recency policies treat this as a touch;
        frequency policies add ``steps`` to the counter.  Default: no-op.
        """

    def __len__(self) -> int:
        return len(list(self.keys()))


class LruPolicy(ReplacementPolicy):
    """Least-recently-used eviction."""

    def __init__(self):
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_hit(self, key: Hashable) -> None:
        self._order.move_to_end(key)

    def on_fill(self, key: Hashable) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def on_evict(self, key: Hashable) -> None:
        del self._order[key]

    def promote(self, key: Hashable, steps: int = 1) -> None:
        self._order.move_to_end(key)

    def victim(self, excluding=frozenset()) -> Hashable:
        if not self._order:
            raise LookupError("victim() on an empty set")
        for key in self._order:
            if key not in excluding:
                return key
        return None

    def keys(self):
        return self._order.keys()


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out eviction (insertion order, hits ignored)."""

    def __init__(self):
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_hit(self, key: Hashable) -> None:
        pass

    def on_fill(self, key: Hashable) -> None:
        self._order[key] = None

    def on_evict(self, key: Hashable) -> None:
        del self._order[key]

    def victim(self, excluding=frozenset()) -> Hashable:
        if not self._order:
            raise LookupError("victim() on an empty set")
        for key in self._order:
            if key not in excluding:
                return key
        return None

    def keys(self):
        return self._order.keys()


class LfuPolicy(ReplacementPolicy):
    """Least-frequently-used with 4-bit saturating counters.

    As in the paper: each entry has a counter capped at ``counter_max``
    (15 for 4 bits); when any counter saturates, all counters in the row are
    divided by two.  Ties are broken by insertion order (oldest first), which
    makes the policy deterministic.
    """

    def __init__(self, counter_bits: int = 4):
        if counter_bits < 1:
            raise ValueError("counter_bits must be >= 1")
        self.counter_max = (1 << counter_bits) - 1
        self._counts: "OrderedDict[Hashable, int]" = OrderedDict()

    def on_hit(self, key: Hashable) -> None:
        self._bump(key)

    def on_fill(self, key: Hashable) -> None:
        self._counts[key] = 0
        self._bump(key)

    def promote(self, key: Hashable, steps: int = 1) -> None:
        for _ in range(steps):
            self._bump(key)

    def on_evict(self, key: Hashable) -> None:
        del self._counts[key]

    def victim(self, excluding=frozenset()) -> Hashable:
        if not self._counts:
            raise LookupError("victim() on an empty set")
        best_key, best_count = None, None
        if excluding:
            for key, count in self._counts.items():
                if key in excluding:
                    continue
                if best_count is None or count < best_count:
                    best_key, best_count = key, count
        else:
            # Hot path: no pinned entries to skip.
            for key, count in self._counts.items():
                if best_count is None or count < best_count:
                    best_key, best_count = key, count
        return best_key

    def keys(self):
        return self._counts.keys()

    def counter(self, key: Hashable) -> int:
        """Current counter value for ``key`` (for tests and introspection)."""
        return self._counts[key]

    def _bump(self, key: Hashable) -> None:
        count = self._counts[key] + 1
        if count > self.counter_max:
            # Saturation: halve every counter in the row, then count this hit.
            for other in self._counts:
                self._counts[other] //= 2
            count = self._counts[key] + 1
        self._counts[key] = count


class RandomPolicy(ReplacementPolicy):
    """Uniform-random eviction with a seeded generator (reproducible)."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self._keys: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_hit(self, key: Hashable) -> None:
        pass

    def on_fill(self, key: Hashable) -> None:
        self._keys[key] = None

    def on_evict(self, key: Hashable) -> None:
        del self._keys[key]

    def victim(self, excluding=frozenset()) -> Hashable:
        if not self._keys:
            raise LookupError("victim() on an empty set")
        candidates = [key for key in self._keys if key not in excluding]
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def keys(self):
        return self._keys.keys()


class OraclePolicy(ReplacementPolicy):
    """Belady's optimal policy: evict the entry used furthest in the future.

    The owning simulation supplies ``next_use``: a callable mapping a key to
    the position of its *next* access after the current one (``None`` or
    ``float('inf')`` when the key is never used again).  The simulator keeps
    that callable current as the trace advances.
    """

    def __init__(self, next_use: Callable[[Hashable], Optional[float]]):
        self._next_use = next_use
        self._keys: "OrderedDict[Hashable, None]" = OrderedDict()

    def on_hit(self, key: Hashable) -> None:
        pass

    def on_fill(self, key: Hashable) -> None:
        self._keys[key] = None

    def on_evict(self, key: Hashable) -> None:
        del self._keys[key]

    def victim(self, excluding=frozenset()) -> Hashable:
        if not self._keys:
            raise LookupError("victim() on an empty set")
        best_key, best_distance = None, -1.0
        for key in self._keys:
            if key in excluding:
                continue
            distance = self._next_use(key)
            if distance is None:
                return key  # never used again: perfect victim
            if distance > best_distance:
                best_key, best_distance = key, distance
        return best_key

    def keys(self):
        return self._keys.keys()


#: Registry mapping policy names (as used in configs and the paper's figures)
#: to factories.  Oracle is absent here because it needs future knowledge;
#: use :func:`make_policy_factory` with a ``next_use`` callable.
POLICY_FACTORIES: Dict[str, Callable[[], ReplacementPolicy]] = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "lfu": LfuPolicy,
    "random": RandomPolicy,
}


def make_policy_factory(
    name: str, next_use: Optional[Callable[[Hashable], Optional[float]]] = None
) -> Callable[[], ReplacementPolicy]:
    """Return a zero-argument factory building per-set policy instances.

    ``name`` is one of ``lru``, ``fifo``, ``lfu``, ``random`` or ``oracle``;
    the latter requires ``next_use``.
    """
    lowered = name.lower()
    if lowered == "oracle":
        if next_use is None:
            raise ValueError("oracle policy requires a next_use callable")
        return lambda: OraclePolicy(next_use)
    try:
        return POLICY_FACTORIES[lowered]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from "
            f"{sorted(POLICY_FACTORIES)} or 'oracle'"
        ) from None
