"""Translation-cache structures: policies, set-associative and partitioned.

Public surface:

* :class:`~repro.cache.base.TranslationCache` / :class:`~repro.cache.base.CacheStats`
* :class:`~repro.cache.setassoc.SetAssociativeCache` and
  :class:`~repro.cache.setassoc.FullyAssociativeCache`
* :class:`~repro.cache.partitioned.PartitionedCache`
* replacement policies in :mod:`repro.cache.policies`
"""

from repro.cache.base import CacheStats, TranslationCache
from repro.cache.partitioned import PartitionedCache, partition_of
from repro.cache.policies import (
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    OraclePolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy_factory,
)
from repro.cache.setassoc import FullyAssociativeCache, SetAssociativeCache

__all__ = [
    "CacheStats",
    "TranslationCache",
    "SetAssociativeCache",
    "FullyAssociativeCache",
    "PartitionedCache",
    "partition_of",
    "ReplacementPolicy",
    "LruPolicy",
    "LfuPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "OraclePolicy",
    "make_policy_factory",
]
