"""SID-partitioned translation caches (the paper's P-DevTLB scheme).

HyperTRIO adds a partition tag (PTag) to every row of the DevTLB and the
page-walk TLBs; a translation may only occupy a row whose PTag matches the
low bits of its Source ID.  With ``n`` partitions, tenant ``sid`` is confined
to partition ``sid mod n``, so a low-bandwidth tenant can never evict a
high-bandwidth tenant in a different partition.

We realise this by reserving ``num_sets / n`` consecutive sets per partition
and computing the set index as ``partition_base + address_hash`` within the
partition.  When a partition holds exactly one row (the configuration the
paper evaluates for the DevTLB: 64 entries, 8-way, 8 partitions, one 8-entry
row per tenant group), the address hash degenerates and the row is shared by
all tenants mapped onto that PTag.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

from repro.cache.setassoc import SetAssociativeCache, fold_index


def partition_of(sid: int, num_partitions: int) -> int:
    """Partition (PTag) selected by ``sid``: its low bits, as in the paper."""
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    return sid % num_partitions


class PartitionedCache(SetAssociativeCache):
    """Set-associative cache whose set index embeds a SID partition.

    Keys must be ``(sid, secondary)`` tuples; ``secondary`` is usually the
    gIOVA page (DevTLB) or a guest-physical page (nested TLBs).

    Parameters
    ----------
    num_partitions:
        Number of PTag groups; must divide the set count evenly.
    """

    def __init__(
        self,
        num_entries: int,
        ways: int,
        num_partitions: int,
        policy: str = "lru",
        name: str = "p-cache",
        next_use: Optional[Callable[[Hashable], Optional[float]]] = None,
    ):
        num_sets = num_entries // ways
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if num_sets % num_partitions != 0:
            raise ValueError(
                f"{num_partitions} partitions do not evenly divide "
                f"{num_sets} sets"
            )
        self.num_partitions = num_partitions
        self._sets_per_partition = num_sets // num_partitions
        super().__init__(
            num_entries=num_entries,
            ways=ways,
            policy=policy,
            name=name,
            indexer=self._partitioned_index,
            next_use=next_use,
        )

    def _partitioned_index(self, key: Hashable, num_sets: int) -> int:
        if not (isinstance(key, tuple) and len(key) == 2):
            raise TypeError(
                f"{self.name}: partitioned caches require (sid, page) keys, "
                f"got {key!r}"
            )
        sid, secondary = key
        partition = partition_of(sid, self.num_partitions)
        base = partition * self._sets_per_partition
        if isinstance(secondary, int):
            folded = fold_index(secondary)
        else:
            folded = hash(secondary)
        return base + folded % self._sets_per_partition

    def partition_of_key(self, key: Hashable) -> int:
        """Partition a ``(sid, secondary)`` key is confined to.

        Observability helper: cross-tenant eviction attribution (see
        :class:`repro.obs.metrics.EvictionAttribution`) uses this to show
        that any cross-tenant evictions observed in a partitioned cache
        are *intra*-partition (tenants folded onto the same PTag) — a
        tenant in a different partition can never be the victim, which is
        the isolation property the paper claims.
        """
        if not (isinstance(key, tuple) and len(key) == 2):
            raise TypeError(
                f"{self.name}: partitioned caches require (sid, page) keys, "
                f"got {key!r}"
            )
        return partition_of(key[0], self.num_partitions)

    def partition_occupancy(self, partition: int) -> int:
        """Total valid entries across the sets of ``partition``."""
        if not 0 <= partition < self.num_partitions:
            raise ValueError(f"partition {partition} out of range")
        base = partition * self._sets_per_partition
        return sum(
            self.set_occupancy(base + offset)
            for offset in range(self._sets_per_partition)
        )
