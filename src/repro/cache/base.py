"""Shared cache interfaces and statistics.

Every translation structure in the model — DevTLB, IOTLB, nested/page-walk
TLBs, prefetch buffer, context cache — implements :class:`TranslationCache`,
so the simulator and the experiment sweeps can treat them uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Hashable, Optional


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when never accessed)."""
        accesses = self.accesses
        return self.hits / accesses if accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0.0 when never accessed)."""
        accesses = self.accesses
        return self.misses / accesses if accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.invalidations = 0

    def merged_with(self, other: "CacheStats") -> "CacheStats":
        """Return a new :class:`CacheStats` summing ``self`` and ``other``."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            fills=self.fills + other.fills,
            evictions=self.evictions + other.evictions,
            invalidations=self.invalidations + other.invalidations,
        )


class TranslationCache(ABC):
    """Abstract key/value cache with hit/miss accounting.

    Keys are opaque hashables chosen by the owner (for example
    ``(sid, giova_page)`` for a DevTLB).  ``lookup`` returns the stored value
    or ``None``, updating statistics and recency state; ``probe`` inspects
    without side effects.
    """

    def __init__(self, name: str = "cache"):
        self.name = name
        self.stats = CacheStats()
        #: Optional observability hook ``callable(inserted_key, victim_key)``
        #: invoked on every capacity eviction (not on invalidations).  Left
        #: ``None`` unless an observer attaches one, so the only cost on the
        #: eviction path is a single ``is not None`` check — see
        #: :meth:`repro.obs.metrics.EvictionAttribution.listener_for`.
        self.eviction_listener = None

    @abstractmethod
    def lookup(self, key: Hashable) -> Optional[Any]:
        """Return the cached value for ``key`` or ``None``; updates stats."""

    @abstractmethod
    def insert(self, key: Hashable, value: Any, priority: int = 0) -> None:
        """Insert or update ``key``; may evict another entry.

        ``priority`` > 0 marks a prefetch fill whose entry should enter
        with elevated replacement priority (see
        :meth:`repro.cache.policies.ReplacementPolicy.promote`).
        """

    @abstractmethod
    def probe(self, key: Hashable) -> Optional[Any]:
        """Return the cached value without touching stats or recency."""

    @abstractmethod
    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` if present; return whether it was present."""

    @abstractmethod
    def invalidate_all(self) -> None:
        """Drop every entry (e.g. on an IOTLB flush)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of valid entries currently stored."""

    def contains(self, key: Hashable) -> bool:
        """Return whether ``key`` is cached (no stats side effects)."""
        return self.probe(key) is not None
