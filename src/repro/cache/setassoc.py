"""Set-associative cache with pluggable replacement and indexing.

This is the workhorse structure behind the DevTLB, IOTLB and the L2/L3
page-walk caches.  The set index is derived from the key by an ``indexer``
callable so the same class supports both conventional address-indexed caches
and the paper's SID-partitioned variants (see
:mod:`repro.cache.partitioned`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional

from repro.cache.base import TranslationCache
from repro.cache.policies import ReplacementPolicy, make_policy_factory


def fold_index(value: int) -> int:
    """XOR-fold an address-derived integer before set selection.

    Plain modulo indexing degenerates for 2 MB-aligned page numbers (their
    low bits are all zero, mapping every huge page to set 0), so — like real
    TLBs — we fold higher address bits into the index.  The fold is
    deterministic and cheap.
    """
    value = int(value)
    return value ^ (value >> 9) ^ (value >> 18)


def default_indexer(key: Hashable, num_sets: int) -> int:
    """Index by the folded address bits of the key.

    For the common ``(sid, page)`` tuple keys this indexes by the *page*
    part only, so that — as in real hardware — tenants using identical
    gIOVA layouts compete for the same sets: the conflict behaviour the
    paper studies.  The SID lives in the tag, not the index.

    The fold is inlined (rather than calling :func:`fold_index`) because
    this function sits on the simulator's hottest path.
    """
    if type(key) is tuple and len(key) == 2:
        value = key[1]
        if type(value) is int:
            return (value ^ (value >> 9) ^ (value >> 18)) % num_sets
    return hash(key) % num_sets


def single_set_indexer(key: Hashable, num_sets: int) -> int:
    """Indexer for fully associative caches: everything lives in set 0.

    A module-level function (not a lambda) so cache instances stay
    picklable — simulation checkpoints snapshot live cache objects.
    """
    return 0


class SetAssociativeCache(TranslationCache):
    """An ``num_sets`` x ``ways`` cache.

    Parameters
    ----------
    num_entries:
        Total capacity; must be divisible by ``ways``.
    ways:
        Associativity.  ``ways == num_entries`` makes it fully associative.
    policy:
        Replacement policy name (``lru``, ``lfu``, ``fifo``, ``random``,
        ``oracle``); per-set instances are created from the factory.
    indexer:
        ``callable(key, num_sets) -> set_index``.
    next_use:
        Future-knowledge callable, required when ``policy == "oracle"``.
    """

    def __init__(
        self,
        num_entries: int,
        ways: int,
        policy: str = "lru",
        name: str = "cache",
        indexer: Callable[[Hashable, int], int] = default_indexer,
        next_use: Optional[Callable[[Hashable], Optional[float]]] = None,
    ):
        super().__init__(name=name)
        if num_entries < 1 or ways < 1:
            raise ValueError("num_entries and ways must be positive")
        if num_entries % ways != 0:
            raise ValueError(
                f"num_entries ({num_entries}) must be divisible by ways ({ways})"
            )
        self.num_entries = num_entries
        self.ways = ways
        self.num_sets = num_entries // ways
        self.policy_name = policy.lower()
        self._indexer = indexer
        factory = make_policy_factory(policy, next_use)
        self._policies: List[ReplacementPolicy] = [factory() for _ in range(self.num_sets)]
        self._sets: List[Dict[Hashable, Any]] = [{} for _ in range(self.num_sets)]
        # Pinned prefetch entries per set (insertion-ordered so the oldest
        # pin is recycled first).  At least two ways per set stay unpinned
        # so victim selection can never starve demand fills entirely.
        self._pinned: List[Dict[Hashable, None]] = [{} for _ in range(self.num_sets)]
        if ways > 2:
            self.pin_capacity = ways - 2
        elif ways == 2:
            self.pin_capacity = 1
        else:
            self.pin_capacity = 0

    # ------------------------------------------------------------------
    def _set_for(self, key: Hashable) -> int:
        index = self._indexer(key, self.num_sets)
        if not 0 <= index < self.num_sets:
            raise ValueError(
                f"indexer returned {index}, outside 0..{self.num_sets - 1}"
            )
        return index

    def lookup(self, key: Hashable) -> Optional[Any]:
        index = self._set_for(key)
        entry_set = self._sets[index]
        if key in entry_set:
            self.stats.hits += 1
            self._policies[index].on_hit(key)
            # First use of a pinned prefetch entry releases the pin.
            self._pinned[index].pop(key, None)
            return entry_set[key]
        self.stats.misses += 1
        return None

    def insert(
        self, key: Hashable, value: Any, priority: int = 0, pinned: bool = False
    ) -> None:
        """Insert or update ``key``.

        ``priority`` > 0 promotes the entry's replacement state that many
        extra steps.  ``pinned`` marks a prefetch fill that must survive
        until its predicted use: pinned entries are excluded from victim
        selection until first hit, with at most ``ways // 2`` pins per set
        (the oldest pin is released when the budget is exceeded).
        """
        index = self._set_for(key)
        entry_set = self._sets[index]
        policy = self._policies[index]
        pins = self._pinned[index]
        if key in entry_set:
            entry_set[key] = value
            policy.on_hit(key)
            if priority:
                policy.promote(key, priority)
            if pinned:
                self._pin(pins, key)
            return
        if len(entry_set) >= self.ways:
            victim = policy.victim(excluding=pins)
            if victim is None:
                # Every resident entry is pinned (cannot happen while the
                # pin budget is ways // 2, but stay safe): recycle the
                # oldest pin.
                victim = next(iter(pins))
                del pins[victim]
            policy.on_evict(victim)
            del entry_set[victim]
            pins.pop(victim, None)
            self.stats.evictions += 1
            if self.eviction_listener is not None:
                self.eviction_listener(key, victim)
        entry_set[key] = value
        policy.on_fill(key)
        if priority:
            policy.promote(key, priority)
        if pinned:
            self._pin(pins, key)
        self.stats.fills += 1

    def _pin(self, pins: Dict[Hashable, None], key: Hashable) -> None:
        if self.pin_capacity == 0:
            return
        pins.pop(key, None)
        while len(pins) >= self.pin_capacity:
            del pins[next(iter(pins))]
        pins[key] = None

    def probe(self, key: Hashable) -> Optional[Any]:
        return self._sets[self._set_for(key)].get(key)

    def invalidate(self, key: Hashable) -> bool:
        index = self._set_for(key)
        entry_set = self._sets[index]
        if key not in entry_set:
            return False
        self._policies[index].on_evict(key)
        del entry_set[key]
        self._pinned[index].pop(key, None)
        self.stats.invalidations += 1
        return True

    def invalidate_all(self) -> None:
        for index, entry_set in enumerate(self._sets):
            policy = self._policies[index]
            for key in list(entry_set):
                policy.on_evict(key)
            entry_set.clear()
            self._pinned[index].clear()
        self.stats.invalidations += 1

    def __len__(self) -> int:
        return sum(len(entry_set) for entry_set in self._sets)

    # ------------------------------------------------------------------
    def set_occupancy(self, index: int) -> int:
        """Number of valid entries in set ``index`` (for tests/analysis)."""
        return len(self._sets[index])

    def keys(self):
        """Iterate over all cached keys (unspecified order)."""
        for entry_set in self._sets:
            yield from entry_set


class FullyAssociativeCache(SetAssociativeCache):
    """Convenience subclass: one set holding every entry.

    Used for the paper's fully-associative DevTLB study (Figure 11c) and for
    the 8-entry Prefetch Buffer.
    """

    def __init__(
        self,
        num_entries: int,
        policy: str = "lru",
        name: str = "fa-cache",
        next_use: Optional[Callable[[Hashable], Optional[float]]] = None,
    ):
        super().__init__(
            num_entries=num_entries,
            ways=num_entries,
            policy=policy,
            name=name,
            indexer=single_set_indexer,
            next_use=next_use,
        )
