"""Wire protocol of the translation service: JSON lines over TCP.

One request or response per line, each a JSON object with a ``type``
field.  The protocol is deliberately small — it is a thin request/response
boundary in front of the shared translation fabric (Amiri Sani et al.'s
device-file argument applied to translation): the *service* owns
admission and transport, the *engine* owns every simulated outcome.

Requests::

    {"type": "hello", "schema": "repro-service/1", "sid": 3}
    {"type": "translate", "seq": 0, "giovas": [a, b, c], "size": 1542,
     "inv": [page, ...], "sid": 5,
     "trace": {"trace_id": "t1", "span_id": "c0"}}
    {"type": "stats"}            # or {"type": "stats", "format": "prom"}
    {"type": "flush"}
    {"type": "ping"}

The optional ``trace`` field carries a client-side
:class:`~repro.obs.spans.SpanContext` so the server-side span tree
(``wire.read -> admission / dispatch -> engine.step -> phases``) parents
under the caller's span.  It is *feature-negotiated softly*: servers
advertise ``"features": ["trace", ...]`` in ``hello_ok``, but an old
server simply ignores the unknown field and an old client simply never
sends it — both directions interoperate with no version bump.

``hello`` optionally carries a ``session`` identity plus the client's
connect ``attempts`` count: a sessioned server keeps per-session
exactly-once, in-order dispatch state (an outcome cache for answered
seqs, a bounded hold buffer for out-of-order arrivals), so a client that
reconnects after wire chaos can resend unanswered seqs without ever
causing a double or out-of-trace-order translation.  ``translate``
carries the optional ``ack`` watermark (first unacknowledged seq) that
evicts the server's outcome cache.  Both ride the soft feature
negotiation above: old peers ignore the fields.

``hello`` binds the connection to one tenant (its SID); every subsequent
``translate`` is accounted to that tenant.  A ``hello`` without a SID
creates an *unbound* (replay) connection whose ``translate`` requests must
each carry an explicit ``sid`` — this is what lets one client replay a
multi-tenant trace file in exact wire order, which is the basis of the
service-vs-offline parity guarantee (see docs/SERVICE.md).

Responses mirror requests: ``hello_ok``, ``result`` (one per
``translate``, carrying the per-packet outcome), ``stats``, ``flush_ok``,
``pong``, and typed ``error`` responses.  A draining server emits a
``restarting`` notice before closing, so clients know to reconnect rather
than fail.

Everything on the wire carries the schema tag :data:`PROTOCOL_SCHEMA`;
incompatible future revisions bump the suffix.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.obs.spans import SpanContext

#: Protocol schema tag; sent in ``hello`` both ways and in ``stats``.
PROTOCOL_SCHEMA = "repro-service/1"

#: Optional capabilities this revision understands, advertised in
#: ``hello_ok``.  Additions here never bump the schema: every feature
#: rides an optional field old peers ignore.  ``session`` = per-session
#: exactly-once resend semantics (``hello.session`` / ``translate.ack``);
#: ``conn_supervision`` = bounded frames and typed supervision errors.
PROTOCOL_FEATURES = ("trace", "prom_stats", "session", "conn_supervision")

#: Default per-frame byte bound: no legitimate protocol line comes close
#: (a 64-entry window of translates is a few KiB), so anything larger is
#: a garbage or hostile peer and is refused with ``frame_too_large``
#: instead of growing the read buffer without limit.
MAX_FRAME_BYTES = 1 << 20

#: Chunk size of the supervised frame reader's socket reads.
_READ_CHUNK = 1 << 16

# Request types ---------------------------------------------------------
HELLO = "hello"
TRANSLATE = "translate"
STATS = "stats"
FLUSH = "flush"
PING = "ping"

# Response types --------------------------------------------------------
HELLO_OK = "hello_ok"
RESULT = "result"
STATS_REPLY = "stats"
FLUSH_OK = "flush_ok"
PONG = "pong"
ERROR = "error"
#: Unsolicited notice sent to every live connection while the server
#: drains for a (warm) restart.
RESTARTING = "restarting"

# Typed error codes -----------------------------------------------------
#: Malformed JSON, missing fields, or a bad field type.
E_BAD_REQUEST = "bad_request"
#: ``translate`` before a successful ``hello``.
E_NOT_BOUND = "not_bound"
#: The SID is not a tenant of the system the service was started with.
E_UNKNOWN_SID = "unknown_sid"
#: Per-tenant token bucket empty (admission control).
E_RATE_LIMITED = "rate_limited"
#: Per-tenant queue-depth cap reached (admission control).
E_QUEUE_FULL = "queue_full"
#: Shed because the device's PTB occupancy crossed the high watermark —
#: the service-layer mirror of the paper's PTB-overflow drop semantics.
E_BACKPRESSURE = "backpressure"
#: The server is draining for a restart; retry after reconnecting.
E_RESTARTING = "restarting"
#: The translation itself failed (e.g. a gIOVA outside the tenant's
#: address space); the request is not retryable.
E_TRANSLATION = "translation_error"
#: A single frame exceeded the server's ``max_frame_bytes``; the
#: connection is closed after this notice.
E_FRAME_TOO_LARGE = "frame_too_large"
#: The connection sat idle (no frames, nothing in flight) past the
#: server's idle timeout and was reaped.
E_IDLE_TIMEOUT = "idle_timeout"
#: A frame started but did not complete within the per-frame deadline
#: (a half-open or slowloris peer); the connection is closed.
E_FRAME_TIMEOUT = "frame_timeout"
#: The peer stopped reading and its write buffer crossed the server's
#: cap; it was evicted so the dispatcher never blocks on one bad socket.
E_SLOW_PEER = "slow_peer"
#: The connection exceeded its in-flight request cap.
E_TOO_MANY_INFLIGHT = "too_many_inflight"

#: Codes a client may transparently retry after reconnect/backoff.
RETRYABLE_CODES = frozenset({E_RESTARTING, E_SLOW_PEER, E_TOO_MANY_INFLIGHT})


class ProtocolError(ValueError):
    """A line that could not be parsed into a valid protocol message."""


class FrameStreamError(Exception):
    """Base of the supervised frame reader's typed failures.

    Each carries the typed protocol error ``code`` the server answers
    with before closing the connection.
    """

    code = E_BAD_REQUEST


class FrameTooLargeError(FrameStreamError):
    """A frame outgrew ``max_frame_bytes`` without a newline."""

    code = E_FRAME_TOO_LARGE

    def __init__(self, size: int, limit: int):
        super().__init__(
            f"frame exceeded {limit} bytes ({size} buffered without a newline)"
        )
        self.size = size
        self.limit = limit


class IdleTimeoutError(FrameStreamError):
    """No frame started within the idle timeout."""

    code = E_IDLE_TIMEOUT

    def __init__(self, idle_s: float):
        super().__init__(f"connection idle for {idle_s:.1f}s")
        self.idle_s = idle_s


class FrameDeadlineError(FrameStreamError):
    """A started frame did not complete within the frame deadline."""

    code = E_FRAME_TIMEOUT

    def __init__(self, deadline_s: float):
        super().__init__(
            f"frame incomplete after {deadline_s:.1f}s (half-open peer?)"
        )
        self.deadline_s = deadline_s


class FrameReader:
    """Bounded, deadline-supervised line framing over a stream reader.

    Replaces the server's unbounded ``readline``: frames are capped at
    ``max_frame_bytes`` (:class:`FrameTooLargeError`), a frame that
    *starts* must complete within ``frame_deadline_s``
    (:class:`FrameDeadlineError` — the slowloris/half-open guard), and a
    connection with no frame in progress raises
    :class:`IdleTimeoutError` after ``idle_timeout_s`` so the caller can
    reap it (or keep waiting while replies are still in flight).  The
    internal buffer survives across calls, so split and coalesced writes
    reassemble exactly like ``readline``'s would.

    ``read_frame`` returns one line **without** its trailing newline, or
    ``None`` at EOF (a torn trailing frame is treated as EOF — the peer
    is gone either way).
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        idle_timeout_s: Optional[float] = None,
        frame_deadline_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._reader = reader
        self.max_frame_bytes = max_frame_bytes
        self.idle_timeout_s = idle_timeout_s
        self.frame_deadline_s = frame_deadline_s
        self._clock = clock
        self._buffer = bytearray()

    async def read_frame(self) -> Optional[bytes]:
        started: Optional[float] = None
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                return line
            if len(self._buffer) > self.max_frame_bytes:
                raise FrameTooLargeError(len(self._buffer), self.max_frame_bytes)
            if self._buffer and started is None:
                started = self._clock()
            timeout: Optional[float] = None
            if self._buffer:
                if self.frame_deadline_s is not None:
                    timeout = self.frame_deadline_s - (self._clock() - started)
                    if timeout <= 0:
                        raise FrameDeadlineError(self.frame_deadline_s)
            else:
                timeout = self.idle_timeout_s
            try:
                if timeout is None:
                    chunk = await self._reader.read(_READ_CHUNK)
                else:
                    chunk = await asyncio.wait_for(
                        self._reader.read(_READ_CHUNK), timeout
                    )
            except asyncio.TimeoutError:
                if self._buffer:
                    raise FrameDeadlineError(self.frame_deadline_s) from None
                raise IdleTimeoutError(self.idle_timeout_s) from None
            if not chunk:
                return None
            self._buffer.extend(chunk)


def encode(message: Dict[str, Any]) -> bytes:
    """Serialise one protocol message to a wire line (newline included)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into a message dict.

    Raises :class:`ProtocolError` on anything that is not a JSON object
    with a string ``type`` field — the caller answers with a typed
    ``bad_request`` error instead of dying.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"not a JSON line: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"expected a JSON object, got {type(message).__name__}")
    kind = message.get("type")
    if not isinstance(kind, str):
        raise ProtocolError("message has no string 'type' field")
    return message


def error_reply(
    code: str, message: str, seq: Optional[int] = None
) -> Dict[str, Any]:
    """Build a typed error response (``seq`` echoes the failing request)."""
    reply: Dict[str, Any] = {"type": ERROR, "code": code, "message": message}
    if seq is not None:
        reply["seq"] = seq
    return reply


@dataclass
class PacketOutcome:
    """The engine's verdict on one submitted packet.

    Field-for-field this is the per-packet slice of what the offline
    simulator accumulates into :class:`~repro.core.results.SimulationResult`:
    admission (accepted vs dropped, with the same cause vocabulary as
    ``PacketStats.drop_causes``), DevTLB hit/miss deltas, the number of
    translations performed, and the packet's virtual-time span.  Summing
    outcomes over a replayed trace reproduces the offline aggregates
    exactly — the parity tests pin this.
    """

    sid: int
    accepted: bool
    #: Drops accumulated while this packet was in flight (PTB-overflow
    #: retries, device resets, exhausted fault retries), by cause.
    drop_causes: Dict[str, int] = field(default_factory=dict)
    #: Admission retries this packet went through before acceptance.
    retried: int = 0
    #: Virtual nanoseconds: first wire arrival and final completion.
    arrival_ns: float = 0.0
    completion_ns: float = 0.0
    #: Translation requests performed (0 when dropped before translation).
    translations: int = 0
    devtlb_hits: int = 0
    devtlb_misses: int = 0
    #: Sum of the per-request translation latencies of this packet.
    latency_ns: float = 0.0

    @property
    def status(self) -> str:
        return "accepted" if self.accepted else "dropped"

    def to_wire(self, seq: int) -> Dict[str, Any]:
        """The ``result`` response for this outcome."""
        reply: Dict[str, Any] = {
            "type": RESULT,
            "seq": seq,
            "sid": self.sid,
            "status": self.status,
            "arrival_ns": self.arrival_ns,
            "completion_ns": self.completion_ns,
            "translations": self.translations,
            "devtlb_hits": self.devtlb_hits,
            "devtlb_misses": self.devtlb_misses,
            "latency_ns": self.latency_ns,
        }
        if self.drop_causes:
            reply["drops"] = dict(self.drop_causes)
        if self.retried:
            reply["retried"] = self.retried
        return reply

    @classmethod
    def from_wire(cls, reply: Dict[str, Any]) -> "PacketOutcome":
        """Rebuild an outcome from a ``result`` response."""
        return cls(
            sid=reply["sid"],
            accepted=reply["status"] == "accepted",
            drop_causes=dict(reply.get("drops", {})),
            retried=reply.get("retried", 0),
            arrival_ns=reply["arrival_ns"],
            completion_ns=reply["completion_ns"],
            translations=reply["translations"],
            devtlb_hits=reply["devtlb_hits"],
            devtlb_misses=reply["devtlb_misses"],
            latency_ns=reply["latency_ns"],
        )


def parse_trace_context(message: Dict[str, Any]) -> Optional[SpanContext]:
    """Decode the optional ``trace`` field of a request.

    Returns ``None`` when absent (an old client — fully supported), the
    :class:`~repro.obs.spans.SpanContext` when well-formed, and raises
    :class:`ProtocolError` when present but malformed: a peer that
    *tries* to propagate trace identity deserves a loud failure, not a
    silently unparented span tree.
    """
    raw = message.get("trace")
    if raw is None:
        return None
    if (
        not isinstance(raw, dict)
        or not isinstance(raw.get("trace_id"), str)
        or not isinstance(raw.get("span_id"), str)
    ):
        raise ProtocolError(
            "'trace' must be an object with string 'trace_id' and 'span_id'"
        )
    return SpanContext.from_wire(raw)


def parse_translate(
    message: Dict[str, Any], bound_sid: Optional[int]
) -> Tuple[
    int, int, Tuple[int, int, int], int, Tuple[int, ...], Optional[SpanContext]
]:
    """Validate a ``translate`` request; returns its decoded fields.

    Returns ``(seq, sid, giovas, size_bytes, invalidations, trace_ctx)``
    where ``trace_ctx`` is ``None`` unless the client propagated span
    identity (see :func:`parse_trace_context`).  Raises
    :class:`ProtocolError` with a precise message on any malformed field,
    so the server can answer ``bad_request`` naming the offending part.
    """
    seq = message.get("seq")
    if not isinstance(seq, int):
        raise ProtocolError("translate needs an integer 'seq'")
    sid = message.get("sid", bound_sid)
    if not isinstance(sid, int):
        raise ProtocolError(
            "translate on an unbound connection needs an integer 'sid'"
        )
    giovas = message.get("giovas")
    if (
        not isinstance(giovas, list)
        or len(giovas) != 3
        or not all(isinstance(g, int) for g in giovas)
    ):
        raise ProtocolError("'giovas' must be a list of exactly 3 integers")
    size = message.get("size", 1542)
    if not isinstance(size, int) or size <= 0:
        raise ProtocolError(f"'size' must be a positive integer, got {size!r}")
    inv = message.get("inv", [])
    if not isinstance(inv, list) or not all(isinstance(p, int) for p in inv):
        raise ProtocolError("'inv' must be a list of integer page numbers")
    trace_ctx = parse_trace_context(message)
    return seq, sid, (giovas[0], giovas[1], giovas[2]), size, tuple(inv), trace_ctx
