"""The service's incremental driver around :class:`HyperSimulator`.

The offline simulator consumes a whole trace through its merge loop; the
service receives packets one at a time over the wire.
:class:`ServiceEngine` bridges the two **without forking any model
state**: it owns a real :class:`~repro.sim.simulator.HyperSimulator`
(fabric, caches, PTBs, shared chipset — everything PRs 1-5 built) and
replays the merge loop's per-packet step sequence for each submitted
packet:

1. place the packet on its device's cursor and compute the wire arrival
   (``clock + wire_time``), exactly as ``fetch_next`` would;
2. ``begin_packet()`` once — never on admission retries;
3. loop ``try_admit(arrival)``; each rejection advances ``next_time`` to
   the next free arrival slot (the paper's drop-and-retry), and the next
   attempt uses that time;
4. ``complete_packet(arrival)`` on admission.

For a single-device fabric the offline merge loop is strictly sequential
per packet, so submitting a trace's packets in trace order through this
engine performs the *identical* sequence of structure accesses — the
parity tests pin that the resulting :class:`SimulationResult` objects
compare equal.  With several devices the service processes packets in
submission order rather than global ``(time, device)`` merge order, so
parity is only guaranteed at ``devices.count == 1`` (see
docs/SERVICE.md).

Everything here is synchronous and picklable: the asyncio server calls
:meth:`submit` from its single dispatcher task, and warm restart pickles
the whole engine through the PR 5 checkpoint machinery (engine kind
``"service"``).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.config import ArchConfig
from repro.core.results import SimulationResult
from repro.sim.checkpoint import CheckpointError, SimulationCheckpoint
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import HyperTrace
from repro.trace.records import PacketRecord
from repro.service.protocol import PacketOutcome

#: Engine kind recorded in service checkpoints.
SERVICE_ENGINE_KIND = "service"


class UnknownTenantError(KeyError):
    """A submitted SID is not a tenant of the service's tenant system."""


class ServiceEngine:
    """Feed packets one at a time through an offline-identical model.

    ``trace`` provides the tenant *system* (page tables, walkers, SIDs) —
    the service ignores ``trace.packets``; packets arrive via
    :meth:`submit`.  For parity with an offline run, construct the trace
    with the same arguments on both sides (tenant systems are seeded and
    deterministic) and submit the offline trace's packets in order.
    """

    def __init__(
        self,
        config: ArchConfig,
        trace: HyperTrace,
        observability=None,
        fault_plan=None,
    ):
        self.sim = HyperSimulator(
            config,
            trace,
            observability=observability,
            fault_plan=fault_plan,
        )
        self.config = config
        self._valid_sids = frozenset(trace.system.sids())
        self._last_completion = 0.0
        self.processed = 0
        self._flushed: Optional[SimulationResult] = None

    # ------------------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return self.sim.fabric.num_devices

    def device_for_sid(self, sid: int) -> int:
        return self.sim.fabric.device_for_sid(sid)

    def knows_sid(self, sid: int) -> bool:
        return sid in self._valid_sids

    def sids(self):
        return sorted(self._valid_sids)

    # ------------------------------------------------------------------
    # Backpressure hooks (driven by the server's dispatcher)
    # ------------------------------------------------------------------
    def ptb_occupancy(self, device_id: int) -> int:
        """Modeled PTB occupancy of a device at its current virtual time."""
        engine = self.sim.engines[device_id]
        return engine.device.ptb.occupancy(engine.clock)

    def shed_slot(self, packet: PacketRecord) -> float:
        """Consume the packet's wire slot without processing it.

        Shed-mode backpressure: the packet is refused at the service
        layer, but its arrival still occupied the link — the device
        clock advances by one wire time, mirroring the paper's
        PTB-overflow drop (which also burns the arrival slot).  Returns
        the device's new virtual time.
        """
        engine = self.sim.engines[self.device_for_sid(packet.sid)]
        engine.clock += engine.wire_time(packet)
        return engine.clock

    def stall_until_drained(self, device_id: int, target_occupancy: int) -> float:
        """Pause-mode backpressure: stall the link until the PTB drains.

        Advances the device's virtual clock to the earliest time its PTB
        occupancy falls to ``target_occupancy`` — deterministic
        pause-the-link semantics.  Returns the new virtual time.
        """
        engine = self.sim.engines[device_id]
        drain_at = engine.device.ptb.drain_time_to(target_occupancy)
        if drain_at > engine.clock:
            engine.clock = drain_at
        return engine.clock

    # ------------------------------------------------------------------
    # The per-packet step sequence
    # ------------------------------------------------------------------
    def submit(self, packet: PacketRecord) -> PacketOutcome:
        """Run one packet through the model; returns its outcome.

        Raises :class:`UnknownTenantError` for a SID outside the tenant
        system — the tenant has no page tables, so there is nothing to
        translate.
        """
        if packet.sid not in self._valid_sids:
            raise UnknownTenantError(packet.sid)
        if self._flushed is not None:
            # Submitting after flush() would double-count the end-of-run
            # install drain; the server never does this, but fail loudly.
            raise RuntimeError("ServiceEngine already flushed")
        sim = self.sim
        engine = sim.engines[self.device_for_sid(packet.sid)]

        # Outcome capture: deltas of the same live counters the offline
        # result is built from.
        stats = sim.packet_stats
        devtlb = engine.device.devtlb.stats
        before_accepted = stats.accepted
        before_retried = stats.retried
        before_causes = dict(stats.drop_causes)
        before_hits = devtlb.hits
        before_misses = devtlb.misses
        before_count = sim.latency_stats.count
        before_total = sim.latency_stats.total_ns

        # fetch_next, minus the router: place the packet on the cursor.
        engine.current_packet = packet
        engine.current_is_retry = False
        engine.next_time = engine.clock + engine.wire_time(packet)
        first_arrival = engine.next_time
        engine.begin_packet()
        # The merge loop, specialised to one pending cursor: re-dispatch
        # this engine at its (advanced) next_time until admission.
        while True:
            arrival = engine.next_time
            if engine.try_admit(arrival):
                completion = engine.complete_packet(arrival)
                break
        self._last_completion = max(self._last_completion, completion)
        self.processed += 1

        causes: Dict[str, int] = {}
        for cause, count in stats.drop_causes.items():
            delta = count - before_causes.get(cause, 0)
            if delta:
                causes[cause] = delta
        return PacketOutcome(
            sid=packet.sid,
            accepted=stats.accepted - before_accepted > 0,
            drop_causes=causes,
            retried=stats.retried - before_retried,
            arrival_ns=first_arrival,
            completion_ns=completion,
            translations=sim.latency_stats.count - before_count,
            devtlb_hits=devtlb.hits - before_hits,
            devtlb_misses=devtlb.misses - before_misses,
            latency_ns=sim.latency_stats.total_ns - before_total,
        )

    def submit_batch(self, packets) -> "list[PacketOutcome]":
        """Run a whole wire read through the model in one call.

        Semantically identical to calling :meth:`submit` once per packet
        in order — same structure accesses, same per-packet outcomes —
        but the attribute lookups and counter captures are hoisted out
        of the loop, so the server's dispatcher can translate a drained
        queue batch without per-packet call overhead.

        Validation is *total*: every SID is checked before any packet
        touches the model, so an :class:`UnknownTenantError` (or the
        flush guard) raises with the engine state untouched — the server
        can safely fall back to the per-packet path for a batch that
        fails this precheck.
        """
        if self._flushed is not None:
            raise RuntimeError("ServiceEngine already flushed")
        valid = self._valid_sids
        for packet in packets:
            if packet.sid not in valid:
                raise UnknownTenantError(packet.sid)
        sim = self.sim
        stats = sim.packet_stats
        latency_stats = sim.latency_stats
        outcomes = []
        last_completion = self._last_completion
        for packet in packets:
            engine = sim.engines[self.device_for_sid(packet.sid)]
            devtlb = engine.device.devtlb.stats
            before_accepted = stats.accepted
            before_retried = stats.retried
            before_causes = dict(stats.drop_causes)
            before_hits = devtlb.hits
            before_misses = devtlb.misses
            before_count = latency_stats.count
            before_total = latency_stats.total_ns

            engine.current_packet = packet
            engine.current_is_retry = False
            engine.next_time = engine.clock + engine.wire_time(packet)
            first_arrival = engine.next_time
            engine.begin_packet()
            while True:
                arrival = engine.next_time
                if engine.try_admit(arrival):
                    completion = engine.complete_packet(arrival)
                    break
            if completion > last_completion:
                last_completion = completion

            causes: Dict[str, int] = {}
            for cause, count in stats.drop_causes.items():
                delta = count - before_causes.get(cause, 0)
                if delta:
                    causes[cause] = delta
            outcomes.append(
                PacketOutcome(
                    sid=packet.sid,
                    accepted=stats.accepted - before_accepted > 0,
                    drop_causes=causes,
                    retried=stats.retried - before_retried,
                    arrival_ns=first_arrival,
                    completion_ns=completion,
                    translations=latency_stats.count - before_count,
                    devtlb_hits=devtlb.hits - before_hits,
                    devtlb_misses=devtlb.misses - before_misses,
                    latency_ns=latency_stats.total_ns - before_total,
                )
            )
        self._last_completion = last_completion
        self.processed += len(outcomes)
        return outcomes

    # ------------------------------------------------------------------
    def flush(self) -> SimulationResult:
        """End-of-stream accounting; returns the aggregate result.

        Mirrors the tail of the offline run loop exactly: in-flight
        prefetch installs are applied, elapsed time is the latest of the
        last completion and every device clock, and the result is built
        at warmup 0.  Idempotent — repeated flushes return the same
        result object.
        """
        if self._flushed is None:
            sim = self.sim
            for engine in sim.engines:
                engine.drain_installs(float("inf"))
            elapsed = self._last_completion
            for engine in sim.engines:
                elapsed = max(elapsed, engine.clock)
            self._flushed = sim._build_result(elapsed)
        return self._flushed

    def peek_result(self) -> SimulationResult:
        """A mid-stream aggregate result (does *not* end the stream).

        Used by the ``stats`` endpoint; unlike :meth:`flush` it leaves
        in-flight prefetch installs pending, so it is safe to keep
        submitting afterwards.
        """
        if self._flushed is not None:
            return self._flushed
        elapsed = self._last_completion
        for engine in self.sim.engines:
            elapsed = max(elapsed, engine.clock)
        return self.sim._build_result(elapsed)

    # ------------------------------------------------------------------
    # Warm restart (PR 5 checkpoint path, engine kind "service")
    # ------------------------------------------------------------------
    def save_checkpoint(self, path, extra_state: Optional[dict] = None):
        """Snapshot this engine (and any ``extra_state``) to ``path``.

        The whole engine pickles through the same crash-safe machinery as
        offline runs (atomic tmp+fsync+replace, versioned header); a
        restored engine continues submitting where this one stopped.
        """
        state = {"service": self}
        if extra_state:
            state.update(extra_state)
        snapshot = SimulationCheckpoint(
            engine=SERVICE_ENGINE_KIND,
            packets_done=self.processed,
            config=self.sim._config_dict(),
            state=state,
        )
        return snapshot.save(path)


def load_service_checkpoint(path, expect_config: Optional[ArchConfig] = None):
    """Restore a :class:`ServiceEngine` checkpoint written by
    :meth:`ServiceEngine.save_checkpoint`.

    Returns ``(engine, state)`` where ``state`` is the full checkpoint
    state dict (the server stores its admission controller alongside the
    engine).  Cross-checks the engine kind, and the config when one is
    expected, mirroring :func:`repro.sim.checkpoint.resume_simulation`.
    """
    snapshot = SimulationCheckpoint.load(path)
    if snapshot.engine != SERVICE_ENGINE_KIND:
        raise CheckpointError(
            f"checkpoint {path} was written by the {snapshot.engine!r} engine; "
            f"cannot warm-restart the service from it"
        )
    if expect_config is not None:
        from repro.core.config_io import config_to_dict

        expected = config_to_dict(expect_config)
        if expected != snapshot.config:
            mismatched = sorted(
                key for key in set(expected) | set(snapshot.config)
                if expected.get(key) != snapshot.config.get(key)
            )
            raise CheckpointError(
                f"checkpoint {path} was written for a different config "
                f"(differs in: {', '.join(mismatched)})"
            )
    engine = snapshot.state["service"]
    if not isinstance(engine, ServiceEngine):
        raise CheckpointError(
            f"checkpoint {path} does not contain a service engine"
        )
    return engine, snapshot.state
