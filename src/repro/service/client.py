"""Async client library for the translation service.

:class:`ServiceClient` speaks the JSON-lines protocol of
:mod:`repro.service.server`.  Beyond single request/response calls
(:meth:`translate`, :meth:`stats`, :meth:`flush`, :meth:`ping`) it
provides the **load-generator mode** the experiments use:
:meth:`replay` streams a trace's packets through a sliding send window,
collects per-packet outcomes, and transparently survives a server warm
restart — on a ``restarting`` notice or a dropped connection it
reconnects (with bounded backoff) and resends every request the server
never answered, so the caller gets one outcome per packet even when the
server was SIGTERM'd and restarted from its checkpoint mid-stream.

Resend correctness leans on two service properties: results for queued
requests are written before the old server closes (so every processed
request is acked), and the warm-restart checkpoint is flushed *after*
the queue drained (so the new server's engine is positioned exactly
after the last acked packet).  The client therefore resends from the
first unacknowledged sequence number and nothing is ever translated
twice or skipped.

The sync wrapper :func:`replay_trace` runs a whole replay under
``asyncio.run`` for CLI and test use.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.service import protocol
from repro.trace.records import PacketRecord


class ServiceClientError(RuntimeError):
    """A protocol-level failure the client cannot retry."""


class ServiceClient:
    """One connection (plus reconnect identity) to a translation service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        sid: Optional[int] = None,
        connect_timeout: float = 10.0,
        trace: bool = False,
    ):
        self.host = host
        self.port = port
        #: Tenant binding sent in ``hello``; ``None`` = replay connection
        #: (per-request SIDs).
        self.sid = sid
        self.connect_timeout = connect_timeout
        #: Propagate span identity on every translate: one trace per
        #: request, ids derived from ``seq`` so two identical replays
        #: produce identical trees.  Old servers ignore the field.
        self.trace = trace
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        #: Wall-clock RTTs of awaited single requests (load-gen latency).
        self.rtts: List[float] = []
        self.reconnects = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    async def connect(self) -> Dict[str, Any]:
        """Open the connection and perform the ``hello`` handshake.

        Retries the TCP connect with bounded backoff up to
        ``connect_timeout`` seconds — this is what bridges a warm
        restart, when the new server has not bound the port yet.
        """
        deadline = time.monotonic() + self.connect_timeout
        delay = 0.05
        while True:
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                await asyncio.sleep(delay)
                delay = min(delay * 2, 0.5)
        hello: Dict[str, Any] = {
            "type": protocol.HELLO,
            "schema": protocol.PROTOCOL_SCHEMA,
        }
        if self.sid is not None:
            hello["sid"] = self.sid
        reply = await self._request(hello)
        if reply.get("type") != protocol.HELLO_OK:
            raise ServiceClientError(f"handshake failed: {reply}")
        return reply

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
        self._reader = None
        self._writer = None

    async def _reconnect(self) -> None:
        self.reconnects += 1
        await self.close()
        await self.connect()

    # ------------------------------------------------------------------
    # Wire primitives
    # ------------------------------------------------------------------
    async def _send(self, message: Dict[str, Any]) -> None:
        if self._writer is None:
            raise ServiceClientError("client is not connected")
        self._writer.write(protocol.encode(message))
        await self._writer.drain()

    async def _recv(self) -> Dict[str, Any]:
        if self._reader is None:
            raise ServiceClientError("client is not connected")
        line = await self._reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        return protocol.decode(line)

    async def _request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one message and await its (next) reply, timing the RTT."""
        started = time.monotonic()
        await self._send(message)
        reply = await self._recv()
        self.rtts.append(time.monotonic() - started)
        return reply

    # ------------------------------------------------------------------
    # Single requests
    # ------------------------------------------------------------------
    def _translate_message(
        self, packet: PacketRecord, seq: int, sid: Optional[int]
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {
            "type": protocol.TRANSLATE,
            "seq": seq,
            "giovas": list(packet.giovas),
            "size": packet.size_bytes,
        }
        if packet.invalidations:
            message["inv"] = list(packet.invalidations)
        if sid is None:
            message["sid"] = packet.sid
        if self.trace:
            message["trace"] = {"trace_id": f"t{seq:x}", "span_id": f"c{seq:x}"}
        return message

    async def translate(self, packet: PacketRecord, seq: int = 0) -> Dict[str, Any]:
        """Submit one packet and await its ``result`` (or typed error)."""
        return await self._request(
            self._translate_message(packet, seq, self.sid)
        )

    async def stats(self, fmt: Optional[str] = None) -> Dict[str, Any]:
        """Live server stats; ``fmt="prom"`` asks for Prometheus text."""
        message: Dict[str, Any] = {"type": protocol.STATS}
        if fmt is not None:
            message["format"] = fmt
        return await self._request(message)

    async def ping(self) -> Dict[str, Any]:
        return await self._request({"type": protocol.PING})

    async def flush(self) -> Dict[str, Any]:
        """End the modeled stream; returns the server's final result."""
        reply = await self._request({"type": protocol.FLUSH})
        if reply.get("type") != protocol.FLUSH_OK:
            raise ServiceClientError(f"flush failed: {reply}")
        return reply

    # ------------------------------------------------------------------
    # Load-generator mode
    # ------------------------------------------------------------------
    async def replay(
        self,
        packets: Sequence[PacketRecord],
        window: int = 64,
        on_outcome=None,
    ) -> List[Dict[str, Any]]:
        """Stream ``packets`` through the service; one reply per packet.

        Keeps up to ``window`` requests in flight.  Replies are matched
        by ``seq``; a ``restarting`` error/notice or a broken connection
        triggers reconnect-and-resend from the first unacknowledged
        sequence.  Returns the replies in packet order (``result``
        responses, or non-retryable typed errors such as
        ``rate_limited``).  ``on_outcome(seq, reply)`` is called as each
        reply lands.
        """
        total = len(packets)
        outcomes: List[Optional[Dict[str, Any]]] = [None] * total
        sent_at: Dict[int, float] = {}
        acked = 0

        def apply(reply: Dict[str, Any]) -> bool:
            """Record one reply; True if it answered a pending seq."""
            kind = reply.get("type")
            if kind == protocol.RESTARTING:
                return False
            if (
                kind == protocol.ERROR
                and reply.get("code") in protocol.RETRYABLE_CODES
            ):
                # The server refused this request while draining; it will
                # be resent after reconnecting.
                return False
            seq = reply.get("seq")
            if not isinstance(seq, int) or not 0 <= seq < total:
                return False
            if outcomes[seq] is not None:
                return False
            outcomes[seq] = reply
            started = sent_at.pop(seq, None)
            if started is not None:
                # Pipelined RTT: queueing + service time under the
                # current window — the load-gen latency sample.
                self.rtts.append(time.monotonic() - started)
            if on_outcome is not None:
                on_outcome(seq, reply)
            return True

        async def drain_pending_replies() -> None:
            """Consume buffered replies up to EOF before reconnecting.

            A graceful server writes every queued result *before* closing
            the connection; a failed send must not discard those — every
            reply lost here would be resent and translated twice.
            """
            if self._reader is None:
                return
            try:
                while True:
                    line = await asyncio.wait_for(
                        self._reader.readline(), timeout=5.0
                    )
                    if not line:
                        return
                    try:
                        apply(protocol.decode(line))
                    except protocol.ProtocolError:
                        continue
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
                OSError,
            ):
                return

        while acked < total:
            if self._writer is None:
                await self.connect()
            sent = acked
            try:
                while acked < total:
                    while sent < total and sent - acked < window:
                        if outcomes[sent] is None:
                            # Never resend an answered seq after a
                            # reconnect: the engine would translate it
                            # twice.
                            sent_at[sent] = time.monotonic()
                            await self._send(
                                self._translate_message(
                                    packets[sent], sent, self.sid
                                )
                            )
                        sent += 1
                    reply = await self._recv()
                    if reply.get("type") == protocol.RESTARTING:
                        raise ConnectionResetError("server restarting")
                    if apply(reply):
                        while acked < total and outcomes[acked] is not None:
                            acked += 1
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await drain_pending_replies()
                while acked < total and outcomes[acked] is not None:
                    acked += 1
                if acked >= total:
                    break
                await self._reconnect()
        return [reply for reply in outcomes if reply is not None]


def replay_trace(
    host: str,
    port: int,
    packets: Sequence[PacketRecord],
    sid: Optional[int] = None,
    window: int = 64,
    flush: bool = False,
    connect_timeout: float = 10.0,
    trace: bool = False,
):
    """Synchronous one-shot replay (CLI / tests / CI smoke).

    Returns ``(outcomes, flush_reply_or_None, client)`` — the client is
    returned for its RTT samples and reconnect count.  ``trace=True``
    propagates per-request span identity (see :class:`ServiceClient`).
    """

    async def _run():
        client = ServiceClient(
            host, port, sid=sid, connect_timeout=connect_timeout, trace=trace
        )
        await client.connect()
        try:
            outcomes = await client.replay(packets, window=window)
            flush_reply = await client.flush() if flush else None
        finally:
            await client.close()
        return outcomes, flush_reply, client

    return asyncio.run(_run())
