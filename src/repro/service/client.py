"""Async client library for the translation service.

:class:`ServiceClient` speaks the JSON-lines protocol of
:mod:`repro.service.server`.  Beyond single request/response calls
(:meth:`translate`, :meth:`stats`, :meth:`flush`, :meth:`ping`) it
provides the **load-generator mode** the experiments use:
:meth:`replay` streams a trace's packets through a sliding send window,
collects per-packet outcomes, and transparently survives a server warm
restart — on a ``restarting`` notice or a dropped connection it
reconnects (with bounded backoff) and resends every request the server
never answered, so the caller gets one outcome per packet even when the
server was SIGTERM'd and restarted from its checkpoint mid-stream.

Resend correctness leans on two service properties: results for queued
requests are written before the old server closes (so every processed
request is acked), and the warm-restart checkpoint is flushed *after*
the queue drained (so the new server's engine is positioned exactly
after the last acked packet).  The client therefore resends from the
first unacknowledged sequence number and nothing is ever translated
twice or skipped.

**Hardening** (docs/RESILIENCE.md): ``connect`` retries the TCP connect
*and* the ``hello`` exchange with full-jitter exponential backoff under
a hard cap, reports its attempt count in the handshake metadata, and can
sit behind a :class:`CircuitBreaker` (closed → open → half-open probe).
``replay`` takes a per-reply ``request_timeout`` so a stalled or
half-dead connection is abandoned instead of hanging, and with
``session=True`` the client carries a server-side exactly-once session:
resends after chaos (corrupted frames, mid-frame cuts, reconnect storms)
are deduplicated and re-ordered by the server, so the replayed result
stays byte-identical to the offline run no matter what the wire did.

The sync wrapper :func:`replay_trace` runs a whole replay under
``asyncio.run`` for CLI and test use.
"""

from __future__ import annotations

import asyncio
import random
import time
import uuid
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.service import protocol
from repro.trace.records import PacketRecord


class ServiceClientError(RuntimeError):
    """A protocol-level failure the client cannot retry."""


class CircuitBreaker:
    """Connect-attempt circuit breaker (closed → open → half-open).

    ``failure_threshold`` *consecutive* transport failures trip the
    breaker open: the next attempt waits out a full-jitter cooldown
    (doubling per consecutive trip, capped at ``max_cooldown_s``), then
    runs as the single half-open probe.  A successful probe closes the
    breaker and resets the cooldown ladder; a failed probe re-opens it
    one rung higher.  ``clock``/``rng``/``sleep`` are injectable so
    tests drive the state machine deterministically.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 0.1,
        max_cooldown_s: float = 5.0,
        clock=time.monotonic,
        rng: Optional[random.Random] = None,
        sleep=asyncio.sleep,
    ):
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.max_cooldown_s = max_cooldown_s
        self._clock = clock
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self.state = "closed"
        self.consecutive_failures = 0
        #: Consecutive open transitions (resets on success) — the rung
        #: of the cooldown ladder.
        self.trips = 0
        self._open_until = 0.0

    async def before_attempt(self) -> None:
        """Gate one attempt: waits out the cooldown when open."""
        if self.state != "open":
            return
        remaining = self._open_until - self._clock()
        if remaining > 0:
            await self._sleep(remaining)
        self.state = "half_open"

    def record_success(self) -> None:
        self.state = "closed"
        self.consecutive_failures = 0
        self.trips = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (
            self.state == "half_open"
            or self.consecutive_failures >= self.failure_threshold
        ):
            self.trips += 1
            self.state = "open"
            cooldown = min(
                self.max_cooldown_s, self.cooldown_s * (2 ** (self.trips - 1))
            )
            # Full jitter, floored at a tenth of the nominal cooldown so
            # a zero draw cannot turn "open" into a busy-loop.
            self._open_until = self._clock() + max(
                cooldown * 0.1, self._rng.uniform(0.0, cooldown)
            )


class ServiceClient:
    """One connection (plus reconnect identity) to a translation service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        sid: Optional[int] = None,
        connect_timeout: float = 10.0,
        trace: bool = False,
        request_timeout: Optional[float] = None,
        session: Union[bool, str] = False,
        breaker: Optional[CircuitBreaker] = None,
        backoff_base: float = 0.05,
        backoff_cap: float = 0.5,
        rng: Optional[random.Random] = None,
    ):
        self.host = host
        self.port = port
        #: Tenant binding sent in ``hello``; ``None`` = replay connection
        #: (per-request SIDs).
        self.sid = sid
        self.connect_timeout = connect_timeout
        #: Propagate span identity on every translate: one trace per
        #: request, ids derived from ``seq`` so two identical replays
        #: produce identical trees.  Old servers ignore the field.
        self.trace = trace
        #: Per-reply deadline in :meth:`replay`; ``None`` waits forever
        #: (the legacy behaviour — correct only on a fault-free wire).
        self.request_timeout = request_timeout
        #: Exactly-once session id sent in ``hello``.  ``True`` draws a
        #: fresh id; a string pins one (to resume across client objects).
        #: ``False``/``None`` keeps the legacy session-less wire format.
        self.session_id: Optional[str] = (
            uuid.uuid4().hex if session is True else (session or None)
        )
        #: Optional connect-attempt circuit breaker (shared across
        #: clients if the caller wants a per-endpoint breaker).
        self.breaker = breaker
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = rng if rng is not None else random.Random()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        #: Wall-clock RTTs of awaited single requests (load-gen latency).
        self.rtts: List[float] = []
        self.reconnects = 0
        #: Total connect attempts (TCP dials) over the client's lifetime.
        self.connect_attempts = 0
        #: Replies that hit ``request_timeout`` and forced a reconnect.
        self.request_timeouts = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    async def connect(self) -> Dict[str, Any]:
        """Open the connection and perform the ``hello`` handshake.

        Retries the TCP connect *and the handshake itself* with
        full-jitter exponential backoff (base ``backoff_base``, hard cap
        ``backoff_cap``) up to ``connect_timeout`` seconds — this
        bridges both a warm restart (port not bound yet) and a chaotic
        wire that cuts the connection mid-``hello``.  The attempt count
        travels in the hello metadata so the server can account for
        handshake churn.  A *typed* handshake refusal is a real answer
        and raises immediately; only transport failures retry.
        """
        deadline = time.monotonic() + self.connect_timeout
        delay = self.backoff_base
        attempts = 0
        while True:
            if self.breaker is not None:
                await self.breaker.before_attempt()
            attempts += 1
            self.connect_attempts += 1
            try:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
                hello: Dict[str, Any] = {
                    "type": protocol.HELLO,
                    "schema": protocol.PROTOCOL_SCHEMA,
                    "attempts": attempts,
                }
                if self.sid is not None:
                    hello["sid"] = self.sid
                if self.session_id is not None:
                    hello["session"] = self.session_id
                budget = max(0.05, deadline - time.monotonic())
                reply = await asyncio.wait_for(self._request(hello), budget)
                if reply.get("type") != protocol.HELLO_OK:
                    if self.breaker is not None:
                        self.breaker.record_failure()
                    raise ServiceClientError(f"handshake failed: {reply}")
                if self.breaker is not None:
                    self.breaker.record_success()
                return reply
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
                protocol.ProtocolError,
            ):
                if self.breaker is not None:
                    self.breaker.record_failure()
                await self.close()
                if time.monotonic() >= deadline:
                    raise
                # Full jitter: sleep uniform(0, delay), doubling the
                # window each failed attempt up to the hard cap.
                await asyncio.sleep(self._rng.uniform(0.0, delay))
                delay = min(delay * 2, self.backoff_cap)

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
        self._reader = None
        self._writer = None

    async def _reconnect(self) -> None:
        self.reconnects += 1
        await self.close()
        await self.connect()

    # ------------------------------------------------------------------
    # Wire primitives
    # ------------------------------------------------------------------
    async def _send(self, message: Dict[str, Any]) -> None:
        if self._writer is None:
            raise ServiceClientError("client is not connected")
        self._writer.write(protocol.encode(message))
        await self._writer.drain()

    async def _recv(self) -> Dict[str, Any]:
        if self._reader is None:
            raise ServiceClientError("client is not connected")
        line = await self._reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        return protocol.decode(line)

    async def _request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one message and await its (next) reply, timing the RTT."""
        started = time.monotonic()
        await self._send(message)
        reply = await self._recv()
        self.rtts.append(time.monotonic() - started)
        return reply

    # ------------------------------------------------------------------
    # Single requests
    # ------------------------------------------------------------------
    def _translate_message(
        self,
        packet: PacketRecord,
        seq: int,
        sid: Optional[int],
        ack: Optional[int] = None,
    ) -> Dict[str, Any]:
        message: Dict[str, Any] = {
            "type": protocol.TRANSLATE,
            "seq": seq,
            "giovas": list(packet.giovas),
            "size": packet.size_bytes,
        }
        if packet.invalidations:
            message["inv"] = list(packet.invalidations)
        if sid is None:
            message["sid"] = packet.sid
        if self.trace:
            message["trace"] = {"trace_id": f"t{seq:x}", "span_id": f"c{seq:x}"}
        if self.session_id is not None and ack is not None:
            # Ack watermark: every seq below it has an outcome, so the
            # server can evict those entries from the session cache.
            message["ack"] = ack
        return message

    async def translate(self, packet: PacketRecord, seq: int = 0) -> Dict[str, Any]:
        """Submit one packet and await its ``result`` (or typed error)."""
        return await self._request(
            self._translate_message(packet, seq, self.sid)
        )

    async def stats(self, fmt: Optional[str] = None) -> Dict[str, Any]:
        """Live server stats; ``fmt="prom"`` asks for Prometheus text."""
        message: Dict[str, Any] = {"type": protocol.STATS}
        if fmt is not None:
            message["format"] = fmt
        return await self._request(message)

    async def ping(self) -> Dict[str, Any]:
        return await self._request({"type": protocol.PING})

    async def flush(self) -> Dict[str, Any]:
        """End the modeled stream; returns the server's final result.

        With a session, flush is retried over a reconnect on transport
        failures (it is idempotent on the server: the engine state it
        reads is unchanged by asking twice); session-less clients keep
        the legacy raise-on-first-failure behaviour.  Stale duplicate
        ``result`` frames still in flight from chaos resends are skipped
        while waiting for the ``flush_ok``.
        """
        attempts = 3 if self.session_id is not None else 1
        for attempt in range(attempts):
            try:
                reply = await self._request({"type": protocol.FLUSH})
                while reply.get("type") == protocol.RESULT:
                    reply = await self._recv()
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                if attempt == attempts - 1:
                    raise
                await self._reconnect()
                continue
            if reply.get("type") != protocol.FLUSH_OK:
                raise ServiceClientError(f"flush failed: {reply}")
            return reply
        raise ServiceClientError("flush failed")  # pragma: no cover

    # ------------------------------------------------------------------
    # Load-generator mode
    # ------------------------------------------------------------------
    async def replay(
        self,
        packets: Sequence[PacketRecord],
        window: int = 64,
        on_outcome=None,
    ) -> List[Dict[str, Any]]:
        """Stream ``packets`` through the service; one reply per packet.

        Keeps up to ``window`` requests in flight.  Replies are matched
        by ``seq``; a ``restarting`` error/notice or a broken connection
        triggers reconnect-and-resend from the first unacknowledged
        sequence.  Returns the replies in packet order (``result``
        responses, or non-retryable typed errors such as
        ``rate_limited``).  ``on_outcome(seq, reply)`` is called as each
        reply lands.

        With ``request_timeout`` set, a reply that fails to land within
        the deadline is treated as a dead connection (drain, reconnect,
        resend).  With a session, an undecodable frame is likewise a
        reconnect (the server's session cache makes the resend exact);
        without one it stays a loud failure, because a silent resend
        could translate the packet twice.
        """
        total = len(packets)
        outcomes: List[Optional[Dict[str, Any]]] = [None] * total
        sent_at: Dict[int, float] = {}
        acked = 0

        def apply(reply: Dict[str, Any]) -> bool:
            """Record one reply; True if it answered a pending seq."""
            kind = reply.get("type")
            if kind == protocol.RESTARTING:
                return False
            if (
                kind == protocol.ERROR
                and reply.get("code") in protocol.RETRYABLE_CODES
            ):
                # The server refused this request while draining; it will
                # be resent after reconnecting.
                return False
            seq = reply.get("seq")
            if not isinstance(seq, int) or not 0 <= seq < total:
                return False
            if outcomes[seq] is not None:
                return False
            outcomes[seq] = reply
            started = sent_at.pop(seq, None)
            if started is not None:
                # Pipelined RTT: queueing + service time under the
                # current window — the load-gen latency sample.
                self.rtts.append(time.monotonic() - started)
            if on_outcome is not None:
                on_outcome(seq, reply)
            return True

        async def drain_pending_replies() -> None:
            """Consume buffered replies up to EOF before reconnecting.

            A graceful server writes every queued result *before* closing
            the connection; a failed send must not discard those — every
            reply lost here would be resent and translated twice.
            """
            if self._reader is None:
                return
            drain_timeout = (
                self.request_timeout if self.request_timeout is not None else 5.0
            )
            try:
                while True:
                    line = await asyncio.wait_for(
                        self._reader.readline(), timeout=drain_timeout
                    )
                    if not line:
                        return
                    try:
                        apply(protocol.decode(line))
                    except protocol.ProtocolError:
                        continue
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
                OSError,
            ):
                return

        async def recv_reply() -> Dict[str, Any]:
            """One reply under the request deadline and frame hygiene."""
            try:
                if self.request_timeout is None:
                    return await self._recv()
                return await asyncio.wait_for(
                    self._recv(), self.request_timeout
                )
            except asyncio.TimeoutError:
                self.request_timeouts += 1
                raise ConnectionResetError(
                    "request deadline exceeded"
                ) from None
            except protocol.ProtocolError:
                if self.session_id is None:
                    # Without a session a corrupt frame is unrecoverable:
                    # the reply it carried is lost, and a blind resend
                    # would translate that packet twice.  Fail loudly
                    # rather than silently diverge from the offline run.
                    raise
                raise ConnectionResetError("corrupt frame on wire") from None

        while acked < total:
            if self._writer is None:
                await self.connect()
            sent = acked
            try:
                while acked < total:
                    while sent < total and sent - acked < window:
                        if outcomes[sent] is None:
                            # Never resend an answered seq after a
                            # reconnect: the engine would translate it
                            # twice.
                            sent_at[sent] = time.monotonic()
                            await self._send(
                                self._translate_message(
                                    packets[sent], sent, self.sid, ack=acked
                                )
                            )
                        sent += 1
                    reply = await recv_reply()
                    if reply.get("type") == protocol.RESTARTING:
                        raise ConnectionResetError("server restarting")
                    if apply(reply):
                        while acked < total and outcomes[acked] is not None:
                            acked += 1
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await drain_pending_replies()
                while acked < total and outcomes[acked] is not None:
                    acked += 1
                if acked >= total:
                    break
                await self._reconnect()
        return [reply for reply in outcomes if reply is not None]


def replay_trace(
    host: str,
    port: int,
    packets: Sequence[PacketRecord],
    sid: Optional[int] = None,
    window: int = 64,
    flush: bool = False,
    connect_timeout: float = 10.0,
    trace: bool = False,
    session: Union[bool, str] = False,
    request_timeout: Optional[float] = None,
    breaker: Optional[CircuitBreaker] = None,
):
    """Synchronous one-shot replay (CLI / tests / CI smoke).

    Returns ``(outcomes, flush_reply_or_None, client)`` — the client is
    returned for its RTT samples and reconnect count.  ``trace=True``
    propagates per-request span identity (see :class:`ServiceClient`).
    ``session``/``request_timeout``/``breaker`` opt into the hardened
    exactly-once mode (chaos replays); the defaults keep the legacy wire
    format byte-for-byte.
    """

    async def _run():
        client = ServiceClient(
            host,
            port,
            sid=sid,
            connect_timeout=connect_timeout,
            trace=trace,
            session=session,
            request_timeout=request_timeout,
            breaker=breaker,
        )
        await client.connect()
        try:
            outcomes = await client.replay(packets, window=window)
            flush_reply = await client.flush() if flush else None
        finally:
            await client.close()
        return outcomes, flush_reply, client

    return asyncio.run(_run())
