"""Per-tenant admission control for the translation service.

Two independent gates run in front of the engine, per tenant:

* a **token bucket** (``rate_per_s`` tokens/second, ``burst`` capacity)
  bounds each tenant's sustained request rate — the service-layer
  analogue of the shadow-queue admission in NVMe queue passthrough
  (Chen et al.): a tenant cannot monopolise the shared fabric simply by
  submitting faster;
* a **queue-depth cap** (``max_queue_depth``) bounds how many of a
  tenant's requests may sit in the service's dispatch queue at once,
  keeping one tenant's backlog from inflating every tenant's latency.

A third, *fabric-level* gate reacts to modeled PTB occupancy: when a
device's Pending Translation Buffer crosses ``ptb_high_watermark`` the
controller latches that device into a backpressure state, released only
when occupancy falls back to ``ptb_low_watermark`` (hysteresis, so the
gate does not flap around the threshold).  What happens while latched is
``backpressure_mode``:

* ``"shed"`` (default): the request is refused with a typed
  ``backpressure`` error and the device consumes the wire slot anyway —
  the service-layer mirror of the paper's PTB-overflow drop-and-retry;
* ``"pause"``: the device's virtual clock is stalled to the PTB drain
  time before the packet is admitted (pause-the-link semantics), trading
  added latency for zero sheds.

All gates are pure bookkeeping over injected clocks, so they are
deterministic under test and checkpoint-friendly: only the token
buckets' refill timestamps reference wall time, and those are reset on
warm restart (:meth:`AdmissionController.reset_runtime`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.service import protocol


@dataclass(frozen=True)
class AdmissionConfig:
    """Tunables of the service admission layer.

    The defaults disable every gate, so a default-configured service is a
    pure transport in front of the engine — this is what keeps the
    service-vs-offline parity guarantee unconditional.
    """

    #: Sustained per-tenant request rate (requests/second).  ``None``
    #: disables rate limiting; ``0.0`` (or negative) denies every request
    #: from that tenant (a quiesced tenant).
    rate_per_s: Optional[float] = None
    #: Token-bucket capacity: the largest back-to-back burst admitted.
    burst: int = 64
    #: Max requests a tenant may have queued in the service at once.
    #: ``None`` disables the cap.
    max_queue_depth: Optional[int] = None
    #: PTB occupancy (entries) at which backpressure latches for a
    #: device.  ``None`` disables the fabric-level gate.
    ptb_high_watermark: Optional[int] = None
    #: Occupancy at which a latched device releases.  Defaults to half
    #: the high watermark when left ``None``.
    ptb_low_watermark: Optional[int] = None
    #: ``"shed"`` (typed error, wire slot consumed) or ``"pause"``
    #: (stall virtual time until the PTB drains).
    backpressure_mode: str = "shed"
    #: Per-SID overrides of ``rate_per_s``.
    tenant_rates: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.backpressure_mode not in ("shed", "pause"):
            raise ValueError(
                f"backpressure_mode must be 'shed' or 'pause', "
                f"got {self.backpressure_mode!r}"
            )
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if (
            self.ptb_high_watermark is not None
            and self.ptb_high_watermark < 1
        ):
            raise ValueError("ptb_high_watermark must be >= 1")

    def rate_for(self, sid: int) -> Optional[float]:
        return self.tenant_rates.get(sid, self.rate_per_s)

    def low_watermark(self) -> int:
        if self.ptb_low_watermark is not None:
            return self.ptb_low_watermark
        return (self.ptb_high_watermark or 0) // 2


class TokenBucket:
    """A classic token bucket over an injected monotonic clock.

    Starts full (so a cold tenant can burst exactly ``capacity``
    requests) unless the rate is zero-or-negative, in which case it is
    permanently empty — a zero-rate tenant is denied everything.
    """

    def __init__(self, rate_per_s: float, capacity: int):
        self.rate = rate_per_s
        self.capacity = capacity
        self.tokens = float(capacity) if rate_per_s > 0 else 0.0
        #: Last refill timestamp; ``None`` until first use (and after a
        #: warm restart, because monotonic epochs differ across
        #: processes).
        self.last: Optional[float] = None

    def try_take(self, now: float) -> bool:
        if self.rate <= 0:
            return False
        if self.last is not None and now > self.last:
            self.tokens = min(
                float(self.capacity), self.tokens + (now - self.last) * self.rate
            )
        self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class TenantAdmissionStats:
    """Admission outcomes of one tenant, for the ``stats`` endpoint."""

    admitted: int = 0
    rate_limited: int = 0
    queue_full: int = 0
    backpressure_shed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "admitted": self.admitted,
            "rate_limited": self.rate_limited,
            "queue_full": self.queue_full,
            "backpressure_shed": self.backpressure_shed,
        }


class AdmissionController:
    """Applies :class:`AdmissionConfig` to a stream of requests.

    :meth:`acquire` runs the per-tenant gates at enqueue time (in the
    connection handler); :meth:`release` returns the queue-depth slot
    when the request leaves the service (processed, shed, or the
    connection died).  The fabric-level PTB gate runs separately in the
    dispatcher (:meth:`check_backpressure`) because occupancy is only
    meaningful at the engine's virtual submission time.
    """

    #: Latched by the server's SLO watch engine (``--slo-backpressure``):
    #: while True, every dispatch sees backpressure regardless of PTB
    #: occupancy.  Class-level default so controllers pickled into
    #: checkpoints before this attribute existed still load.
    slo_latched = False

    def __init__(self, config: Optional[AdmissionConfig] = None):
        self.config = config or AdmissionConfig()
        self._buckets: Dict[int, TokenBucket] = {}
        self._in_flight: Dict[int, int] = {}
        self._latched: Dict[int, bool] = {}
        self.stats: Dict[int, TenantAdmissionStats] = {}

    # ------------------------------------------------------------------
    def _stats_for(self, sid: int) -> TenantAdmissionStats:
        stats = self.stats.get(sid)
        if stats is None:
            stats = self.stats[sid] = TenantAdmissionStats()
        return stats

    def _bucket_for(self, sid: int) -> Optional[TokenBucket]:
        rate = self.config.rate_for(sid)
        if rate is None:
            return None
        bucket = self._buckets.get(sid)
        if bucket is None:
            bucket = self._buckets[sid] = TokenBucket(rate, self.config.burst)
        return bucket

    # ------------------------------------------------------------------
    def acquire(self, sid: int, now: float) -> Optional[str]:
        """Admit one request from ``sid`` at wall time ``now``.

        Returns ``None`` on admission (the tenant's in-flight count is
        incremented — pair with :meth:`release`) or a typed error code
        (:data:`~repro.service.protocol.E_RATE_LIMITED` /
        :data:`~repro.service.protocol.E_QUEUE_FULL`).
        """
        stats = self._stats_for(sid)
        depth_cap = self.config.max_queue_depth
        if depth_cap is not None and self._in_flight.get(sid, 0) >= depth_cap:
            stats.queue_full += 1
            return protocol.E_QUEUE_FULL
        bucket = self._bucket_for(sid)
        if bucket is not None and not bucket.try_take(now):
            stats.rate_limited += 1
            return protocol.E_RATE_LIMITED
        self._in_flight[sid] = self._in_flight.get(sid, 0) + 1
        stats.admitted += 1
        return None

    def release(self, sid: int) -> None:
        """Return ``sid``'s queue-depth slot (request left the service)."""
        count = self._in_flight.get(sid, 0)
        if count > 0:
            self._in_flight[sid] = count - 1

    def in_flight(self, sid: int) -> int:
        return self._in_flight.get(sid, 0)

    # ------------------------------------------------------------------
    def check_backpressure(self, device_id: int, occupancy: int) -> bool:
        """Update the latch for a device; True while backpressure holds.

        Hysteresis: latches at/above the high watermark, releases only
        at/below the low watermark.  An SLO-driven latch
        (:attr:`slo_latched`) overrides: it holds until the watch engine
        clears it, independent of this device's occupancy.
        """
        if self.slo_latched:
            return True
        high = self.config.ptb_high_watermark
        if high is None:
            return False
        latched = self._latched.get(device_id, False)
        if latched:
            if occupancy <= self.config.low_watermark():
                self._latched[device_id] = False
                return False
            return True
        if occupancy >= high:
            self._latched[device_id] = True
            return True
        return False

    def record_shed(self, sid: int) -> None:
        self._stats_for(sid).backpressure_shed += 1

    def is_latched(self, device_id: int) -> bool:
        return self._latched.get(device_id, False)

    # ------------------------------------------------------------------
    def reset_runtime(self) -> None:
        """Clear process-bound runtime state after a warm restart.

        In-flight counts belong to connections of the old process,
        backpressure latches are recomputed from live occupancy, and
        token-bucket refill timestamps reference the old process's
        monotonic epoch — all reset; configured rates, capacities, and
        cumulative stats survive.
        """
        self._in_flight.clear()
        self._latched.clear()
        self.slo_latched = False
        for bucket in self._buckets.values():
            bucket.last = None

    def snapshot(self) -> Dict[int, Dict[str, int]]:
        """Copy-on-read per-tenant admission stats."""
        return {sid: stats.as_dict() for sid, stats in sorted(self.stats.items())}
