"""Asyncio TCP front end of the translation service.

Architecture (one process, one event loop):

* one **connection handler** per client parses JSON lines, answers
  protocol-level requests (``hello``, ``stats``, ``ping``) inline, and
  runs the per-tenant admission gates on each ``translate`` before
  enqueueing it;
* one **dispatcher task** drains a single global FIFO queue and drives
  the :class:`~repro.service.engine.ServiceEngine` one packet at a time.
  A single queue gives the whole service a deterministic global
  submission order — for one replay connection, exactly trace order,
  which is what the service-vs-offline parity tests rely on.

The dispatcher is also where fabric-level backpressure runs, because PTB
occupancy is only meaningful at the engine's virtual submission time:
when a device's modeled PTB crosses the configured high watermark, the
request is either **shed** with a typed ``backpressure`` error (the wire
slot is still consumed — the paper's PTB-overflow drop at the service
layer) or the device's virtual clock is **paused** to the PTB drain
time before admission.

Requests queued by a client that disconnects mid-stream are discarded at
dispatch: their admission slots are released and the engine never sees
them, so a dying client leaks no engine state (pinned by
``tests/test_service_admission.py``).

Graceful shutdown (SIGTERM/SIGINT or :meth:`ServiceServer.shutdown`)
drains in order: stop accepting, refuse new translates with a typed
``restarting`` error, finish every queued request (results still reach
their clients), flush a PR 5-style checkpoint (engine kind
``"service"``), notify live connections with a ``restarting`` notice
carrying the checkpoint path, then close.  A new server started from
that checkpoint (``repro-sim serve --resume``) continues warm: caches,
PTB heaps, virtual clocks, and cumulative stats all survive.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional

from repro.obs.phases import PHASE_LOOKUP, PHASE_PTB, PHASE_WALK
from repro.obs.prom import counter_line, gauge_line, registry_to_prom
from repro.obs.slo import SloSample, SloWatcher
from repro.service import protocol
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.engine import ServiceEngine, load_service_checkpoint
from repro.trace.records import PacketRecord

#: Dispatched packets between SLO-rule evaluations (cheap, but there is
#: no reason to re-derive percentiles on every single packet).
SLO_EVAL_INTERVAL = 16

#: Span names of the server-side request tree, in parent order.
SPAN_WIRE = "wire.read"
SPAN_ADMISSION = "admission"
SPAN_DISPATCH = "dispatch"
SPAN_ENGINE = "engine.step"
#: Phase-profiler segments surfaced as synthesized engine.step children.
SPAN_PHASE_NAMES = (
    (PHASE_LOOKUP, "cache.lookup"),
    (PHASE_WALK, "walk"),
    (PHASE_PTB, "ptb"),
)


class _Connection:
    """Per-connection state shared between its handler and the dispatcher."""

    __slots__ = ("writer", "bound_sid", "closed", "name")

    def __init__(self, writer: asyncio.StreamWriter, name: str):
        self.writer = writer
        self.bound_sid: Optional[int] = None
        self.closed = False
        self.name = name

    def send(self, message: Dict[str, Any]) -> None:
        """Best-effort single-line write (skipped once closed)."""
        if self.closed:
            return
        try:
            self.writer.write(protocol.encode(message))
        except (ConnectionError, RuntimeError):
            self.closed = True


class ServiceServer:
    """The translation-as-a-service front end.

    Parameters
    ----------
    engine:
        The :class:`~repro.service.engine.ServiceEngine` to drive —
        freshly built, or restored via
        :func:`~repro.service.engine.load_service_checkpoint` for a warm
        restart.
    admission:
        Admission configuration (or a restored
        :class:`~repro.service.admission.AdmissionController`).  The
        default config disables every gate — a pure transport.
    checkpoint_path:
        Where graceful shutdown flushes the warm-restart snapshot;
        ``None`` disables the snapshot (shutdown still drains cleanly).
    spans:
        Optional :class:`~repro.obs.spans.SpanRecorder`.  When attached,
        every translate grows a parented span tree (``wire.read`` ->
        ``admission`` / ``dispatch`` -> ``engine.step`` -> phase
        children), rooted under the client's wire-propagated
        :class:`~repro.obs.spans.SpanContext` when one was sent.
    slo_watcher:
        Optional :class:`~repro.obs.slo.SloWatcher`, evaluated against
        live engine state every :data:`SLO_EVAL_INTERVAL` dispatched
        packets.
    slo_backpressure:
        When true, any breached SLO rule latches service-wide admission
        backpressure (sheds/pauses like the PTB watermark gate) until
        every rule recovers.
    """

    def __init__(
        self,
        engine: ServiceEngine,
        admission: Optional[AdmissionConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint_path=None,
        clock=time.monotonic,
        spans=None,
        slo_watcher: Optional[SloWatcher] = None,
        slo_backpressure: bool = False,
        batch_window: int = 64,
    ):
        self.engine = engine
        if isinstance(admission, AdmissionController):
            self.admission = admission
        else:
            self.admission = AdmissionController(admission)
        self.host = host
        self.port = port
        self.checkpoint_path = checkpoint_path
        self._clock = clock
        #: Null-object resolution, like the simulator's: a disabled
        #: recorder never reaches the dispatch path.
        self.spans = spans if (spans is not None and spans.enabled) else None
        self.slo_watcher = slo_watcher
        self.slo_backpressure = slo_backpressure
        self._dispatched_since_slo = 0
        #: Max queued requests translated per dispatcher pass; 1 restores
        #: strict per-packet dispatch (batching never reorders — packets
        #: drain in FIFO order either way).
        self.batch_window = max(1, batch_window)
        self._server: Optional[asyncio.base_events.Server] = None
        # Created in start(): on Python 3.9 asyncio primitives bind to the
        # event loop current at construction, which must be the running one.
        self._queue: Optional["asyncio.Queue"] = None
        self._dispatcher_task: Optional[asyncio.Task] = None
        self._connections: List[_Connection] = []
        self._draining = False
        self._shutdown_requested: Optional[asyncio.Event] = None
        self.stopped: Optional[asyncio.Event] = None
        #: Wall-clock service counters (wire-level, not modeled).
        self.requests_received = 0
        self.results_sent = 0
        #: Requests translated via the whole-batch fast path vs one at a
        #: time (observability for the dispatcher's batching behaviour).
        self.batched_requests = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start serving; resolves once the socket listens."""
        self._queue = asyncio.Queue()
        self._shutdown_requested = asyncio.Event()
        self.stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher_task = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    def request_shutdown(self) -> None:
        """Signal-safe shutdown trigger (wired to SIGTERM by the CLI)."""
        self._shutdown_requested.set()

    async def serve_until_shutdown(self) -> None:
        """Run until :meth:`request_shutdown`, then drain and stop."""
        await self._shutdown_requested.wait()
        await self.shutdown()

    async def shutdown(self) -> Optional[str]:
        """Graceful drain: see the module docstring for the exact order.

        Returns the checkpoint path when a snapshot was flushed.
        """
        if self._draining:
            await self.stopped.wait()
            return str(self.checkpoint_path) if self.checkpoint_path else None
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Finish everything already admitted; their results still reach
        # the clients over the open connections.
        await self._queue.join()
        if self._dispatcher_task is not None:
            self._queue.put_nowait(None)
            await self._dispatcher_task
        saved: Optional[str] = None
        if self.checkpoint_path is not None:
            self.engine.save_checkpoint(
                self.checkpoint_path, extra_state={"admission": self.admission}
            )
            saved = str(self.checkpoint_path)
        notice: Dict[str, Any] = {"type": protocol.RESTARTING}
        if saved is not None:
            notice["checkpoint"] = saved
        for conn in list(self._connections):
            conn.send(notice)
            conn.closed = True
            try:
                await conn.writer.drain()
            except ConnectionError:
                pass
            conn.writer.close()
        self.stopped.set()
        return saved

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        engine = self.engine
        admission = self.admission
        queue = self._queue
        while True:
            item = await queue.get()
            if item is None:
                queue.task_done()
                return
            # One dispatcher pass: drain everything already queued (one
            # wire read's worth of requests, up to the batch window)
            # without yielding, then write replies and drain writers
            # once per touched connection.
            batch = [item]
            stop = False
            while len(batch) < self.batch_window:
                try:
                    extra = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    stop = True
                    break
                batch.append(extra)
            touched: Dict[int, _Connection] = {}
            if (
                len(batch) > 1
                and self.spans is None
                and admission.config.ptb_high_watermark is None
                and not admission.slo_latched
                and engine._flushed is None
                and all(
                    not it[0].closed and engine.knows_sid(it[2].sid)
                    for it in batch
                )
            ):
                # Whole-batch translate: no per-packet server-side branch
                # can fire (no spans, no backpressure gate, every client
                # alive, every SID known), so the engine runs the batch
                # in one call with identical per-packet outcomes.
                outcomes = engine.submit_batch([it[2] for it in batch])
                self.batched_requests += len(outcomes)
                for (conn, seq, packet, _), outcome in zip(batch, outcomes):
                    try:
                        admission.release(packet.sid)
                        conn.send(outcome.to_wire(seq))
                        self.results_sent += 1
                        touched[id(conn)] = conn
                    finally:
                        self._maybe_evaluate_slo()
                        queue.task_done()
            else:
                for it in batch:
                    conn = self._dispatch_one(it)
                    if conn is not None:
                        touched[id(conn)] = conn
            # Yield so connection handlers and writers get scheduled
            # between passes even under a full queue.
            for conn in touched.values():
                if not conn.closed:
                    try:
                        await conn.writer.drain()
                    except ConnectionError:
                        conn.closed = True
            if stop:
                queue.task_done()
                return

    def _dispatch_one(self, item) -> Optional[_Connection]:
        """Translate one queued request (the strict per-packet path).

        Returns the connection a reply was written to, or ``None`` when
        the request was discarded; the caller drains writers per pass.
        """
        engine = self.engine
        admission = self.admission
        queue = self._queue
        spans = self.spans
        conn, seq, packet, wire_span = item
        dispatch_span = None
        if spans is not None:
            dispatch_span = spans.start(
                SPAN_DISPATCH, parent=wire_span, sid=packet.sid, seq=seq
            )
        try:
            if conn.closed:
                # Client died with this request still queued: discard
                # it before the engine sees it — no engine-state leak.
                admission.release(packet.sid)
                if dispatch_span is not None:
                    dispatch_span.attrs["outcome"] = "discarded"
                return None
            device_id = engine.device_for_sid(packet.sid)
            occupancy = engine.ptb_occupancy(device_id)
            if admission.check_backpressure(device_id, occupancy):
                if admission.config.backpressure_mode == "shed":
                    engine.shed_slot(packet)
                    admission.record_shed(packet.sid)
                    admission.release(packet.sid)
                    conn.send(
                        protocol.error_reply(
                            protocol.E_BACKPRESSURE,
                            f"PTB occupancy {occupancy} at high watermark; "
                            f"request shed",
                            seq=seq,
                        )
                    )
                    if dispatch_span is not None:
                        dispatch_span.attrs["outcome"] = "shed"
                    return conn
                engine.stall_until_drained(
                    device_id, admission.config.low_watermark()
                )
            step_span = None
            phase_before = None
            phases = engine.sim._phases
            if spans is not None:
                step_span = spans.start(
                    SPAN_ENGINE, parent=dispatch_span, sid=packet.sid
                )
                if phases is not None:
                    phase_before = phases.totals()
            try:
                outcome = engine.submit(packet)
            except Exception as error:
                admission.release(packet.sid)
                conn.send(
                    protocol.error_reply(
                        protocol.E_TRANSLATION, str(error), seq=seq
                    )
                )
                if step_span is not None:
                    spans.finish(step_span, error=str(error))
                    dispatch_span.attrs["outcome"] = "error"
                return conn
            if step_span is not None:
                spans.finish(step_span, accepted=outcome.accepted)
                if phase_before is not None:
                    self._add_phase_spans(
                        step_span, phase_before, phases.totals(), packet.sid
                    )
                dispatch_span.attrs["outcome"] = outcome.status
            admission.release(packet.sid)
            conn.send(outcome.to_wire(seq))
            self.results_sent += 1
            return conn
        finally:
            if dispatch_span is not None:
                spans.finish(dispatch_span)
            self._maybe_evaluate_slo()
            queue.task_done()

    def _add_phase_spans(self, step_span, before, after, sid: int) -> None:
        """Synthesize phase children under one finished ``engine.step``.

        The phase profiler only keeps totals, so each phase's host-ns
        delta across this submit is laid out sequentially from the step
        span's start — durations are exact, intra-step interleaving is
        not (the phases run once per translation, three per packet).
        """
        spans = self.spans
        cursor = step_span.start_ns
        for phase, name in SPAN_PHASE_NAMES:
            delta = after.get(phase, 0) - before.get(phase, 0)
            if delta <= 0:
                continue
            spans.add(
                name,
                step_span.trace_id,
                step_span.span_id,
                cursor,
                cursor + delta,
                sid=sid,
                phase=phase,
            )
            cursor += delta

    # ------------------------------------------------------------------
    # SLO watch engine
    # ------------------------------------------------------------------
    def _maybe_evaluate_slo(self) -> None:
        if self.slo_watcher is None:
            return
        self._dispatched_since_slo += 1
        if self._dispatched_since_slo < SLO_EVAL_INTERVAL:
            return
        self._dispatched_since_slo = 0
        self.evaluate_slo()

    def evaluate_slo(self):
        """Evaluate the SLO rules against live engine state now.

        Runs automatically every :data:`SLO_EVAL_INTERVAL` dispatched
        packets; callable directly (tests, future admin endpoints).
        Returns the watcher's state transitions.
        """
        watcher = self.slo_watcher
        if watcher is None:
            return []
        sim = self.engine.sim
        stats = sim.packet_stats
        arrived = stats.arrived

        def drop_rate(cause: str) -> float:
            if not arrived:
                return 0.0
            dropped = (
                stats.dropped
                if cause == "any"
                else stats.drop_causes.get(cause, 0)
            )
            return dropped / arrived

        occupancy = 0
        model_ns = 0.0
        for engine in sim.engines:
            occupancy = max(occupancy, engine.device.ptb.occupancy(engine.clock))
            model_ns = max(model_ns, engine.clock)
        transitions = watcher.evaluate(
            SloSample(
                latency_percentile=sim.latency_stats.percentile,
                drop_rate=drop_rate,
                ptb_occupancy=occupancy,
                model_ns=model_ns,
            )
        )
        if self.slo_backpressure:
            # Breach latches service-wide backpressure; the dispatcher's
            # existing shed/pause machinery does the rest.
            self.admission.slo_latched = watcher.any_breached
        return transitions

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        conn = _Connection(writer, name=str(peer))
        self._connections.append(conn)
        try:
            while not conn.closed:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    message = protocol.decode(line)
                except protocol.ProtocolError as error:
                    conn.send(
                        protocol.error_reply(protocol.E_BAD_REQUEST, str(error))
                    )
                    continue
                await self._handle_message(conn, message)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            conn.closed = True
            if conn in self._connections:
                self._connections.remove(conn)
            try:
                writer.close()
            except RuntimeError:
                pass

    async def _handle_message(
        self, conn: _Connection, message: Dict[str, Any]
    ) -> None:
        kind = message["type"]
        if kind == protocol.HELLO:
            sid = message.get("sid")
            if sid is not None and not isinstance(sid, int):
                conn.send(
                    protocol.error_reply(
                        protocol.E_BAD_REQUEST, "'sid' must be an integer"
                    )
                )
                return
            if sid is not None and not self.engine.knows_sid(sid):
                conn.send(
                    protocol.error_reply(
                        protocol.E_UNKNOWN_SID,
                        f"sid {sid} is not a tenant of this service",
                    )
                )
                return
            conn.bound_sid = sid
            conn.send(
                {
                    "type": protocol.HELLO_OK,
                    "schema": protocol.PROTOCOL_SCHEMA,
                    "sid": sid,
                    "num_devices": self.engine.num_devices,
                    "features": list(protocol.PROTOCOL_FEATURES),
                }
            )
        elif kind == protocol.TRANSLATE:
            self._handle_translate(conn, message)
        elif kind == protocol.STATS:
            if message.get("format") == "prom":
                conn.send(self.prom_stats_reply())
            else:
                conn.send(self.stats_reply())
        elif kind == protocol.FLUSH:
            await self._handle_flush(conn)
        elif kind == protocol.PING:
            conn.send({"type": protocol.PONG})
        else:
            conn.send(
                protocol.error_reply(
                    protocol.E_BAD_REQUEST, f"unknown request type {kind!r}"
                )
            )
        try:
            await conn.writer.drain()
        except ConnectionError:
            conn.closed = True

    def _handle_translate(self, conn: _Connection, message: Dict[str, Any]) -> None:
        try:
            seq, sid, giovas, size, inv, trace_ctx = protocol.parse_translate(
                message, conn.bound_sid
            )
        except protocol.ProtocolError as error:
            conn.send(
                protocol.error_reply(
                    protocol.E_BAD_REQUEST, str(error), seq=message.get("seq")
                )
            )
            return
        self.requests_received += 1
        spans = self.spans
        wire_span = None
        if spans is not None:
            # Root of this request's server-side tree; parents under the
            # client's wire-propagated context when one was sent.
            wire_span = spans.start(
                SPAN_WIRE,
                trace_id=trace_ctx.trace_id if trace_ctx is not None else None,
                parent_id=trace_ctx.span_id if trace_ctx is not None else None,
                sid=sid,
                seq=seq,
            )
        if self._draining:
            conn.send(
                protocol.error_reply(
                    protocol.E_RESTARTING,
                    "server is draining for restart; reconnect and retry",
                    seq=seq,
                )
            )
            if wire_span is not None:
                spans.finish(wire_span, refused=protocol.E_RESTARTING)
            return
        if not self.engine.knows_sid(sid):
            conn.send(
                protocol.error_reply(
                    protocol.E_UNKNOWN_SID,
                    f"sid {sid} is not a tenant of this service",
                    seq=seq,
                )
            )
            if wire_span is not None:
                spans.finish(wire_span, refused=protocol.E_UNKNOWN_SID)
            return
        if spans is not None:
            admission_span = spans.start(SPAN_ADMISSION, parent=wire_span)
            denied = self.admission.acquire(sid, self._clock())
            spans.finish(admission_span, verdict=denied or "admitted")
        else:
            denied = self.admission.acquire(sid, self._clock())
        if denied is not None:
            conn.send(
                protocol.error_reply(
                    denied, f"admission denied for sid {sid}", seq=seq
                )
            )
            if wire_span is not None:
                spans.finish(wire_span, refused=denied)
            return
        packet = PacketRecord(
            sid=sid, giovas=giovas, size_bytes=size, invalidations=inv
        )
        if wire_span is not None:
            # wire.read covers parse + admission; the dispatcher's spans
            # parent under it by id, so finishing before enqueue is safe.
            spans.finish(wire_span, queued=True)
        self._queue.put_nowait((conn, seq, packet, wire_span))

    async def _handle_flush(self, conn: _Connection) -> None:
        """End-of-stream: drain the queue, then build the final result.

        ``flush`` is ordered after every already-queued request and is
        terminal for the modeled run (it applies the offline engine's
        end-of-run install drain); later translates get a
        ``translation_error``.  The reply carries the full
        :class:`SimulationResult` via the exact-round-trip serializer, so
        a client can compare it byte-for-byte with an offline run.
        """
        from repro.runner.serialize import result_to_dict

        await self._queue.join()
        result = self.engine.flush()
        conn.send(
            {
                "type": protocol.FLUSH_OK,
                "packets": self.engine.processed,
                "result": result_to_dict(result),
            }
        )

    # ------------------------------------------------------------------
    # Live metrics
    # ------------------------------------------------------------------
    def stats_reply(self) -> Dict[str, Any]:
        """The ``stats`` response: live per-SID metrics, copy-on-read."""
        engine = self.engine
        stats = engine.sim.packet_stats
        reply: Dict[str, Any] = {
            "type": protocol.STATS_REPLY,
            "schema": protocol.PROTOCOL_SCHEMA,
            "processed": engine.processed,
            "queue_depth": self._queue.qsize(),
            "requests_received": self.requests_received,
            "results_sent": self.results_sent,
            "packets": {
                "arrived": stats.arrived,
                "accepted": stats.accepted,
                "dropped": stats.dropped,
                "retried": stats.retried,
                "drop_causes": dict(stats.drop_causes),
            },
            "admission": self.admission.snapshot(),
        }
        metrics = engine.sim._metrics
        if metrics is not None:
            per_sid: Dict[str, Any] = {}
            histograms = metrics.histograms_by_label(
                "translation_latency_ns", "sid"
            )
            for sid in sorted(histograms):
                histogram = histograms[sid]
                per_sid[str(sid)] = {
                    **histogram.summary(),
                    "devtlb_hits": metrics.counter(
                        "devtlb.hit", structure="devtlb", sid=sid
                    ).value,
                    "devtlb_misses": metrics.counter(
                        "devtlb.miss", structure="devtlb", sid=sid
                    ).value,
                }
            reply["per_sid"] = per_sid
        if self.slo_watcher is not None:
            reply["slo"] = self.slo_watcher.snapshot()
        return reply

    def prom_text(self) -> str:
        """Prometheus exposition text: live registry + wire-level series.

        The registry snapshot renders through
        :func:`repro.obs.prom.registry_to_prom`; service counters that
        live outside the registry (wire traffic, queue depth) and the
        per-rule SLO breach flags ride along as extra lines, so one
        scrape covers the whole server.
        """
        metrics = self.engine.sim._metrics
        snapshot = metrics.snapshot() if metrics is not None else {}
        extra = [
            counter_line("service_requests", {}, self.requests_received),
            counter_line("service_results", {}, self.results_sent),
            counter_line("service_processed", {}, self.engine.processed),
            gauge_line(
                "service_queue_depth",
                {},
                self._queue.qsize() if self._queue is not None else 0,
            ),
        ]
        watcher = self.slo_watcher
        if watcher is not None:
            for rule in watcher.rules:
                extra.append(
                    gauge_line(
                        "slo_breached",
                        {"rule": rule.name, "kind": rule.kind},
                        int(watcher.breached[rule.name]),
                    )
                )
        return registry_to_prom(snapshot, extra_lines=extra)

    def prom_stats_reply(self) -> Dict[str, Any]:
        """The ``stats --format prom`` response (text payload)."""
        return {
            "type": protocol.STATS_REPLY,
            "schema": protocol.PROTOCOL_SCHEMA,
            "format": "prom",
            "text": self.prom_text(),
        }


def build_server(
    config,
    trace,
    admission: Optional[AdmissionConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    observability=None,
    fault_plan=None,
    checkpoint_path=None,
    resume_from=None,
    slo_rules=None,
    slo_backpressure: bool = False,
) -> ServiceServer:
    """Assemble a server around a fresh or warm-restarted engine.

    ``resume_from`` loads a service checkpoint written by a previous
    graceful shutdown: the restored engine continues at its exact model
    state, the restored admission controller keeps its cumulative stats
    but resets process-bound runtime (in-flight counts, backpressure
    latches, token-bucket refill clocks, which reference the dead
    process's monotonic epoch).

    ``observability`` feeds the engine's simulator as before; its
    ``spans`` recorder (if any) additionally attaches to the server for
    wire-to-engine request trees.  ``slo_rules`` (a list of
    :class:`~repro.obs.slo.SloRule`) arms the SLO watch engine, emitting
    ``slo.*`` events through the bundle's tracer; ``slo_backpressure``
    lets a breach drive admission backpressure.
    """
    spans = (
        getattr(observability, "spans", None)
        if observability is not None
        else None
    )
    watcher = None
    if slo_rules:
        tracer = observability.tracer if observability is not None else None
        watcher = SloWatcher(slo_rules, tracer=tracer)
    if resume_from is not None:
        engine, state = load_service_checkpoint(resume_from, expect_config=config)
        controller = state.get("admission")
        if isinstance(controller, AdmissionController):
            if admission is not None:
                controller.config = admission
            controller.reset_runtime()
        else:
            controller = AdmissionController(admission)
        return ServiceServer(
            engine,
            admission=controller,
            host=host,
            port=port,
            checkpoint_path=checkpoint_path,
            spans=spans,
            slo_watcher=watcher,
            slo_backpressure=slo_backpressure,
        )
    engine = ServiceEngine(
        config, trace, observability=observability, fault_plan=fault_plan
    )
    return ServiceServer(
        engine,
        admission=admission,
        host=host,
        port=port,
        checkpoint_path=checkpoint_path,
        spans=spans,
        slo_watcher=watcher,
        slo_backpressure=slo_backpressure,
    )
