"""Asyncio TCP front end of the translation service.

Architecture (one process, one event loop):

* one **connection handler** per client parses JSON lines, answers
  protocol-level requests (``hello``, ``stats``, ``ping``) inline, and
  runs the per-tenant admission gates on each ``translate`` before
  enqueueing it;
* one **dispatcher task** drains a single global FIFO queue and drives
  the :class:`~repro.service.engine.ServiceEngine` one packet at a time.
  A single queue gives the whole service a deterministic global
  submission order — for one replay connection, exactly trace order,
  which is what the service-vs-offline parity tests rely on.

The dispatcher is also where fabric-level backpressure runs, because PTB
occupancy is only meaningful at the engine's virtual submission time:
when a device's modeled PTB crosses the configured high watermark, the
request is either **shed** with a typed ``backpressure`` error (the wire
slot is still consumed — the paper's PTB-overflow drop at the service
layer) or the device's virtual clock is **paused** to the PTB drain
time before admission.

Requests queued by a client that disconnects mid-stream are discarded at
dispatch: their admission slots are released and the engine never sees
them, so a dying client leaks no engine state (pinned by
``tests/test_service_admission.py``).

**Connection supervision** (:class:`ConnectionPolicy`, see
docs/RESILIENCE.md): frames are read through the bounded
:class:`~repro.service.protocol.FrameReader` (max frame length, idle
timeout, per-frame completion deadline), each connection has an
in-flight cap, and a peer that stops reading long enough for its write
buffer to cross the cap is *evicted* — it gets a retryable typed
``slow_peer`` notice and its socket is aborted after a short grace, so
the dispatcher never blocks on one bad socket.

**Sessions** (the exactly-once layer wire chaos leans on): a ``hello``
carrying a ``session`` id attaches the connection to per-session
dispatch state — ``next_seq`` sequencing with a bounded hold buffer for
out-of-order arrivals, an outcome cache for answered seqs (evicted by
the client's ``ack`` watermark), and duplicate-waiter delivery.  A
sessioned request is therefore translated exactly once and exactly in
trace order no matter how often the client disconnects and resends,
which is what keeps the replayed ``SimulationResult`` byte-identical to
offline ``simulate`` under every :class:`~repro.faults.netchaos.
NetworkFaultPlan` fault class.  Session-*less* connections keep the
discard-on-dead-client behaviour above.  Session state (minus live
connection references) rides the warm-restart checkpoint.

Graceful shutdown (SIGTERM/SIGINT or :meth:`ServiceServer.shutdown`)
drains in order: stop accepting, refuse new translates with a typed
``restarting`` error, finish every queued request (results still reach
their clients), flush a PR 5-style checkpoint (engine kind
``"service"``), notify live connections with a ``restarting`` notice
carrying the checkpoint path, then close.  A new server started from
that checkpoint (``repro-sim serve --resume``) continues warm: caches,
PTB heaps, virtual clocks, and cumulative stats all survive.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.phases import PHASE_LOOKUP, PHASE_PTB, PHASE_WALK
from repro.obs.prom import counter_line, gauge_line, registry_to_prom
from repro.obs.slo import SloSample, SloWatcher
from repro.service import protocol
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.engine import ServiceEngine, load_service_checkpoint
from repro.trace.records import PacketRecord

#: Dispatched packets between SLO-rule evaluations (cheap, but there is
#: no reason to re-derive percentiles on every single packet).
SLO_EVAL_INTERVAL = 16

#: Span names of the server-side request tree, in parent order.
SPAN_WIRE = "wire.read"
SPAN_ADMISSION = "admission"
SPAN_DISPATCH = "dispatch"
SPAN_ENGINE = "engine.step"
#: Phase-profiler segments surfaced as synthesized engine.step children.
SPAN_PHASE_NAMES = (
    (PHASE_LOOKUP, "cache.lookup"),
    (PHASE_WALK, "walk"),
    (PHASE_PTB, "ptb"),
)


@dataclass(frozen=True)
class ConnectionPolicy:
    """Supervision knobs of one server's connections.

    Every bound is a refusal-with-a-typed-error, never a silent hang:
    see docs/RESILIENCE.md ("Network fault model & connection
    supervision") for the knob table and the CLI flags that set them.
    """

    #: Max bytes of one frame (line); larger peers get
    #: ``frame_too_large`` and are closed.
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    #: Reap a connection with no frame in progress and nothing in flight
    #: after this many wall seconds (``None`` disables).
    idle_timeout_s: Optional[float] = 600.0
    #: A frame that *started* must complete within this bound — the
    #: half-open / slowloris guard (``None`` disables).
    frame_deadline_s: Optional[float] = 30.0
    #: Max queued-but-undispatched requests per connection.
    max_inflight: int = 4096
    #: Evict a peer whose socket write buffer crosses this many bytes.
    max_write_buffer: int = 8 << 20
    #: Grace between an eviction notice and the hard transport abort.
    evict_grace_s: float = 0.25
    #: Max out-of-order seqs held per session before refusing with
    #: ``too_many_inflight``.
    session_window: int = 1024
    #: Sessions kept before the stalest is evicted.
    max_sessions: int = 1024


class _Session:
    """Per-session exactly-once, in-order dispatch state.

    ``next_seq`` is the first seq not yet admitted; arrivals above it
    wait in ``held`` (flushed in order as the head advances), arrivals
    below it are duplicates answered from ``cache`` (or registered in
    ``waiters`` while the original is still queued).  The client's
    ``ack`` watermark evicts the cache, so memory stays bounded by the
    client's window.  Only the exactly-once core (``next_seq``,
    ``acked``, ``cache``) survives pickling into a warm-restart
    checkpoint — live connection references die with the process.
    """

    __slots__ = ("session_id", "next_seq", "acked", "cache", "held", "waiters")

    def __init__(self, session_id: str):
        self.session_id = session_id
        self.next_seq = 0
        self.acked = 0
        self.cache: Dict[int, Dict[str, Any]] = {}
        self.held: Dict[int, Tuple] = {}
        self.waiters: Dict[int, "_Connection"] = {}

    def __getstate__(self):
        return {
            "session_id": self.session_id,
            "next_seq": self.next_seq,
            "acked": self.acked,
            "cache": dict(self.cache),
        }

    def __setstate__(self, state):
        self.session_id = state["session_id"]
        self.next_seq = state["next_seq"]
        self.acked = state["acked"]
        self.cache = dict(state["cache"])
        self.held = {}
        self.waiters = {}


class _Connection:
    """Per-connection state shared between its handler and the dispatcher."""

    __slots__ = ("writer", "bound_sid", "closed", "name", "session", "inflight")

    def __init__(self, writer: asyncio.StreamWriter, name: str):
        self.writer = writer
        self.bound_sid: Optional[int] = None
        self.closed = False
        self.name = name
        self.session: Optional[_Session] = None
        self.inflight = 0

    def send(self, message: Dict[str, Any]) -> None:
        """Best-effort single-line write (skipped once closed)."""
        if self.closed:
            return
        try:
            self.writer.write(protocol.encode(message))
        except (ConnectionError, RuntimeError):
            self.closed = True

    def buffer_size(self) -> int:
        """Bytes sitting unsent in the transport's write buffer."""
        try:
            return self.writer.transport.get_write_buffer_size()
        except (AttributeError, RuntimeError):
            return 0


class ServiceServer:
    """The translation-as-a-service front end.

    Parameters
    ----------
    engine:
        The :class:`~repro.service.engine.ServiceEngine` to drive —
        freshly built, or restored via
        :func:`~repro.service.engine.load_service_checkpoint` for a warm
        restart.
    admission:
        Admission configuration (or a restored
        :class:`~repro.service.admission.AdmissionController`).  The
        default config disables every gate — a pure transport.
    checkpoint_path:
        Where graceful shutdown flushes the warm-restart snapshot;
        ``None`` disables the snapshot (shutdown still drains cleanly).
    spans:
        Optional :class:`~repro.obs.spans.SpanRecorder`.  When attached,
        every translate grows a parented span tree (``wire.read`` ->
        ``admission`` / ``dispatch`` -> ``engine.step`` -> phase
        children), rooted under the client's wire-propagated
        :class:`~repro.obs.spans.SpanContext` when one was sent.
    slo_watcher:
        Optional :class:`~repro.obs.slo.SloWatcher`, evaluated against
        live engine state every :data:`SLO_EVAL_INTERVAL` dispatched
        packets.
    slo_backpressure:
        When true, any breached SLO rule latches service-wide admission
        backpressure (sheds/pauses like the PTB watermark gate) until
        every rule recovers.
    """

    def __init__(
        self,
        engine: ServiceEngine,
        admission: Optional[AdmissionConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        checkpoint_path=None,
        clock=time.monotonic,
        spans=None,
        slo_watcher: Optional[SloWatcher] = None,
        slo_backpressure: bool = False,
        batch_window: int = 64,
        policy: Optional[ConnectionPolicy] = None,
    ):
        self.engine = engine
        if isinstance(admission, AdmissionController):
            self.admission = admission
        else:
            self.admission = AdmissionController(admission)
        self.host = host
        self.port = port
        self.checkpoint_path = checkpoint_path
        self._clock = clock
        #: Null-object resolution, like the simulator's: a disabled
        #: recorder never reaches the dispatch path.
        self.spans = spans if (spans is not None and spans.enabled) else None
        self.slo_watcher = slo_watcher
        self.slo_backpressure = slo_backpressure
        self._dispatched_since_slo = 0
        #: Max queued requests translated per dispatcher pass; 1 restores
        #: strict per-packet dispatch (batching never reorders — packets
        #: drain in FIFO order either way).
        self.batch_window = max(1, batch_window)
        self._server: Optional[asyncio.base_events.Server] = None
        # Created in start(): on Python 3.9 asyncio primitives bind to the
        # event loop current at construction, which must be the running one.
        self._queue: Optional["asyncio.Queue"] = None
        self._dispatcher_task: Optional[asyncio.Task] = None
        self._connections: List[_Connection] = []
        self._draining = False
        self._shutdown_requested: Optional[asyncio.Event] = None
        self.stopped: Optional[asyncio.Event] = None
        #: Wall-clock service counters (wire-level, not modeled).
        self.requests_received = 0
        self.results_sent = 0
        #: Requests translated via the whole-batch fast path vs one at a
        #: time (observability for the dispatcher's batching behaviour).
        self.batched_requests = 0
        #: Connection supervision bounds (docs/RESILIENCE.md knob table).
        self.policy = policy if policy is not None else ConnectionPolicy()
        #: Wire-level connection churn/shed counters, exported through
        #: ``stats`` → prom → ``repro-sim top`` as the ``conn.*`` family.
        self.conn_counters: Dict[str, int] = {
            "opened": 0,
            "closed": 0,
            "reconnects": 0,
            "handshake_retries": 0,
            "idle_timeout": 0,
            "frame_timeout": 0,
            "frame_too_large": 0,
            "evicted_slow": 0,
            "too_many_inflight": 0,
            "held": 0,
            "resends_served": 0,
        }
        #: Session id → exactly-once dispatch state.
        self._sessions: Dict[str, _Session] = {}
        #: Deferred transport aborts of evicted slow peers.
        self._abort_handles: List[asyncio.TimerHandle] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start serving; resolves once the socket listens."""
        self._queue = asyncio.Queue()
        self._shutdown_requested = asyncio.Event()
        self.stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher_task = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    def request_shutdown(self) -> None:
        """Signal-safe shutdown trigger (wired to SIGTERM by the CLI)."""
        self._shutdown_requested.set()

    async def serve_until_shutdown(self) -> None:
        """Run until :meth:`request_shutdown`, then drain and stop."""
        await self._shutdown_requested.wait()
        await self.shutdown()

    async def shutdown(self) -> Optional[str]:
        """Graceful drain: see the module docstring for the exact order.

        Returns the checkpoint path when a snapshot was flushed.
        """
        if self._draining:
            await self.stopped.wait()
            return str(self.checkpoint_path) if self.checkpoint_path else None
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Finish everything already admitted; their results still reach
        # the clients over the open connections.
        await self._queue.join()
        if self._dispatcher_task is not None:
            self._queue.put_nowait(None)
            await self._dispatcher_task
        saved: Optional[str] = None
        if self.checkpoint_path is not None:
            self.engine.save_checkpoint(
                self.checkpoint_path,
                extra_state={
                    "admission": self.admission,
                    "sessions": self._sessions,
                },
            )
            saved = str(self.checkpoint_path)
        for handle in self._abort_handles:
            handle.cancel()
        self._abort_handles.clear()
        notice: Dict[str, Any] = {"type": protocol.RESTARTING}
        if saved is not None:
            notice["checkpoint"] = saved
        for conn in list(self._connections):
            conn.send(notice)
            conn.closed = True
            try:
                # Bounded: a stalled peer must not wedge the drain of
                # every other client's restart notice.
                await asyncio.wait_for(
                    conn.writer.drain(), timeout=self.policy.evict_grace_s
                )
            except asyncio.TimeoutError:
                conn.writer.transport.abort()
            except ConnectionError:
                pass
            conn.writer.close()
        self.stopped.set()
        return saved

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        engine = self.engine
        admission = self.admission
        queue = self._queue
        while True:
            item = await queue.get()
            if item is None:
                queue.task_done()
                return
            # One dispatcher pass: drain everything already queued (one
            # wire read's worth of requests, up to the batch window)
            # without yielding, then write replies and drain writers
            # once per touched connection.
            batch = [item]
            stop = False
            while len(batch) < self.batch_window:
                try:
                    extra = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    stop = True
                    break
                batch.append(extra)
            touched: Dict[int, _Connection] = {}
            if (
                len(batch) > 1
                and self.spans is None
                and admission.config.ptb_high_watermark is None
                and not admission.slo_latched
                and engine._flushed is None
                and all(
                    not it[0].closed and engine.knows_sid(it[2].sid)
                    for it in batch
                )
            ):
                # Whole-batch translate: no per-packet server-side branch
                # can fire (no spans, no backpressure gate, every client
                # alive, every SID known), so the engine runs the batch
                # in one call with identical per-packet outcomes.
                outcomes = engine.submit_batch([it[2] for it in batch])
                self.batched_requests += len(outcomes)
                for (conn, seq, packet, _), outcome in zip(batch, outcomes):
                    try:
                        admission.release(packet.sid)
                        reply = outcome.to_wire(seq)
                        if conn.session is not None:
                            self._record_session_reply(
                                conn.session, conn, seq, reply
                            )
                        else:
                            conn.send(reply)
                            self.results_sent += 1
                        touched[id(conn)] = conn
                    finally:
                        conn.inflight -= 1
                        self._maybe_evaluate_slo()
                        queue.task_done()
            else:
                for it in batch:
                    conn = self._dispatch_one(it)
                    if conn is not None:
                        touched[id(conn)] = conn
            # The dispatcher never awaits any one peer's drain — a peer
            # that stops reading is evicted once its write buffer
            # crosses the cap, instead of wedging every other client.
            for conn in touched.values():
                if (
                    not conn.closed
                    and conn.buffer_size() > self.policy.max_write_buffer
                ):
                    self._evict_slow_peer(conn)
            # Yield so connection handlers and writers get scheduled
            # between passes even under a full queue.
            await asyncio.sleep(0)
            if stop:
                queue.task_done()
                return

    def _dispatch_one(self, item) -> Optional[_Connection]:
        """Translate one queued request (the strict per-packet path).

        Returns the connection a reply was written to, or ``None`` when
        the request was discarded; the caller drains writers per pass.
        """
        engine = self.engine
        admission = self.admission
        queue = self._queue
        spans = self.spans
        conn, seq, packet, wire_span = item
        session = conn.session
        dispatch_span = None
        if spans is not None:
            dispatch_span = spans.start(
                SPAN_DISPATCH, parent=wire_span, sid=packet.sid, seq=seq
            )

        def reply_with(reply: Dict[str, Any], is_result: bool) -> None:
            """Deliver one final answer: session-cached or plain send."""
            if session is not None:
                self._record_session_reply(session, conn, seq, reply)
            else:
                conn.send(reply)
                if is_result:
                    self.results_sent += 1

        try:
            if conn.closed and session is None:
                # Client died with this request still queued: discard
                # it before the engine sees it — no engine-state leak.
                # A *sessioned* request is translated anyway: the client
                # is reconnecting and will resend this seq, and skipping
                # it here would break the session's in-order guarantee.
                admission.release(packet.sid)
                if dispatch_span is not None:
                    dispatch_span.attrs["outcome"] = "discarded"
                return None
            device_id = engine.device_for_sid(packet.sid)
            occupancy = engine.ptb_occupancy(device_id)
            if admission.check_backpressure(device_id, occupancy):
                if admission.config.backpressure_mode == "shed":
                    engine.shed_slot(packet)
                    admission.record_shed(packet.sid)
                    admission.release(packet.sid)
                    reply_with(
                        protocol.error_reply(
                            protocol.E_BACKPRESSURE,
                            f"PTB occupancy {occupancy} at high watermark; "
                            f"request shed",
                            seq=seq,
                        ),
                        is_result=False,
                    )
                    if dispatch_span is not None:
                        dispatch_span.attrs["outcome"] = "shed"
                    return conn
                engine.stall_until_drained(
                    device_id, admission.config.low_watermark()
                )
            step_span = None
            phase_before = None
            phases = engine.sim._phases
            if spans is not None:
                step_span = spans.start(
                    SPAN_ENGINE, parent=dispatch_span, sid=packet.sid
                )
                if phases is not None:
                    phase_before = phases.totals()
            try:
                outcome = engine.submit(packet)
            except Exception as error:
                admission.release(packet.sid)
                reply_with(
                    protocol.error_reply(
                        protocol.E_TRANSLATION, str(error), seq=seq
                    ),
                    is_result=False,
                )
                if step_span is not None:
                    spans.finish(step_span, error=str(error))
                    dispatch_span.attrs["outcome"] = "error"
                return conn
            if step_span is not None:
                spans.finish(step_span, accepted=outcome.accepted)
                if phase_before is not None:
                    self._add_phase_spans(
                        step_span, phase_before, phases.totals(), packet.sid
                    )
                dispatch_span.attrs["outcome"] = outcome.status
            admission.release(packet.sid)
            reply_with(outcome.to_wire(seq), is_result=True)
            return conn
        finally:
            conn.inflight -= 1
            if dispatch_span is not None:
                spans.finish(dispatch_span)
            self._maybe_evaluate_slo()
            queue.task_done()

    def _add_phase_spans(self, step_span, before, after, sid: int) -> None:
        """Synthesize phase children under one finished ``engine.step``.

        The phase profiler only keeps totals, so each phase's host-ns
        delta across this submit is laid out sequentially from the step
        span's start — durations are exact, intra-step interleaving is
        not (the phases run once per translation, three per packet).
        """
        spans = self.spans
        cursor = step_span.start_ns
        for phase, name in SPAN_PHASE_NAMES:
            delta = after.get(phase, 0) - before.get(phase, 0)
            if delta <= 0:
                continue
            spans.add(
                name,
                step_span.trace_id,
                step_span.span_id,
                cursor,
                cursor + delta,
                sid=sid,
                phase=phase,
            )
            cursor += delta

    # ------------------------------------------------------------------
    # Session exactly-once machinery
    # ------------------------------------------------------------------
    def _record_session_reply(
        self,
        session: _Session,
        conn: _Connection,
        seq: int,
        reply: Dict[str, Any],
    ) -> None:
        """Cache one final answer and deliver it to whoever still listens.

        The cache is what makes resends idempotent: a duplicate of an
        answered seq is served from here without the engine ever seeing
        it again.  ``waiters`` covers the race where the duplicate
        arrived (on a new connection) while the original was still
        queued — the reply reaches the new connection even though the
        original died.
        """
        session.cache[seq] = reply
        waiter = session.waiters.pop(seq, None)
        delivered = False
        if not conn.closed:
            conn.send(reply)
            delivered = True
        if waiter is not None and waiter is not conn and not waiter.closed:
            waiter.send(reply)
            delivered = True
        if delivered and reply.get("type") == protocol.RESULT:
            self.results_sent += 1

    def _admit_and_enqueue(
        self,
        conn: _Connection,
        seq: int,
        sid: int,
        packet: PacketRecord,
        wire_span,
        session: Optional[_Session],
        finish_wire: bool = True,
    ) -> None:
        """Run admission for one in-order request and queue or refuse it.

        For sessioned requests every final answer — including an
        admission denial — advances ``next_seq`` and lands in the
        outcome cache, so held successors can flush and a resend of the
        denied seq gets the identical denial.
        """
        spans = self.spans
        if spans is not None:
            admission_span = spans.start(SPAN_ADMISSION, parent=wire_span)
            denied = self.admission.acquire(sid, self._clock())
            spans.finish(admission_span, verdict=denied or "admitted")
        else:
            denied = self.admission.acquire(sid, self._clock())
        if denied is not None:
            reply = protocol.error_reply(
                denied, f"admission denied for sid {sid}", seq=seq
            )
            if session is not None:
                session.next_seq = max(session.next_seq, seq + 1)
                self._record_session_reply(session, conn, seq, reply)
            else:
                conn.send(reply)
            if finish_wire and wire_span is not None:
                spans.finish(wire_span, refused=denied)
            return
        if session is not None:
            session.next_seq = max(session.next_seq, seq + 1)
        if finish_wire and wire_span is not None:
            # wire.read covers parse + admission; the dispatcher's spans
            # parent under it by id, so finishing before enqueue is safe.
            spans.finish(wire_span, queued=True)
        conn.inflight += 1
        self._queue.put_nowait((conn, seq, packet, wire_span))

    def _flush_held(self, session: _Session) -> None:
        """Release held out-of-order seqs that became the in-order head."""
        while session.next_seq in session.held:
            held_conn, sid, packet, wire_span = session.held.pop(
                session.next_seq
            )
            self._admit_and_enqueue(
                held_conn,
                session.next_seq,
                sid,
                packet,
                wire_span,
                session,
                finish_wire=False,
            )

    def _evict_slow_peer(self, conn: _Connection) -> None:
        """Shed a peer that stopped reading: notice, close, deferred abort.

        The retryable ``slow_peer`` notice drains through the same
        graceful path as a restart notice; if the peer never reads it,
        the deferred transport abort reclaims the socket anyway.
        """
        size = conn.buffer_size()
        self.conn_counters["evicted_slow"] += 1
        conn.send(
            protocol.error_reply(
                protocol.E_SLOW_PEER,
                f"write buffer {size} bytes over cap "
                f"{self.policy.max_write_buffer}; evicting",
            )
        )
        conn.closed = True
        transport = conn.writer.transport
        try:
            conn.writer.close()
        except RuntimeError:
            pass
        handle = asyncio.get_running_loop().call_later(
            self.policy.evict_grace_s, transport.abort
        )
        self._abort_handles.append(handle)

    # ------------------------------------------------------------------
    # SLO watch engine
    # ------------------------------------------------------------------
    def _maybe_evaluate_slo(self) -> None:
        if self.slo_watcher is None:
            return
        self._dispatched_since_slo += 1
        if self._dispatched_since_slo < SLO_EVAL_INTERVAL:
            return
        self._dispatched_since_slo = 0
        self.evaluate_slo()

    def evaluate_slo(self):
        """Evaluate the SLO rules against live engine state now.

        Runs automatically every :data:`SLO_EVAL_INTERVAL` dispatched
        packets; callable directly (tests, future admin endpoints).
        Returns the watcher's state transitions.
        """
        watcher = self.slo_watcher
        if watcher is None:
            return []
        sim = self.engine.sim
        stats = sim.packet_stats
        arrived = stats.arrived

        def drop_rate(cause: str) -> float:
            if not arrived:
                return 0.0
            dropped = (
                stats.dropped
                if cause == "any"
                else stats.drop_causes.get(cause, 0)
            )
            return dropped / arrived

        occupancy = 0
        model_ns = 0.0
        for engine in sim.engines:
            occupancy = max(occupancy, engine.device.ptb.occupancy(engine.clock))
            model_ns = max(model_ns, engine.clock)
        transitions = watcher.evaluate(
            SloSample(
                latency_percentile=sim.latency_stats.percentile,
                drop_rate=drop_rate,
                ptb_occupancy=occupancy,
                model_ns=model_ns,
                conn_churn=float(self.conn_counters["opened"]),
            )
        )
        if self.slo_backpressure:
            # Breach latches service-wide backpressure; the dispatcher's
            # existing shed/pause machinery does the rest.
            self.admission.slo_latched = watcher.any_breached
        return transitions

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        conn = _Connection(writer, name=str(peer))
        self._connections.append(conn)
        self.conn_counters["opened"] += 1
        policy = self.policy
        frames = protocol.FrameReader(
            reader,
            max_frame_bytes=policy.max_frame_bytes,
            idle_timeout_s=policy.idle_timeout_s,
            frame_deadline_s=policy.frame_deadline_s,
            clock=self._clock,
        )
        try:
            while not conn.closed:
                try:
                    line = await frames.read_frame()
                except protocol.IdleTimeoutError as error:
                    if conn.inflight > 0:
                        # Quiet because it is *waiting* (its replies are
                        # still being dispatched), not abandoned.
                        continue
                    self.conn_counters["idle_timeout"] += 1
                    conn.send(protocol.error_reply(error.code, str(error)))
                    break
                except protocol.FrameTooLargeError as error:
                    self.conn_counters["frame_too_large"] += 1
                    conn.send(protocol.error_reply(error.code, str(error)))
                    break
                except protocol.FrameStreamError as error:
                    self.conn_counters["frame_timeout"] += 1
                    conn.send(protocol.error_reply(error.code, str(error)))
                    break
                if line is None:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    message = protocol.decode(line)
                except protocol.ProtocolError as error:
                    conn.send(
                        protocol.error_reply(protocol.E_BAD_REQUEST, str(error))
                    )
                    continue
                await self._handle_message(conn, message)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            conn.closed = True
            self.conn_counters["closed"] += 1
            if conn in self._connections:
                self._connections.remove(conn)
            try:
                await asyncio.wait_for(
                    writer.drain(), timeout=policy.evict_grace_s
                )
            except (ConnectionError, asyncio.TimeoutError, RuntimeError):
                pass
            try:
                writer.close()
            except RuntimeError:
                pass

    async def _handle_message(
        self, conn: _Connection, message: Dict[str, Any]
    ) -> None:
        kind = message["type"]
        if kind == protocol.HELLO:
            sid = message.get("sid")
            if sid is not None and not isinstance(sid, int):
                conn.send(
                    protocol.error_reply(
                        protocol.E_BAD_REQUEST, "'sid' must be an integer"
                    )
                )
                return
            if sid is not None and not self.engine.knows_sid(sid):
                conn.send(
                    protocol.error_reply(
                        protocol.E_UNKNOWN_SID,
                        f"sid {sid} is not a tenant of this service",
                    )
                )
                return
            attempts = message.get("attempts")
            if isinstance(attempts, int) and attempts > 1:
                # Client-reported connect retries: the wire-level
                # reconnect-pressure signal behind the churn SLO.
                self.conn_counters["handshake_retries"] += attempts - 1
            session_id = message.get("session")
            if session_id is not None:
                if not isinstance(session_id, str) or not session_id:
                    conn.send(
                        protocol.error_reply(
                            protocol.E_BAD_REQUEST,
                            "'session' must be a non-empty string",
                        )
                    )
                    return
                session = self._sessions.get(session_id)
                if session is None:
                    if len(self._sessions) >= self.policy.max_sessions:
                        self._sessions.pop(next(iter(self._sessions)))
                    session = _Session(session_id)
                    self._sessions[session_id] = session
                else:
                    self.conn_counters["reconnects"] += 1
                conn.session = session
            conn.bound_sid = sid
            hello_ok: Dict[str, Any] = {
                "type": protocol.HELLO_OK,
                "schema": protocol.PROTOCOL_SCHEMA,
                "sid": sid,
                "num_devices": self.engine.num_devices,
                "features": list(protocol.PROTOCOL_FEATURES),
            }
            if session_id is not None:
                hello_ok["session"] = session_id
            conn.send(hello_ok)
        elif kind == protocol.TRANSLATE:
            self._handle_translate(conn, message)
        elif kind == protocol.STATS:
            if message.get("format") == "prom":
                conn.send(self.prom_stats_reply())
            else:
                conn.send(self.stats_reply())
        elif kind == protocol.FLUSH:
            await self._handle_flush(conn)
        elif kind == protocol.PING:
            conn.send({"type": protocol.PONG})
        else:
            conn.send(
                protocol.error_reply(
                    protocol.E_BAD_REQUEST, f"unknown request type {kind!r}"
                )
            )
        try:
            await conn.writer.drain()
        except ConnectionError:
            conn.closed = True

    def _handle_translate(self, conn: _Connection, message: Dict[str, Any]) -> None:
        try:
            seq, sid, giovas, size, inv, trace_ctx = protocol.parse_translate(
                message, conn.bound_sid
            )
        except protocol.ProtocolError as error:
            conn.send(
                protocol.error_reply(
                    protocol.E_BAD_REQUEST, str(error), seq=message.get("seq")
                )
            )
            return
        self.requests_received += 1
        spans = self.spans
        wire_span = None
        if spans is not None:
            # Root of this request's server-side tree; parents under the
            # client's wire-propagated context when one was sent.
            wire_span = spans.start(
                SPAN_WIRE,
                trace_id=trace_ctx.trace_id if trace_ctx is not None else None,
                parent_id=trace_ctx.span_id if trace_ctx is not None else None,
                sid=sid,
                seq=seq,
            )
        if self._draining:
            conn.send(
                protocol.error_reply(
                    protocol.E_RESTARTING,
                    "server is draining for restart; reconnect and retry",
                    seq=seq,
                )
            )
            if wire_span is not None:
                spans.finish(wire_span, refused=protocol.E_RESTARTING)
            return
        if not self.engine.knows_sid(sid):
            conn.send(
                protocol.error_reply(
                    protocol.E_UNKNOWN_SID,
                    f"sid {sid} is not a tenant of this service",
                    seq=seq,
                )
            )
            if wire_span is not None:
                spans.finish(wire_span, refused=protocol.E_UNKNOWN_SID)
            return
        packet = PacketRecord(
            sid=sid, giovas=giovas, size_bytes=size, invalidations=inv
        )
        session = conn.session
        if session is not None:
            ack = message.get("ack")
            if isinstance(ack, int) and ack > session.acked:
                # The client's contiguous-answered watermark: everything
                # below it will never be resent, so the cache lets go.
                for answered in [s for s in session.cache if s < ack]:
                    del session.cache[answered]
                session.acked = ack
            if seq < session.next_seq:
                cached = session.cache.get(seq)
                if cached is not None:
                    self.conn_counters["resends_served"] += 1
                    conn.send(cached)
                    if cached.get("type") == protocol.RESULT:
                        self.results_sent += 1
                elif seq >= session.acked:
                    # Original still queued (its connection may be dead):
                    # deliver its reply here when it lands.
                    session.waiters[seq] = conn
                if wire_span is not None:
                    spans.finish(wire_span, resend=True)
                return
            if seq > session.next_seq:
                if (
                    seq - session.next_seq > self.policy.session_window
                    or len(session.held) >= self.policy.session_window
                ):
                    self.conn_counters["too_many_inflight"] += 1
                    conn.send(
                        protocol.error_reply(
                            protocol.E_TOO_MANY_INFLIGHT,
                            f"seq {seq} is {seq - session.next_seq} ahead of "
                            f"the session head; window is "
                            f"{self.policy.session_window}",
                            seq=seq,
                        )
                    )
                    if wire_span is not None:
                        spans.finish(wire_span, refused=protocol.E_TOO_MANY_INFLIGHT)
                    return
                # Out-of-order arrival (an earlier seq was lost on the
                # wire): hold it, never submit ahead of trace order.
                self.conn_counters["held"] += 1
                session.held[seq] = (conn, sid, packet, wire_span)
                if wire_span is not None:
                    spans.finish(wire_span, held=True)
                return
        if conn.inflight >= self.policy.max_inflight:
            self.conn_counters["too_many_inflight"] += 1
            conn.send(
                protocol.error_reply(
                    protocol.E_TOO_MANY_INFLIGHT,
                    f"{conn.inflight} requests in flight; cap is "
                    f"{self.policy.max_inflight}",
                    seq=seq,
                )
            )
            if wire_span is not None:
                spans.finish(wire_span, refused=protocol.E_TOO_MANY_INFLIGHT)
            return
        self._admit_and_enqueue(conn, seq, sid, packet, wire_span, session)
        if session is not None:
            self._flush_held(session)

    async def _handle_flush(self, conn: _Connection) -> None:
        """End-of-stream: drain the queue, then build the final result.

        ``flush`` is ordered after every already-queued request and is
        terminal for the modeled run (it applies the offline engine's
        end-of-run install drain); later translates get a
        ``translation_error``.  The reply carries the full
        :class:`SimulationResult` via the exact-round-trip serializer, so
        a client can compare it byte-for-byte with an offline run.
        """
        from repro.runner.serialize import result_to_dict

        await self._queue.join()
        result = self.engine.flush()
        conn.send(
            {
                "type": protocol.FLUSH_OK,
                "packets": self.engine.processed,
                "result": result_to_dict(result),
            }
        )

    # ------------------------------------------------------------------
    # Live metrics
    # ------------------------------------------------------------------
    def stats_reply(self) -> Dict[str, Any]:
        """The ``stats`` response: live per-SID metrics, copy-on-read."""
        engine = self.engine
        stats = engine.sim.packet_stats
        reply: Dict[str, Any] = {
            "type": protocol.STATS_REPLY,
            "schema": protocol.PROTOCOL_SCHEMA,
            "processed": engine.processed,
            "queue_depth": self._queue.qsize(),
            "requests_received": self.requests_received,
            "results_sent": self.results_sent,
            "packets": {
                "arrived": stats.arrived,
                "accepted": stats.accepted,
                "dropped": stats.dropped,
                "retried": stats.retried,
                "drop_causes": dict(stats.drop_causes),
            },
            "admission": self.admission.snapshot(),
            "conn": {
                "open": len(self._connections),
                "sessions": len(self._sessions),
                **self.conn_counters,
            },
        }
        metrics = engine.sim._metrics
        if metrics is not None:
            per_sid: Dict[str, Any] = {}
            histograms = metrics.histograms_by_label(
                "translation_latency_ns", "sid"
            )
            for sid in sorted(histograms):
                histogram = histograms[sid]
                per_sid[str(sid)] = {
                    **histogram.summary(),
                    "devtlb_hits": metrics.counter(
                        "devtlb.hit", structure="devtlb", sid=sid
                    ).value,
                    "devtlb_misses": metrics.counter(
                        "devtlb.miss", structure="devtlb", sid=sid
                    ).value,
                }
            reply["per_sid"] = per_sid
        if self.slo_watcher is not None:
            reply["slo"] = self.slo_watcher.snapshot()
        return reply

    def prom_text(self) -> str:
        """Prometheus exposition text: live registry + wire-level series.

        The registry snapshot renders through
        :func:`repro.obs.prom.registry_to_prom`; service counters that
        live outside the registry (wire traffic, queue depth) and the
        per-rule SLO breach flags ride along as extra lines, so one
        scrape covers the whole server.
        """
        metrics = self.engine.sim._metrics
        snapshot = metrics.snapshot() if metrics is not None else {}
        extra = [
            counter_line("service_requests", {}, self.requests_received),
            counter_line("service_results", {}, self.results_sent),
            counter_line("service_processed", {}, self.engine.processed),
            gauge_line(
                "service_queue_depth",
                {},
                self._queue.qsize() if self._queue is not None else 0,
            ),
            gauge_line("conn_open", {}, len(self._connections)),
            gauge_line("conn_sessions", {}, len(self._sessions)),
        ]
        for key, value in sorted(self.conn_counters.items()):
            extra.append(counter_line(f"conn_{key}", {}, value))
        watcher = self.slo_watcher
        if watcher is not None:
            for rule in watcher.rules:
                extra.append(
                    gauge_line(
                        "slo_breached",
                        {"rule": rule.name, "kind": rule.kind},
                        int(watcher.breached[rule.name]),
                    )
                )
        return registry_to_prom(snapshot, extra_lines=extra)

    def prom_stats_reply(self) -> Dict[str, Any]:
        """The ``stats --format prom`` response (text payload)."""
        return {
            "type": protocol.STATS_REPLY,
            "schema": protocol.PROTOCOL_SCHEMA,
            "format": "prom",
            "text": self.prom_text(),
        }


def build_server(
    config,
    trace,
    admission: Optional[AdmissionConfig] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    observability=None,
    fault_plan=None,
    checkpoint_path=None,
    resume_from=None,
    slo_rules=None,
    slo_backpressure: bool = False,
    policy: Optional[ConnectionPolicy] = None,
) -> ServiceServer:
    """Assemble a server around a fresh or warm-restarted engine.

    ``resume_from`` loads a service checkpoint written by a previous
    graceful shutdown: the restored engine continues at its exact model
    state, the restored admission controller keeps its cumulative stats
    but resets process-bound runtime (in-flight counts, backpressure
    latches, token-bucket refill clocks, which reference the dead
    process's monotonic epoch).

    ``observability`` feeds the engine's simulator as before; its
    ``spans`` recorder (if any) additionally attaches to the server for
    wire-to-engine request trees.  ``slo_rules`` (a list of
    :class:`~repro.obs.slo.SloRule`) arms the SLO watch engine, emitting
    ``slo.*`` events through the bundle's tracer; ``slo_backpressure``
    lets a breach drive admission backpressure.
    """
    spans = (
        getattr(observability, "spans", None)
        if observability is not None
        else None
    )
    watcher = None
    if slo_rules:
        tracer = observability.tracer if observability is not None else None
        watcher = SloWatcher(slo_rules, tracer=tracer)
    if resume_from is not None:
        engine, state = load_service_checkpoint(resume_from, expect_config=config)
        controller = state.get("admission")
        if isinstance(controller, AdmissionController):
            if admission is not None:
                controller.config = admission
            controller.reset_runtime()
        else:
            controller = AdmissionController(admission)
        server = ServiceServer(
            engine,
            admission=controller,
            host=host,
            port=port,
            checkpoint_path=checkpoint_path,
            spans=spans,
            slo_watcher=watcher,
            slo_backpressure=slo_backpressure,
            policy=policy,
        )
        sessions = state.get("sessions")
        if isinstance(sessions, dict):
            # Restored exactly-once state: clients resuming their
            # sessions after the warm restart get cached answers for
            # anything the old process already translated.
            server._sessions = sessions
        return server
    engine = ServiceEngine(
        config, trace, observability=observability, fault_plan=fault_plan
    )
    return ServiceServer(
        engine,
        admission=admission,
        host=host,
        port=port,
        checkpoint_path=checkpoint_path,
        spans=spans,
        slo_watcher=watcher,
        slo_backpressure=slo_backpressure,
        policy=policy,
    )
