"""Translation-as-a-service: the async streaming front end.

Layers (see docs/SERVICE.md):

* :mod:`repro.service.protocol` — the JSON-lines wire protocol;
* :mod:`repro.service.admission` — per-tenant token buckets,
  queue-depth caps, and PTB-watermark backpressure;
* :mod:`repro.service.engine` — the incremental, offline-identical
  driver around :class:`~repro.sim.simulator.HyperSimulator`;
* :mod:`repro.service.server` — the asyncio TCP server
  (``repro-sim serve``);
* :mod:`repro.service.client` — the async client library and trace
  load generator.
"""

from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.client import CircuitBreaker
from repro.service.engine import ServiceEngine, load_service_checkpoint
from repro.service.protocol import PROTOCOL_SCHEMA, PacketOutcome
from repro.service.server import ConnectionPolicy

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "CircuitBreaker",
    "ConnectionPolicy",
    "ServiceEngine",
    "load_service_checkpoint",
    "PROTOCOL_SCHEMA",
    "PacketOutcome",
]
