"""Span-based request tracing across the service's layer boundaries.

PR 2's tracer sees inside one simulation; since the service split a
request's life across four layers (client wire -> dispatcher -> admission
-> engine), end-to-end latency attribution needs *spans*: named,
parented intervals forming one tree per request.  The repro-service/1
protocol propagates the linking identity as an optional ``trace`` field
(:class:`SpanContext`), so a client-side span can parent the server-side
tree::

    wire.read -> {admission, dispatch -> engine.step -> {cache.lookup, walk, ptb}}

Design constraints, matching the rest of the obs layer:

* **deterministic ids** — span ids come from a counter, never from
  ``random``/``uuid``, so two runs of the same replay produce the same
  tree (tests pin this);
* **injectable clock** — wall timestamps default to
  ``time.perf_counter_ns`` but tests drive a fake counter;
* **null path** — :class:`NullSpanRecorder` has ``enabled = False``; the
  server resolves the recorder once and a disabled recorder never
  appears on the wire or in the dispatch path.

Export joins the existing Chrome/Perfetto path: see
:func:`repro.obs.export.spans_to_chrome_events`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class SpanContext:
    """The wire-propagated identity linking spans into one tree."""

    trace_id: str
    span_id: str

    def to_wire(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, raw: Dict[str, Any]) -> "SpanContext":
        return cls(trace_id=str(raw["trace_id"]), span_id=str(raw["span_id"]))


@dataclass
class Span:
    """One named interval in a request's tree.

    ``end_ns`` stays ``None`` while the span is open;
    :meth:`SpanRecorder.finish` closes and records it.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    sid: int = -1
    start_ns: int = 0
    end_ns: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def dur_ns(self) -> int:
        return (self.end_ns - self.start_ns) if self.end_ns is not None else 0

    @property
    def context(self) -> SpanContext:
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sid": self.sid,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
        }
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class SpanRecorder:
    """Collects finished spans with counter-based deterministic ids.

    ``max_spans`` bounds memory like the tracer's ``max_events``: excess
    finishes are counted in :attr:`dropped_spans` instead of growing the
    list without bound.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], int] = time.perf_counter_ns,
        max_spans: int = 1_000_000,
    ):
        if max_spans < 1:
            raise ValueError("max_spans must be positive")
        self._clock = clock
        self.max_spans = max_spans
        self._ids = itertools.count(1)
        self.spans: List[Span] = []
        self.dropped_spans = 0

    # ------------------------------------------------------------------
    def next_id(self) -> str:
        return f"s{next(self._ids):x}"

    def start(
        self,
        name: str,
        parent: Optional[Span] = None,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        sid: int = -1,
        **attrs: Any,
    ) -> Span:
        """Open a span.  ``parent`` links server-side; ``trace_id`` +
        ``parent_id`` link to a wire-propagated :class:`SpanContext`."""
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            if sid < 0:
                sid = parent.sid
        if trace_id is None:
            trace_id = f"t{self.next_id()[1:]}"
        return Span(
            name=name,
            trace_id=trace_id,
            span_id=self.next_id(),
            parent_id=parent_id,
            sid=sid,
            start_ns=self._clock(),
            attrs=dict(attrs),
        )

    def finish(self, span: Span, **attrs: Any) -> Span:
        """Close ``span`` at the current clock and record it."""
        span.end_ns = self._clock()
        if attrs:
            span.attrs.update(attrs)
        self._record(span)
        return span

    def add(
        self,
        name: str,
        trace_id: str,
        parent_id: Optional[str],
        start_ns: int,
        end_ns: int,
        sid: int = -1,
        **attrs: Any,
    ) -> Span:
        """Record a span with explicit timestamps (synthesized children,
        e.g. the per-phase breakdown measured by the phase profiler)."""
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=self.next_id(),
            parent_id=parent_id,
            sid=sid,
            start_ns=start_ns,
            end_ns=end_ns,
            attrs=dict(attrs),
        )
        self._record(span)
        return span

    def _record(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        self.spans.append(span)

    # ------------------------------------------------------------------
    def by_trace(self) -> Dict[str, List[Span]]:
        """Finished spans grouped by trace id, in record order."""
        trees: Dict[str, List[Span]] = {}
        for span in self.spans:
            trees.setdefault(span.trace_id, []).append(span)
        return trees

    def find(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]


class NullSpanRecorder:
    """Disabled recorder: the null object behind the spanless fast path."""

    enabled = False
    spans: List[Span] = []
    dropped_spans = 0

    def next_id(self) -> str:
        return "s0"

    def start(self, name: str, **kwargs: Any) -> Optional[Span]:
        return None

    def finish(self, span: Optional[Span], **attrs: Any) -> Optional[Span]:
        return None

    def add(self, *args: Any, **kwargs: Any) -> Optional[Span]:
        return None

    def by_trace(self) -> Dict[str, List[Span]]:
        return {}

    def find(self, name: str) -> List[Span]:
        return []
