"""End-to-end observability for the translation path.

Three layers (see docs/OBSERVABILITY.md):

* **event tracing** (:mod:`repro.obs.tracer`, :mod:`repro.obs.events`) —
  per-request lifecycle events with deterministic sampling, exportable as
  Perfetto-compatible Chrome trace JSON or JSONL;
* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges, log-bucketed
  latency histograms keyed by structure and SID, plus cross-tenant
  eviction attribution;
* **surfacing** (:mod:`repro.obs.export`) — file exporters consumed by the
  ``repro-sim`` CLI and the parallel runner.

The simulator accepts an :class:`Observability` bundle::

    obs = Observability.recording(sample_rate=1.0, seed=0)
    result = HyperSimulator(config, trace, observability=obs).run()
    write_trace(obs.tracer.events, "run.trace.json")     # Perfetto
    write_metrics("run.metrics.json", obs, result)

Cost when disabled is near zero: ``Observability.disabled()`` (or simply
``observability=None``) leaves the hot path free of tracer and metrics
calls — the simulator checks :attr:`Observability.enabled` once at attach
time, and ``benchmarks/bench_obs_overhead.py`` guards the budget.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import events
from repro.obs.export import (
    METRICS_SCHEMA,
    metrics_document,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import (
    Counter,
    EvictionAttribution,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    latency_bucket,
    bucket_bounds,
    bucket_midpoint,
    percentile_from_buckets,
)
from repro.obs.tracer import NullTracer, RecordingTracer, TraceEvent, Tracer

__all__ = [
    "Observability",
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "TraceEvent",
    "MetricsRegistry",
    "LatencyHistogram",
    "Counter",
    "Gauge",
    "EvictionAttribution",
    "latency_bucket",
    "bucket_bounds",
    "bucket_midpoint",
    "percentile_from_buckets",
    "events",
    "metrics_document",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics",
    "write_trace",
    "METRICS_SCHEMA",
]


class Observability:
    """Bundle of the three instruments a simulator can carry.

    ``tracer`` is never ``None`` (a :class:`NullTracer` stands in);
    ``metrics`` and ``evictions`` are ``None`` when their layer is off.
    :attr:`enabled` is the single flag the simulator checks at attach
    time — when it is ``False`` the hot path is identical to running with
    no observability at all.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        evictions: Optional[EvictionAttribution] = None,
    ):
        self.tracer: Tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics
        self.evictions = evictions

    @property
    def enabled(self) -> bool:
        return (
            self.tracer.enabled
            or self.metrics is not None
            or self.evictions is not None
        )

    # ------------------------------------------------------------------
    @classmethod
    def recording(
        cls,
        sample_rate: float = 1.0,
        seed: int = 0,
        max_events: int = 2_000_000,
    ) -> "Observability":
        """All three layers on: recording tracer, registry, attribution."""
        return cls(
            tracer=RecordingTracer(
                sample_rate=sample_rate, seed=seed, max_events=max_events
            ),
            metrics=MetricsRegistry(),
            evictions=EvictionAttribution(),
        )

    @classmethod
    def metrics_only(cls) -> "Observability":
        """Metrics and eviction attribution without event tracing."""
        return cls(metrics=MetricsRegistry(), evictions=EvictionAttribution())

    @classmethod
    def disabled(cls) -> "Observability":
        """The null bundle — attaching it must cost (near) nothing."""
        return cls()
