"""End-to-end observability for the translation path.

The unified telemetry pipeline (see docs/OBSERVABILITY.md):

* **event tracing** (:mod:`repro.obs.tracer`, :mod:`repro.obs.events`) —
  per-request lifecycle events with deterministic sampling, exportable as
  Perfetto-compatible Chrome trace JSON or JSONL;
* **request spans** (:mod:`repro.obs.spans`) — parented wire-to-engine
  intervals linking client, dispatcher, admission, and engine through
  the service protocol's ``trace`` field;
* **phase profiling** (:mod:`repro.obs.phases`) — host-time cost
  attribution of the hot path's lookup / walk / PTB segments;
* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges, log-bucketed
  latency histograms keyed by structure and SID, plus cross-tenant
  eviction attribution; rendered live as Prometheus text by
  :mod:`repro.obs.prom` and aggregated over runner fleets by
  :mod:`repro.obs.fleet`;
* **SLO watching** (:mod:`repro.obs.slo`) — declarative rules over the
  live registry, emitting ``slo.*`` events and optionally driving
  service admission backpressure;
* **surfacing** (:mod:`repro.obs.export`) — file exporters consumed by the
  ``repro-sim`` CLI and the parallel runner.

The simulator accepts an :class:`Observability` bundle::

    obs = Observability.recording(sample_rate=1.0, seed=0)
    result = HyperSimulator(config, trace, observability=obs).run()
    write_trace(obs.tracer.events, "run.trace.json")     # Perfetto
    write_metrics("run.metrics.json", obs, result)

Cost when disabled is near zero: ``Observability.disabled()`` (or simply
``observability=None``) leaves the hot path free of tracer, span, phase,
and metrics calls — the simulator checks :attr:`Observability.enabled`
once at attach time, and ``benchmarks/bench_obs_overhead.py`` guards the
budget.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import events
from repro.obs.export import (
    METRICS_SCHEMA,
    metrics_document,
    spans_to_chrome_events,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
    write_spans,
    write_trace,
)
from repro.obs.metrics import (
    Counter,
    EvictionAttribution,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    latency_bucket,
    bucket_bounds,
    bucket_midpoint,
    percentile_from_buckets,
)
from repro.obs.phases import NullPhaseProfiler, PhaseProfiler
from repro.obs.spans import NullSpanRecorder, Span, SpanContext, SpanRecorder
from repro.obs.tracer import NullTracer, RecordingTracer, TraceEvent, Tracer

__all__ = [
    "Observability",
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "TraceEvent",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "NullSpanRecorder",
    "PhaseProfiler",
    "NullPhaseProfiler",
    "MetricsRegistry",
    "LatencyHistogram",
    "Counter",
    "Gauge",
    "EvictionAttribution",
    "latency_bucket",
    "bucket_bounds",
    "bucket_midpoint",
    "percentile_from_buckets",
    "events",
    "metrics_document",
    "spans_to_chrome_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics",
    "write_spans",
    "write_trace",
    "METRICS_SCHEMA",
]


class Observability:
    """Bundle of the instruments a simulator or service can carry.

    ``tracer`` is never ``None`` (a :class:`NullTracer` stands in);
    ``metrics``, ``evictions``, ``spans``, and ``phases`` are ``None``
    when their layer is off (a :class:`NullSpanRecorder` /
    :class:`NullPhaseProfiler` counts as off — their ``enabled`` flags
    are ``False``).  :attr:`enabled` is the single flag the simulator
    checks at attach time — when it is ``False`` the hot path is
    identical to running with no observability at all.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        evictions: Optional[EvictionAttribution] = None,
        spans: Optional[SpanRecorder] = None,
        phases: Optional[PhaseProfiler] = None,
    ):
        self.tracer: Tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics
        self.evictions = evictions
        self.spans = spans if (spans is not None and spans.enabled) else None
        self.phases = phases if (phases is not None and phases.enabled) else None

    @property
    def enabled(self) -> bool:
        return (
            self.tracer.enabled
            or self.metrics is not None
            or self.evictions is not None
            or self.spans is not None
            or self.phases is not None
        )

    # ------------------------------------------------------------------
    @classmethod
    def recording(
        cls,
        sample_rate: float = 1.0,
        seed: int = 0,
        max_events: int = 2_000_000,
    ) -> "Observability":
        """Event tracing, registry, and attribution (spans/phases off)."""
        return cls(
            tracer=RecordingTracer(
                sample_rate=sample_rate, seed=seed, max_events=max_events
            ),
            metrics=MetricsRegistry(),
            evictions=EvictionAttribution(),
        )

    @classmethod
    def metrics_only(cls) -> "Observability":
        """Metrics and eviction attribution without event tracing."""
        return cls(metrics=MetricsRegistry(), evictions=EvictionAttribution())

    @classmethod
    def profiling(
        cls,
        spans: bool = True,
        phases: bool = True,
        metrics: bool = True,
    ) -> "Observability":
        """The service-telemetry bundle: spans + phase profiling + metrics.

        This is what ``repro-sim serve --span-out`` attaches: request
        spans for the wire-to-engine tree, phase counters for the
        per-stage breakdown, and the registry behind ``stats``/prom
        export.  Event tracing stays off (spans subsume it here).
        """
        return cls(
            metrics=MetricsRegistry() if metrics else None,
            spans=SpanRecorder() if spans else None,
            phases=PhaseProfiler() if phases else None,
        )

    @classmethod
    def disabled(cls) -> "Observability":
        """The null bundle — attaching it must cost (near) nothing."""
        return cls()
