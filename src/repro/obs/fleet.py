"""Runner-fleet aggregation: fold a run directory into a metrics registry.

The supervised runner (docs/RUNNER.md) leaves two machine-readable
records behind: per-worker heartbeat files
(``<run-dir>/heartbeats/<spec_hash>.json``, rewritten every interval
with pid / progress / status / RSS) and the append-only
``results.jsonl`` of finished :class:`~repro.runner.spec.JobResult`
records (status, exit cause, duration).  :func:`fleet_registry` folds
both into the same :class:`~repro.obs.metrics.MetricsRegistry` shape the
live service exports, so one renderer
(:func:`repro.obs.prom.registry_to_prom`) and one terminal view
(``repro-sim top --run-dir``) serve both the service and the fleet.

Exported series:

* ``runner_heartbeat_age_s{spec, status}`` — seconds since each worker's
  last heartbeat write (the watchdog's staleness signal);
* ``runner_packets_done{spec}`` / ``runner_rss_kb{spec}`` — per-worker
  progress and memory from the heartbeat;
* ``runner_workers{status}`` — live worker count per heartbeat status;
* ``runner_jobs{status}`` / ``runner_jobs_exit{cause}`` — finished-job
  counts by status and by watchdog/deadline/interrupt exit cause;
* ``runner_job_duration_ns`` — histogram of job wall times;
* ``runner_quarantined_lines`` — lines parked in ``quarantine.jsonl``
  (corrupt records recovered from the results file).

:func:`queue_registry` does the same for a distributed experiment queue
database (``repro-sim top --queue``):

* ``queue_jobs{status}`` — job rows by pending/claimed/done/failed/
  quarantined;
* ``queue_worker_claims{worker}`` / ``queue_worker_takeovers{worker}``
  / ``queue_worker_renewals{worker}`` / ``queue_worker_done{worker}``
  / ``queue_worker_failed{worker}`` — per-host claim/lease/takeover
  counters;
* ``queue_lease_remaining_s{spec, worker}`` — per-claim lease runway
  (negative means expired and eligible for takeover).

Everything is read best-effort: a corrupt heartbeat or result line is
skipped (the store has its own quarantine machinery), never fatal.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Union

from repro.obs.metrics import MetricsRegistry

#: Mirrors :data:`repro.runner.supervise.HEARTBEAT_DIR` without importing
#: the runner package (keeps obs dependency-free).
HEARTBEAT_DIR = "heartbeats"
RESULTS_FILE = "results.jsonl"
QUARANTINE_FILE = "quarantine.jsonl"


def _iter_json_lines(path: Path):
    try:
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record
    except OSError:
        return


def fleet_registry(
    run_dir: Union[str, Path],
    registry: MetricsRegistry = None,
    now: Callable[[], float] = time.time,
) -> MetricsRegistry:
    """Fold ``run_dir``'s heartbeat and result records into a registry.

    Pass an existing ``registry`` to merge a fleet view into a registry
    that already carries other series; by default a fresh one is built.
    ``now`` is injectable so heartbeat-age gauges are testable.
    """
    run_dir = Path(run_dir)
    if registry is None:
        registry = MetricsRegistry()
    current = now()

    heartbeat_dir = run_dir / HEARTBEAT_DIR
    workers_by_status = {}
    if heartbeat_dir.is_dir():
        for path in sorted(heartbeat_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if not isinstance(record, dict):
                continue
            spec = str(record.get("spec_hash", path.stem))
            status = str(record.get("status", "unknown"))
            workers_by_status[status] = workers_by_status.get(status, 0) + 1
            updated = record.get("updated_at")
            if isinstance(updated, (int, float)):
                registry.gauge(
                    "runner_heartbeat_age_s", spec=spec, status=status
                ).set(max(0.0, current - updated))
            packets = record.get("packets_done")
            if isinstance(packets, (int, float)):
                registry.gauge("runner_packets_done", spec=spec).set(packets)
            rss = record.get("rss_kb")
            if isinstance(rss, (int, float)):
                registry.gauge("runner_rss_kb", spec=spec).set(rss)
    for status, count in sorted(workers_by_status.items()):
        registry.gauge("runner_workers", status=status).set(count)

    durations = registry.histogram("runner_job_duration_ns")
    for record in _iter_json_lines(run_dir / RESULTS_FILE):
        status = str(record.get("status", "unknown"))
        registry.counter("runner_jobs", status=status).inc()
        cause = record.get("exit_cause")
        if cause:
            registry.counter("runner_jobs_exit", cause=str(cause)).inc()
        duration = record.get("duration_s")
        if isinstance(duration, (int, float)) and duration >= 0:
            durations.record(duration * 1e9)

    quarantine = run_dir / QUARANTINE_FILE
    quarantined = 0
    try:
        with quarantine.open("rb") as handle:
            quarantined = sum(1 for line in handle if line.strip())
    except OSError:
        pass
    registry.gauge("runner_quarantined_lines").set(quarantined)
    return registry


def queue_registry(
    queue_path: Union[str, Path],
    registry: MetricsRegistry = None,
    now: Callable[[], float] = time.time,
) -> MetricsRegistry:
    """Fold an experiment-queue database into a metrics registry.

    Imports the queue lazily (obs stays dependency-free for the common
    fleet path) and raises the queue's own errors — a corrupt database
    should fail loudly here too, with the rebuild hint intact.
    """
    from repro.runner.queue import ExperimentQueue

    if registry is None:
        registry = MetricsRegistry()
    current = now()
    with ExperimentQueue(queue_path) as queue:
        for status, count in sorted(queue.counts().items()):
            registry.gauge("queue_jobs", status=status).set(count)
        for row in queue.worker_rows():
            worker = str(row["worker"])
            for key in ("claims", "takeovers", "renewals", "done", "failed"):
                registry.gauge(f"queue_worker_{key}", worker=worker).set(
                    row[key] or 0
                )
        for job in queue.jobs(status="claimed"):
            expires = job.get("lease_expires_at")
            if isinstance(expires, (int, float)):
                registry.gauge(
                    "queue_lease_remaining_s",
                    spec=str(job["spec_hash"]),
                    worker=str(job.get("claimed_by")),
                ).set(round(expires - current, 3))
    return registry
