"""Event taxonomy for the observability layer.

Every structured event emitted along the translation path has a *kind*
drawn from the constants below.  Kind strings are ``structure.action``:
the structure prefix selects the Perfetto track the event lands on (one
track per structure, with one row per SID inside it — see
:mod:`repro.obs.export`), and the action names the lifecycle step.

The taxonomy mirrors the paper's Figure 3 walk through the hardware:

* **packet** — link-level admission: a packet is admitted into the device,
  dropped because the Pending Translation Buffer is full, or retried at a
  later arrival slot.
* **request** — one gIOVA translation from issue to completion (emitted as
  a span carrying the full translation latency).
* **devtlb / prefetch_buffer / iotlb** — per-lookup hit/miss outcomes of
  the final-translation caches.
* **ptb** — Pending Translation Buffer entry lifecycle (enqueue carries
  the queueing delay behind a full buffer; release marks completion).
* **walker** — bounded IOMMU walker-pool usage: acquire (with queue
  delay), the walk itself (a span carrying DRAM access and nested-TLB
  outcome counts), and release.
* **prefetch** — the Translation Prefetching Scheme: a SID prediction, the
  prefetches issued for it, their installs back at the device, and demand
  translations supplied by a prefetched entry.
* **fault** — fault-injection lifecycle (only with an active
  :class:`~repro.faults.plan.FaultPlan`): an injected translation fault, a
  packet dropped after exhausting degraded-mode retries, a device reset,
  and an invalidation storm (see ``docs/RESILIENCE.md``).
"""

from __future__ import annotations

# Packet admission -----------------------------------------------------
PACKET_ADMIT = "packet.admit"
PACKET_DROP = "packet.drop"

# Request lifecycle ----------------------------------------------------
REQUEST_TRANSLATE = "request.translate"

# Device-side lookup structures ---------------------------------------
DEVTLB_HIT = "devtlb.hit"
DEVTLB_MISS = "devtlb.miss"
PB_HIT = "prefetch_buffer.hit"

# Pending Translation Buffer ------------------------------------------
PTB_ENQUEUE = "ptb.enqueue"
PTB_RELEASE = "ptb.release"

# Chipset structures ---------------------------------------------------
IOTLB_HIT = "iotlb.hit"
IOTLB_MISS = "iotlb.miss"

# Bounded IOMMU walker pool -------------------------------------------
WALKER_ACQUIRE = "walker.acquire"
WALKER_WALK = "walker.walk"
WALKER_RELEASE = "walker.release"

# Translation Prefetching Scheme --------------------------------------
PREFETCH_PREDICT = "prefetch.predict"
PREFETCH_ISSUE = "prefetch.issue"
PREFETCH_INSTALL = "prefetch.install"
PREFETCH_SUPPLY = "prefetch.supply"

# Fault injection (emitted only when a fault plan is active) -----------
FAULT_TRANSLATION = "fault.translation"
FAULT_DROP = "fault.drop"
FAULT_DEVICE_RESET = "fault.device_reset"
FAULT_STORM = "fault.invalidation_storm"

# Checkpoint / restore (emitted only when checkpointing is enabled) ----
CHECKPOINT_SAVE = "checkpoint.save"
CHECKPOINT_RESUME = "checkpoint.resume"

# Runner supervision (emitted through the runner's progress stream) ----
WATCHDOG_STALE = "watchdog.stale"
WATCHDOG_DEADLINE = "watchdog.deadline"
WATCHDOG_MEMORY = "watchdog.memory"
WATCHDOG_KILL = "watchdog.kill"

# SLO watch engine (emitted only with active SLO rules; see
# repro.obs.slo) -------------------------------------------------------
SLO_BREACH = "slo.breach"
SLO_RECOVER = "slo.recover"

#: Every kind the simulator may emit (exporters and tests validate
#: against this set).
ALL_EVENT_KINDS = frozenset(
    {
        PACKET_ADMIT,
        PACKET_DROP,
        REQUEST_TRANSLATE,
        DEVTLB_HIT,
        DEVTLB_MISS,
        PB_HIT,
        PTB_ENQUEUE,
        PTB_RELEASE,
        IOTLB_HIT,
        IOTLB_MISS,
        WALKER_ACQUIRE,
        WALKER_WALK,
        WALKER_RELEASE,
        PREFETCH_PREDICT,
        PREFETCH_ISSUE,
        PREFETCH_INSTALL,
        PREFETCH_SUPPLY,
        FAULT_TRANSLATION,
        FAULT_DROP,
        FAULT_DEVICE_RESET,
        FAULT_STORM,
        CHECKPOINT_SAVE,
        CHECKPOINT_RESUME,
        WATCHDOG_STALE,
        WATCHDOG_DEADLINE,
        WATCHDOG_MEMORY,
        WATCHDOG_KILL,
        SLO_BREACH,
        SLO_RECOVER,
    }
)


def structure_of(kind: str) -> str:
    """The structure prefix of an event kind (``"devtlb.hit"`` -> ``"devtlb"``)."""
    return kind.split(".", 1)[0]
