"""Tracer protocol: per-request lifecycle event collection.

The simulator talks to a *tracer* through two methods only:

* :meth:`sample_packet` — called once per accepted packet; the returned
  decision gates every event of that packet (whole request lifecycles are
  either traced or skipped, never torn).
* :meth:`emit` — record one :class:`TraceEvent`.

:class:`NullTracer` is the disabled fast path: its ``enabled`` flag is
``False``, and the simulator checks that flag **once at attach time** —
with tracing off, the per-request hot path contains no tracer calls at
all (guarded by ``benchmarks/bench_obs_overhead.py``).

:class:`RecordingTracer` keeps events in memory for export via
:mod:`repro.obs.export`.  Sampling is seeded and therefore deterministic:
two tracers constructed with the same ``(sample_rate, seed)`` make the
same per-packet decisions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class TraceEvent:
    """One structured event on the translation path.

    ``dur_ns > 0`` marks a span (rendered as a Perfetto complete event);
    ``dur_ns == 0`` an instant.  ``args`` carries kind-specific detail
    (page numbers, queue delays, walk access counts, ...).
    """

    kind: str
    ts_ns: float
    sid: int = -1
    dur_ns: float = 0.0
    args: Optional[Dict[str, Any]] = None


class Tracer:
    """Interface both tracer implementations satisfy (duck-typed)."""

    #: Checked once when a simulator attaches observability; ``False``
    #: removes the tracer from the hot path entirely.
    enabled: bool = True

    def sample_packet(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def emit(
        self,
        kind: str,
        ts_ns: float,
        sid: int = -1,
        dur_ns: float = 0.0,
        **args: Any,
    ) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class NullTracer(Tracer):
    """No-op tracer: the null-object behind the disabled fast path."""

    enabled = False

    def sample_packet(self) -> bool:
        return False

    def emit(
        self,
        kind: str,
        ts_ns: float,
        sid: int = -1,
        dur_ns: float = 0.0,
        **args: Any,
    ) -> None:
        return None


class RecordingTracer(Tracer):
    """In-memory tracer with deterministic packet sampling.

    Parameters
    ----------
    sample_rate:
        Fraction of packets whose events are recorded (1.0 = every
        packet).  The decision is made per packet so request lifecycles
        stay intact.
    seed:
        Seed of the private sampling RNG — fixed seed, fixed decisions.
    max_events:
        Hard cap on retained events; excess emissions are counted in
        :attr:`dropped_events` instead of growing without bound.
    """

    enabled = True

    def __init__(
        self,
        sample_rate: float = 1.0,
        seed: int = 0,
        max_events: int = 2_000_000,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in 0..1, got {sample_rate}")
        if max_events < 1:
            raise ValueError("max_events must be positive")
        self.sample_rate = sample_rate
        self.max_events = max_events
        self._rng = random.Random(seed)
        self.events: List[TraceEvent] = []
        self.dropped_events = 0
        self.packets_sampled = 0
        self.packets_skipped = 0

    def sample_packet(self) -> bool:
        if self.sample_rate >= 1.0:
            sampled = True
        elif self.sample_rate <= 0.0:
            sampled = False
        else:
            sampled = self._rng.random() < self.sample_rate
        if sampled:
            self.packets_sampled += 1
        else:
            self.packets_skipped += 1
        return sampled

    def emit(
        self,
        kind: str,
        ts_ns: float,
        sid: int = -1,
        dur_ns: float = 0.0,
        **args: Any,
    ) -> None:
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(
            TraceEvent(
                kind=kind,
                ts_ns=ts_ns,
                sid=sid,
                dur_ns=dur_ns,
                args=args or None,
            )
        )
