"""Prometheus text-format rendering of a metrics-registry snapshot.

The service's ``stats --format prom`` endpoint and the runner-fleet
aggregator both flatten their state into the registry snapshot shape
(:meth:`repro.obs.metrics.MetricsRegistry.snapshot`) and render it here.
The renderer is dependency-free and write-only: no client library, no
HTTP server — just the exposition text format, which both Prometheus
scrapers and humans (``repro-sim top --format prom``) read directly.

Naming: metric names are prefixed ``repro_`` and sanitised (dots and
dashes to underscores); counters get the conventional ``_total`` suffix;
histograms are rendered as summaries — ``quantile``-labelled gauges plus
``_count`` and ``_sum`` series — because the registry's log-bucketed
histograms already reduce to percentile summaries everywhere else.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Mapping

#: Prefix of every exported metric name.
PROM_PREFIX = "repro_"

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_]")
_LABEL_ESCAPE = str.maketrans({"\\": r"\\", '"': r"\"", "\n": r"\n"})

#: Quantiles rendered for every histogram summary.
SUMMARY_QUANTILES = (("0.5", "p50_ns"), ("0.95", "p95_ns"), ("0.99", "p99_ns"))


def metric_name(name: str, suffix: str = "") -> str:
    """Sanitise a registry metric name into a Prometheus one."""
    return PROM_PREFIX + _NAME_BAD.sub("_", name) + suffix


def format_labels(labels: Mapping[str, Any]) -> str:
    """Render a label set (``{}`` empty -> empty string), sorted by key."""
    if not labels:
        return ""
    inner = ",".join(
        f'{_NAME_BAD.sub("_", str(key))}="{str(value).translate(_LABEL_ESCAPE)}"'
        for key, value in sorted(labels.items(), key=lambda item: str(item[0]))
    )
    return "{" + inner + "}"


def _sample(name: str, labels: Mapping[str, Any], value: Any) -> str:
    return f"{name}{format_labels(labels)} {value}"


def registry_to_prom(
    snapshot: Dict[str, Any], extra_lines: Iterable[str] = ()
) -> str:
    """Render a registry snapshot document as Prometheus text.

    ``snapshot`` is the output of :meth:`MetricsRegistry.snapshot`;
    ``extra_lines`` are pre-rendered exposition lines appended verbatim
    (the service uses this for wire-level counters that live outside the
    registry).  Output ends with a trailing newline, per the format.
    """
    lines: List[str] = []
    typed: Dict[str, str] = {}

    def declare(name: str, kind: str) -> None:
        if typed.get(name) is None:
            typed[name] = kind
            lines.append(f"# TYPE {name} {kind}")

    for row in snapshot.get("counters", []):
        name = metric_name(row["name"], "_total")
        declare(name, "counter")
        lines.append(_sample(name, row.get("labels", {}), row["value"]))
    for row in snapshot.get("gauges", []):
        name = metric_name(row["name"])
        declare(name, "gauge")
        lines.append(_sample(name, row.get("labels", {}), row["value"]))
    for row in snapshot.get("histograms", []):
        name = metric_name(row["name"])
        declare(name, "summary")
        labels = row.get("labels", {})
        for quantile, key in SUMMARY_QUANTILES:
            lines.append(
                _sample(name, {**labels, "quantile": quantile}, row.get(key, 0.0))
            )
        lines.append(_sample(name + "_sum", labels, row.get("mean_ns", 0.0) * row.get("count", 0)))
        lines.append(_sample(name + "_count", labels, row.get("count", 0)))
    lines.extend(extra_lines)
    return "\n".join(lines) + "\n"


def counter_line(name: str, labels: Mapping[str, Any], value: Any) -> str:
    """One pre-rendered counter sample for ``extra_lines``."""
    return _sample(metric_name(name, "_total"), labels, value)


def gauge_line(name: str, labels: Mapping[str, Any], value: Any) -> str:
    """One pre-rendered gauge sample for ``extra_lines``."""
    return _sample(metric_name(name), labels, value)
