"""Declarative SLO rules evaluated against the live metrics registry.

HyperTRIO's claims are latency-tail claims, so the service watches the
tails it serves: a JSON rule file declares objectives over the live
registry — model-latency percentiles, per-cause drop rates, and PTB
high-watermark dwell time — and :class:`SloWatcher` evaluates them
against periodic samples, emitting ``slo.breach`` / ``slo.recover``
events through the obs tracer on every state transition.  The server can
optionally let a breach drive admission backpressure
(``repro-sim serve --slo-rules rules.json --slo-backpressure``): while
any rule is breached, translates are shed with the typed
``backpressure`` error, mirroring the paper's PTB-overflow drop at the
service layer.

Rule file format (schema ``repro-slo/1``)::

    {
      "schema": "repro-slo/1",
      "rules": [
        {"name": "tail", "kind": "latency_quantile",
         "quantile": 99, "max_ns": 4000},
        {"name": "drops", "kind": "drop_rate",
         "cause": "ptb_overflow", "max_rate": 0.05},
        {"name": "ptb-dwell", "kind": "ptb_dwell",
         "watermark": 24, "max_dwell_s": 2.0},
        {"name": "churn", "kind": "conn_churn",
         "max_per_s": 5.0}
      ]
    }

Evaluation is hysteresis-free by design (the rules are already
thresholds on aggregates, which move slowly); the *dwell* rule carries
its own temporal filter: it breaches only after occupancy has stayed at
or above ``watermark`` continuously for ``max_dwell_s`` wall seconds.

The *churn* rule watches wire health rather than model health: the
sample carries the server's cumulative connections-opened counter, and
the rule breaches when the opening **rate** between two evaluations
exceeds ``max_per_s`` — a reconnect storm (or an eviction loop) shows
up here even when every translation still succeeds.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.obs import events as ev

#: Schema tag expected at the top of every rule file.
SLO_SCHEMA = "repro-slo/1"

KIND_LATENCY = "latency_quantile"
KIND_DROP_RATE = "drop_rate"
KIND_PTB_DWELL = "ptb_dwell"
KIND_CONN_CHURN = "conn_churn"
ALL_KINDS = (KIND_LATENCY, KIND_DROP_RATE, KIND_PTB_DWELL, KIND_CONN_CHURN)


class SloFormatError(ValueError):
    """A rule file that could not be parsed into valid rules."""


@dataclass(frozen=True)
class SloRule:
    """One declarative objective.

    ``threshold`` is the rule's limit in its kind's unit: nanoseconds
    for ``latency_quantile`` (``max_ns``), a 0..1 fraction for
    ``drop_rate`` (``max_rate``), wall seconds for ``ptb_dwell``
    (``max_dwell_s``), connections opened per wall second for
    ``conn_churn`` (``max_per_s``).
    """

    name: str
    kind: str
    threshold: float
    #: ``latency_quantile``: which percentile of the model latency.
    quantile: float = 99.0
    #: ``drop_rate``: which drop cause (``"any"`` sums all causes).
    cause: str = "any"
    #: ``ptb_dwell``: the occupancy (entries) that starts the dwell timer.
    watermark: int = 0


@dataclass
class SloSample:
    """One evaluation input, assembled by the caller from live state.

    ``latency_percentile`` maps a quantile (0..100) to nanoseconds;
    ``drop_rate`` maps a cause name (or ``"any"``) to a 0..1 fraction;
    ``ptb_occupancy`` is the maximum modeled PTB occupancy across
    devices; ``model_ns`` timestamps emitted events on the simulation
    clock.
    """

    latency_percentile: Callable[[float], float]
    drop_rate: Callable[[str], float]
    ptb_occupancy: int = 0
    model_ns: float = 0.0
    #: Cumulative connections-opened count (``conn_churn`` rules derive
    #: the per-second rate between evaluations from it).
    conn_churn: float = 0.0


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SloFormatError(message)


def rules_from_dict(document: Dict[str, Any]) -> List[SloRule]:
    """Parse and strictly validate a rule document."""
    _require(isinstance(document, dict), "rule file must be a JSON object")
    schema = document.get("schema")
    _require(
        schema == SLO_SCHEMA,
        f"unsupported SLO schema {schema!r} (expected {SLO_SCHEMA!r})",
    )
    raw_rules = document.get("rules")
    _require(
        isinstance(raw_rules, list) and raw_rules,
        "'rules' must be a non-empty list",
    )
    rules: List[SloRule] = []
    seen = set()
    for index, raw in enumerate(raw_rules):
        _require(isinstance(raw, dict), f"rule #{index} must be an object")
        name = raw.get("name")
        _require(
            isinstance(name, str) and name, f"rule #{index} needs a 'name'"
        )
        _require(name not in seen, f"duplicate rule name {name!r}")
        seen.add(name)
        kind = raw.get("kind")
        _require(
            kind in ALL_KINDS,
            f"rule {name!r}: unknown kind {kind!r} (one of {ALL_KINDS})",
        )
        if kind == KIND_LATENCY:
            quantile = raw.get("quantile", 99)
            _require(
                isinstance(quantile, (int, float)) and 0 < quantile <= 100,
                f"rule {name!r}: 'quantile' must be in (0, 100]",
            )
            max_ns = raw.get("max_ns")
            _require(
                isinstance(max_ns, (int, float)) and max_ns >= 0,
                f"rule {name!r}: 'max_ns' must be a non-negative number",
            )
            rules.append(
                SloRule(
                    name=name, kind=kind,
                    threshold=float(max_ns), quantile=float(quantile),
                )
            )
        elif kind == KIND_DROP_RATE:
            cause = raw.get("cause", "any")
            _require(
                isinstance(cause, str) and cause,
                f"rule {name!r}: 'cause' must be a non-empty string",
            )
            max_rate = raw.get("max_rate")
            _require(
                isinstance(max_rate, (int, float)) and 0 <= max_rate <= 1,
                f"rule {name!r}: 'max_rate' must be a fraction in [0, 1]",
            )
            rules.append(
                SloRule(
                    name=name, kind=kind,
                    threshold=float(max_rate), cause=cause,
                )
            )
        elif kind == KIND_PTB_DWELL:
            watermark = raw.get("watermark")
            _require(
                isinstance(watermark, int) and watermark >= 1,
                f"rule {name!r}: 'watermark' must be a positive integer",
            )
            max_dwell = raw.get("max_dwell_s")
            _require(
                isinstance(max_dwell, (int, float)) and max_dwell >= 0,
                f"rule {name!r}: 'max_dwell_s' must be non-negative",
            )
            rules.append(
                SloRule(
                    name=name, kind=kind,
                    threshold=float(max_dwell), watermark=watermark,
                )
            )
        else:  # KIND_CONN_CHURN
            max_per_s = raw.get("max_per_s")
            _require(
                isinstance(max_per_s, (int, float)) and max_per_s >= 0,
                f"rule {name!r}: 'max_per_s' must be non-negative",
            )
            rules.append(
                SloRule(name=name, kind=kind, threshold=float(max_per_s))
            )
    return rules


def load_slo_rules(path: Union[str, Path]) -> List[SloRule]:
    """Load and validate a rule file; raises :class:`SloFormatError`."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise SloFormatError(f"cannot read {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise SloFormatError(f"{path} is not valid JSON: {error}") from None
    return rules_from_dict(document)


class SloWatcher:
    """Evaluates rules against samples; tracks breach state per rule.

    ``tracer`` receives an ``slo.breach`` / ``slo.recover`` event on
    every state *transition* (steady states are silent, so a breached
    rule does not spam one event per evaluation).  ``clock`` feeds the
    dwell timers and is injectable for tests.
    """

    def __init__(
        self,
        rules: List[SloRule],
        tracer=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rules = list(rules)
        self._tracer = tracer if (tracer is not None and tracer.enabled) else None
        self._clock = clock
        self.breached: Dict[str, bool] = {rule.name: False for rule in self.rules}
        #: Wall time at which occupancy first held the watermark, per rule.
        self._dwell_since: Dict[str, Optional[float]] = {}
        #: Previous ``(wall_time, cumulative_count)`` sample per churn
        #: rule — rates are computed between consecutive evaluations.
        self._churn_prev: Dict[str, Tuple[float, float]] = {}
        self.transitions: int = 0

    # ------------------------------------------------------------------
    @property
    def any_breached(self) -> bool:
        return any(self.breached.values())

    def _measure(self, rule: SloRule, sample: SloSample, now: float) -> float:
        if rule.kind == KIND_LATENCY:
            return sample.latency_percentile(rule.quantile)
        if rule.kind == KIND_DROP_RATE:
            return sample.drop_rate(rule.cause)
        if rule.kind == KIND_CONN_CHURN:
            # Connections opened per second since the previous
            # evaluation of this rule (0 on the first sample).
            prev = self._churn_prev.get(rule.name)
            self._churn_prev[rule.name] = (now, sample.conn_churn)
            if prev is None:
                return 0.0
            elapsed = now - prev[0]
            if elapsed <= 0:
                return 0.0
            return (sample.conn_churn - prev[1]) / elapsed
        # KIND_PTB_DWELL: measured value is the current dwell in seconds.
        if sample.ptb_occupancy >= rule.watermark:
            since = self._dwell_since.get(rule.name)
            if since is None:
                self._dwell_since[rule.name] = since = now
            return now - since
        self._dwell_since[rule.name] = None
        return 0.0

    def evaluate(self, sample: SloSample) -> List[Dict[str, Any]]:
        """Evaluate every rule; returns the state *transitions*.

        Each transition is ``{"rule", "kind", "state", "value",
        "threshold"}`` with ``state`` ``"breach"`` or ``"recover"``.
        """
        now = self._clock()
        transitions: List[Dict[str, Any]] = []
        for rule in self.rules:
            value = self._measure(rule, sample, now)
            breached = value > rule.threshold
            if breached == self.breached[rule.name]:
                continue
            self.breached[rule.name] = breached
            self.transitions += 1
            state = "breach" if breached else "recover"
            transitions.append(
                {
                    "rule": rule.name,
                    "kind": rule.kind,
                    "state": state,
                    "value": value,
                    "threshold": rule.threshold,
                }
            )
            if self._tracer is not None:
                # ``rule_kind``, not ``kind``: the event's own kind is the
                # positional first argument of ``emit``.
                self._tracer.emit(
                    ev.SLO_BREACH if breached else ev.SLO_RECOVER,
                    sample.model_ns,
                    rule=rule.name,
                    rule_kind=rule.kind,
                    value=value,
                    threshold=rule.threshold,
                )
        return transitions

    def snapshot(self) -> Dict[str, Any]:
        """Copy-on-read state for the ``stats`` endpoint."""
        return {
            "rules": [
                {
                    "name": rule.name,
                    "kind": rule.kind,
                    "threshold": rule.threshold,
                    "breached": self.breached[rule.name],
                }
                for rule in self.rules
            ],
            "any_breached": self.any_breached,
            "transitions": self.transitions,
        }
