"""Hot-path phase profiling: host-time cost attribution per pipeline stage.

The analytic and event-driven engines share one hot path
(:meth:`repro.sim.engine.DeviceEngine.process_request`); before that path
is rewritten (ROADMAP item 1, the vectorized engine), every speed claim
needs to know *where* the host cycles go.  :class:`PhaseProfiler` splits
the per-request work into three measured segments:

* ``lookup`` — DevTLB lookup plus the prefetch-buffer probe (the
  device-local fast path);
* ``walk`` — the DevTLB-miss branch: shared-IOTLB access, bounded
  walker-pool acquisition, and the two-dimensional page-table walk model;
* ``ptb`` — Pending Translation Buffer issue (occupancy heap upkeep).

Measurements are **host** nanoseconds (``time.perf_counter_ns``), not
modeled virtual time — they attribute simulator cost, not simulated
latency.  The profiler is pure observation: it never feeds back into the
model, so enabling it cannot change a :class:`SimulationResult` beyond
populating ``phase_profile``.

The null path follows the PR 2 zero-cost-when-disabled contract: the
simulator resolves ``observability.phases`` to an attribute-level ``None``
once at attach time, and every hot-path site guards on a local
``if phases is not None`` (guarded by ``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict

#: The measured segments of one translation request, in pipeline order.
PHASE_LOOKUP = "lookup"
PHASE_WALK = "walk"
PHASE_PTB = "ptb"
ALL_PHASES = (PHASE_LOOKUP, PHASE_WALK, PHASE_PTB)


class PhaseProfiler:
    """Accumulates per-phase call counts and host-time totals.

    ``clock`` is injectable (a ``() -> int`` nanosecond counter) so tests
    can drive deterministic timings; the default is
    ``time.perf_counter_ns``.  The profiler pickles with the simulator
    (checkpoint/warm-restart): its state is two plain dicts and a
    by-reference builtin.
    """

    #: Mirrors the tracer convention: checked once at attach time.
    enabled = True

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns):
        self._clock = clock
        self.calls: Dict[str, int] = {}
        self.total_ns: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def begin(self) -> int:
        """Start one measured segment; returns the start timestamp."""
        return self._clock()

    def end(self, phase: str, started: int) -> None:
        """Close one measured segment opened by :meth:`begin`."""
        self.calls[phase] = self.calls.get(phase, 0) + 1
        self.total_ns[phase] = self.total_ns.get(phase, 0) + (
            self._clock() - started
        )

    # ------------------------------------------------------------------
    def totals(self) -> Dict[str, int]:
        """Copy-on-read per-phase host-ns totals (for delta measurement)."""
        return dict(self.total_ns)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-phase breakdown: calls, total host ns, mean, and share.

        Phases appear in pipeline order; phases never entered are
        omitted, so a run without misses simply has no ``walk`` row.
        """
        grand_total = sum(self.total_ns.values())
        breakdown: Dict[str, Dict[str, float]] = {}
        for phase in ALL_PHASES:
            calls = self.calls.get(phase, 0)
            if not calls:
                continue
            total = self.total_ns.get(phase, 0)
            breakdown[phase] = {
                "calls": calls,
                "total_ns": total,
                "mean_ns": total / calls,
                "fraction": total / grand_total if grand_total else 0.0,
            }
        return breakdown

    def reset(self) -> None:
        self.calls.clear()
        self.total_ns.clear()


class NullPhaseProfiler:
    """Disabled profiler: attaching it must cost (near) nothing."""

    enabled = False

    def begin(self) -> int:
        return 0

    def end(self, phase: str, started: int) -> None:
        return None

    def totals(self) -> Dict[str, int]:
        return {}

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {}

    def reset(self) -> None:
        return None


def format_phase_profile(breakdown: Dict[str, Dict[str, float]]) -> str:
    """One-line human-readable rendering (``lookup 42% walk 51% ptb 7%``)."""
    parts = []
    for phase in ALL_PHASES:
        row = breakdown.get(phase)
        if row is None:
            continue
        parts.append(f"{phase} {row['fraction'] * 100.0:.0f}%")
    return " ".join(parts)
