"""Metrics registry: counters, gauges, and log-bucketed latency histograms.

Everything here is deliberately dependency-free (no imports from
:mod:`repro.core`), so the result records in :mod:`repro.core.results` can
reuse the histogram bucket math without an import cycle.

Histograms are **log-bucketed**: a recorded value lands in one of eight
geometric sub-buckets per power of two (via :func:`math.frexp`, no
``log`` call on the hot path), so the bucket table stays tiny — a few
dozen occupied buckets cover nanoseconds to seconds — while
:meth:`LatencyHistogram.percentile` reconstructs any quantile with a
relative error bounded by half a bucket width (< ~6 %).

:class:`MetricsRegistry` keys every instrument by ``(name, labels)``;
the conventional labels along the translation path are ``structure`` and
``sid``, which is what lets per-tenant interference be separated from
aggregate behaviour.  :class:`EvictionAttribution` is the specialised
instrument behind the paper's isolation claim: it counts, per cache,
how often tenant *a*'s fill evicted tenant *b*'s entry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

#: Schema version of :meth:`MetricsRegistry.snapshot` dumps.
REGISTRY_SCHEMA = "repro-obs-registry/1"

#: Sub-buckets per power of two (3 bits -> 8 sub-buckets).
_SUB_BITS = 3
_SUB_COUNT = 1 << _SUB_BITS
#: Exponent offset keeping bucket ids positive for sub-nanosecond values.
_EXP_BIAS = 1024


def latency_bucket(value_ns: float) -> int:
    """Bucket id for ``value_ns`` (0 for non-positive values).

    Buckets are geometric: ``frexp`` splits the value into mantissa
    ``m in [0.5, 1)`` and exponent ``e``; the id packs the biased exponent
    with which of the 8 equal mantissa slices ``m`` falls into.
    """
    if value_ns <= 0.0:
        return 0
    mantissa, exponent = math.frexp(value_ns)
    sub = int((mantissa - 0.5) * (2 * _SUB_COUNT))
    if sub >= _SUB_COUNT:  # mantissa rounding at the top edge
        sub = _SUB_COUNT - 1
    return ((exponent + _EXP_BIAS) << _SUB_BITS) | sub


def bucket_bounds(bucket: int) -> Tuple[float, float]:
    """``[low, high)`` value range covered by ``bucket``."""
    if bucket <= 0:
        return (0.0, 0.0)
    exponent = (bucket >> _SUB_BITS) - _EXP_BIAS
    sub = bucket & (_SUB_COUNT - 1)
    scale = 2.0 ** exponent
    low = (0.5 + sub / (2 * _SUB_COUNT)) * scale
    high = (0.5 + (sub + 1) / (2 * _SUB_COUNT)) * scale
    return (low, high)


def bucket_midpoint(bucket: int) -> float:
    """Representative value of ``bucket`` (midpoint of its range)."""
    low, high = bucket_bounds(bucket)
    return (low + high) / 2.0


def percentile_from_buckets(
    buckets: Dict[int, int], count: int, p: float
) -> float:
    """The ``p``-th percentile (``0 <= p <= 100``) of a bucketed sample.

    Returns the midpoint of the bucket containing the rank-``ceil(p% * n)``
    observation — exact to within half a bucket width.
    """
    if count <= 0 or not buckets:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in 0..100, got {p}")
    rank = max(1, math.ceil(p / 100.0 * count))
    seen = 0
    for bucket in sorted(buckets):
        seen += buckets[bucket]
        if seen >= rank:
            return bucket_midpoint(bucket)
    return bucket_midpoint(max(buckets))


@dataclass
class LatencyHistogram:
    """Log-bucketed latency distribution with exact count/total/min/max."""

    count: int = 0
    total_ns: float = 0.0
    min_ns: float = 0.0
    max_ns: float = 0.0
    buckets: Dict[int, int] = field(default_factory=dict)

    def record(self, value_ns: float) -> None:
        if self.count == 0 or value_ns < self.min_ns:
            self.min_ns = value_ns
        if value_ns > self.max_ns:
            self.max_ns = value_ns
        self.count += 1
        self.total_ns += value_ns
        bucket = latency_bucket(value_ns)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Histogram-estimated ``p``-th percentile (see module docstring)."""
        return percentile_from_buckets(self.buckets, self.count, p)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s observations into this histogram."""
        if other.count == 0:
            return
        if self.count == 0 or other.min_ns < self.min_ns:
            self.min_ns = other.min_ns
        if other.max_ns > self.max_ns:
            self.max_ns = other.max_ns
        self.count += other.count
        self.total_ns += other.total_ns
        for bucket, bucket_count in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + bucket_count

    def summary(self) -> Dict[str, float]:
        """The standard percentile summary exported everywhere."""
        return {
            "count": self.count,
            "mean_ns": self.mean_ns,
            "min_ns": self.min_ns if self.count else 0.0,
            "max_ns": self.max_ns,
            "p50_ns": self.percentile(50.0),
            "p95_ns": self.percentile(95.0),
            "p99_ns": self.percentile(99.0),
        }


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


_LabelKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


def _instrument_key(name: str, labels: Dict[str, Any]) -> _LabelKey:
    return (name, tuple(sorted(labels.items())))


class MetricsRegistry:
    """Get-or-create registry of labelled instruments.

    Instruments are identified by ``(name, labels)``; repeated calls with
    the same identity return the same object, so hot paths can cache the
    instrument locally and skip the registry lookup.
    """

    def __init__(self) -> None:
        self._counters: Dict[_LabelKey, Counter] = {}
        self._gauges: Dict[_LabelKey, Gauge] = {}
        self._histograms: Dict[_LabelKey, LatencyHistogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = _instrument_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = Counter()
            self._counters[key] = instrument
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _instrument_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = Gauge()
            self._gauges[key] = instrument
        return instrument

    def histogram(self, name: str, **labels: Any) -> LatencyHistogram:
        key = _instrument_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = LatencyHistogram()
            self._histograms[key] = instrument
        return instrument

    # ------------------------------------------------------------------
    def histograms_by_label(
        self, name: str, label: str
    ) -> Dict[Any, LatencyHistogram]:
        """All histograms named ``name``, keyed by their ``label`` value."""
        found: Dict[Any, LatencyHistogram] = {}
        for (metric_name, labels), instrument in self._histograms.items():
            if metric_name != name:
                continue
            for key, value in labels:
                if key == label:
                    found[value] = instrument
        return found

    def snapshot(self) -> Dict[str, Any]:
        """JSON-compatible dump of every instrument (copy-on-read).

        Safe to call while a simulation or the translation service is
        mid-update: the instrument tables are copied before iteration
        (so concurrent get-or-create cannot invalidate it) and histogram
        summaries are computed over a copied bucket table (so concurrent
        ``record`` calls cannot change its size mid-summary).  The
        result shares no mutable state with the registry.
        """

        def rows(items, value_of):
            return [
                {"name": name, "labels": dict(labels), **value_of(instrument)}
                for (name, labels), instrument in sorted(
                    items, key=lambda item: (item[0][0], str(item[0][1]))
                )
            ]

        def histogram_row(histogram: LatencyHistogram) -> Dict[str, float]:
            frozen = LatencyHistogram(
                count=histogram.count,
                total_ns=histogram.total_ns,
                min_ns=histogram.min_ns,
                max_ns=histogram.max_ns,
                buckets=dict(histogram.buckets),
            )
            return frozen.summary()

        return {
            "schema": REGISTRY_SCHEMA,
            "counters": rows(list(self._counters.items()), lambda c: {"value": c.value}),
            "gauges": rows(list(self._gauges.items()), lambda g: {"value": g.value}),
            "histograms": rows(list(self._histograms.items()), histogram_row),
        }


# ----------------------------------------------------------------------
# Cross-tenant eviction attribution
# ----------------------------------------------------------------------

def _sid_of(key: Hashable) -> Optional[int]:
    """The SID of a ``(sid, secondary)`` cache key, else ``None``."""
    if type(key) is tuple and len(key) == 2 and type(key[0]) is int:
        return key[0]
    return None


class _EvictionListener:
    """Picklable per-cache eviction callback bound to an attribution."""

    __slots__ = ("attribution", "cache_name")

    def __init__(self, attribution: "EvictionAttribution", cache_name: str):
        self.attribution = attribution
        self.cache_name = cache_name

    def __call__(self, inserted_key: Hashable, victim_key: Hashable) -> None:
        self.attribution.record(self.cache_name, inserted_key, victim_key)


class EvictionAttribution:
    """Per-cache counts of which tenant evicted which tenant's entry.

    Attached to :class:`~repro.cache.setassoc.SetAssociativeCache`
    instances via their ``eviction_listener`` hook.  ``pairs[cache][(a, b)]``
    counts fills by SID ``a`` that evicted an entry of SID ``b``; the
    ``a != b`` slice is the direct measurement behind HyperTRIO's
    isolation claim (a partitioned DevTLB drives it to zero across
    partitions by construction).
    """

    def __init__(self) -> None:
        self.pairs: Dict[str, Dict[Tuple[int, int], int]] = {}

    def listener_for(self, cache_name: str) -> Callable[[Hashable, Hashable], None]:
        """A listener suitable for ``cache.eviction_listener``.

        A named callable rather than a closure so listeners installed on
        caches pickle with the rest of the simulator (checkpointing).
        """
        return _EvictionListener(self, cache_name)

    def record(
        self, cache_name: str, inserted_key: Hashable, victim_key: Hashable
    ) -> None:
        evictor = _sid_of(inserted_key)
        victim = _sid_of(victim_key)
        if evictor is None or victim is None:
            return
        table = self.pairs.setdefault(cache_name, {})
        pair = (evictor, victim)
        table[pair] = table.get(pair, 0) + 1

    # ------------------------------------------------------------------
    def cross_tenant_count(self, cache_name: Optional[str] = None) -> int:
        """Evictions where the evictor and victim SIDs differ."""
        tables = (
            [self.pairs.get(cache_name, {})]
            if cache_name is not None
            else list(self.pairs.values())
        )
        return sum(
            count
            for table in tables
            for (evictor, victim), count in table.items()
            if evictor != victim
        )

    def victim_counts(self, cache_name: str) -> Dict[int, int]:
        """Per-victim-SID counts of entries lost to *other* tenants."""
        victims: Dict[int, int] = {}
        for (evictor, victim), count in self.pairs.get(cache_name, {}).items():
            if evictor != victim:
                victims[victim] = victims.get(victim, 0) + count
        return victims

    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        """JSON-compatible dump: ``{cache: {"total_cross_tenant": n,
        "pairs": {"a->b": count (a != b only)}}}``."""
        dump: Dict[str, Dict[str, Any]] = {}
        for cache_name, table in sorted(self.pairs.items()):
            cross = {
                f"{evictor}->{victim}": count
                for (evictor, victim), count in sorted(table.items())
                if evictor != victim
            }
            dump[cache_name] = {
                "total_cross_tenant": sum(cross.values()),
                "pairs": cross,
            }
        return dump
