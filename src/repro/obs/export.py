"""Exporters: Chrome trace-event / Perfetto JSON, JSONL, and metrics files.

**Chrome trace format** (loadable by Perfetto's legacy importer and
``chrome://tracing``): events carry microsecond timestamps, so the
nanosecond simulation clock is divided by 1000.  Track layout: one
*process* per structure (``packet``, ``request``, ``devtlb``, ``ptb``,
``walker``, ``prefetch``, ...) and one *thread* per SID inside it, so
both per-structure and per-tenant views exist without duplicating
events.  Spans (``dur_ns > 0``) become complete (``"X"``) events,
everything else thread-scoped instants (``"i"``).

**JSONL** is one event object per line — the grep/pandas-friendly form.

**Metrics files** bundle a run's per-SID latency percentiles, cross-tenant
eviction attribution, and the registry snapshot into one JSON document
(schema ``repro-obs-metrics/1``), consumed by ``repro-sim report-metrics``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Union

from repro.obs.events import structure_of
from repro.obs.spans import Span
from repro.obs.tracer import TraceEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.results import SimulationResult
    from repro.obs import Observability

#: Schema tag written into every metrics file.
METRICS_SCHEMA = "repro-obs-metrics/1"

#: Schema tag written into every Chrome-trace export.  JSONL exports stay
#: one bare event per line (no header object) so they remain directly
#: grep/pandas-loadable; their schema is implied by the file suffix.
TRACE_SCHEMA = "repro-obs-trace/1"


def _event_dict(event: TraceEvent) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "kind": event.kind,
        "ts_ns": event.ts_ns,
        "sid": event.sid,
    }
    if event.dur_ns:
        record["dur_ns"] = event.dur_ns
    if event.args:
        record["args"] = event.args
    return record


def spans_to_chrome_events(
    spans: Iterable[Span], pid: int = 1000
) -> List[Dict[str, Any]]:
    """Render request spans as Chrome complete events on one track set.

    Spans live in their own *process* (named ``spans``, default pid 1000
    so it sorts after the per-structure event tracks) with one thread per
    SID; every span is a complete (``"X"``) event whose args carry the
    linking identity (``trace_id`` / ``span_id`` / ``parent_id``), so
    Perfetto's flow/args view reconstructs the request tree and time
    containment nests children visually inside their parents.
    """
    records: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "spans"},
        }
    ]
    named_threads = set()
    for span in spans:
        if span.end_ns is None:
            continue
        tid = span.sid if span.sid >= 0 else 0
        if tid not in named_threads:
            named_threads.add(tid)
            records.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "name": f"sid {span.sid}" if span.sid >= 0 else "global"
                    },
                }
            )
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.attrs:
            args.update(span.attrs)
        records.append(
            {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "ts": span.start_ns / 1000.0,
                "dur": span.dur_ns / 1000.0,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return records


def to_chrome_trace(
    events: Iterable[TraceEvent], spans: Optional[Iterable[Span]] = None
) -> Dict[str, Any]:
    """Build a Chrome trace-event document from ``events`` (and spans)."""
    trace_events: List[Dict[str, Any]] = []
    pids: Dict[str, int] = {}
    named_threads = set()

    for event in events:
        structure = structure_of(event.kind)
        pid = pids.get(structure)
        if pid is None:
            pid = len(pids) + 1
            pids[structure] = pid
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": structure},
                }
            )
        tid = event.sid if event.sid >= 0 else 0
        if (pid, tid) not in named_threads:
            named_threads.add((pid, tid))
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "name": f"sid {event.sid}" if event.sid >= 0 else "global"
                    },
                }
            )
        record: Dict[str, Any] = {
            "name": event.kind,
            "cat": structure,
            "ts": event.ts_ns / 1000.0,
            "pid": pid,
            "tid": tid,
        }
        if event.args:
            record["args"] = dict(event.args)
        if event.dur_ns > 0.0:
            record["ph"] = "X"
            record["dur"] = event.dur_ns / 1000.0
        else:
            record["ph"] = "i"
            record["s"] = "t"
        trace_events.append(record)

    if spans is not None:
        trace_events.extend(spans_to_chrome_events(spans, pid=len(pids) + 1000))

    # Extra top-level keys are legal in the trace-event format; viewers
    # ignore "schema".
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ns",
        "schema": TRACE_SCHEMA,
    }


def write_chrome_trace(
    events: Iterable[TraceEvent],
    path: Union[str, Path],
    spans: Optional[Iterable[Span]] = None,
) -> Path:
    """Write a Perfetto-loadable Chrome trace JSON file; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(to_chrome_trace(events, spans=spans), separators=(",", ":"))
        + "\n",
        encoding="utf-8",
    )
    return path


def write_spans(spans: Iterable[Span], path: Union[str, Path]) -> Path:
    """Write a span-only Perfetto trace (``repro-sim serve --span-out``)."""
    return write_chrome_trace([], path, spans=spans)


def write_jsonl(events: Iterable[TraceEvent], path: Union[str, Path]) -> Path:
    """Write one JSON object per event per line; returns the path."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(_event_dict(event), separators=(",", ":")))
            handle.write("\n")
    return path


def write_trace(events: Iterable[TraceEvent], path: Union[str, Path]) -> Path:
    """Dispatch on suffix: ``.jsonl`` -> JSONL, anything else -> Chrome JSON."""
    path = Path(path)
    if path.suffix == ".jsonl":
        return write_jsonl(events, path)
    return write_chrome_trace(events, path)


# ----------------------------------------------------------------------
# Metrics documents
# ----------------------------------------------------------------------

def metrics_document(
    observability: "Observability",
    result: Optional["SimulationResult"] = None,
) -> Dict[str, Any]:
    """Assemble the metrics JSON document for one finished run."""
    document: Dict[str, Any] = {"schema": METRICS_SCHEMA}
    if result is not None:
        document["run"] = {
            "config": result.config_name,
            "benchmark": result.benchmark,
            "num_tenants": result.num_tenants,
            "interleaving": result.interleaving,
            "elapsed_ns": result.elapsed_ns,
            "achieved_bandwidth_gbps": result.achieved_bandwidth_gbps,
            "link_utilization": result.link_utilization,
            "packets_dropped": result.packets.dropped,
        }
        document["overall_latency"] = {
            "count": result.latency.count,
            "mean_ns": result.latency.mean_ns,
            "min_ns": result.latency.min_ns,
            "max_ns": result.latency.max_ns,
            **result.percentiles,
        }
    metrics = observability.metrics
    if metrics is not None:
        per_sid = metrics.histograms_by_label("translation_latency_ns", "sid")
        document["per_sid_latency"] = {
            str(sid): histogram.summary()
            for sid, histogram in sorted(per_sid.items())
        }
        document["registry"] = metrics.snapshot()
    evictions = observability.evictions
    if evictions is not None:
        document["cross_tenant_evictions"] = evictions.to_dict()
    return document


def write_metrics(
    path: Union[str, Path],
    observability: "Observability",
    result: Optional["SimulationResult"] = None,
) -> Path:
    """Write the metrics document for a run to ``path``; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(metrics_document(observability, result), indent=2) + "\n",
        encoding="utf-8",
    )
    return path
