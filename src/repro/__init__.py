"""HyperTRIO / HyperSIO reproduction (ISCA 2020).

Public API for the common workflow::

    from repro import construct_trace, simulate, base_config, hypertrio_config
    from repro.trace import MEDIASTREAM

    trace = construct_trace(MEDIASTREAM, num_tenants=64,
                            packets_per_tenant=200, interleaving="RR1")
    result = simulate(hypertrio_config(), trace)
    print(result.summary())

Subpackages:

* :mod:`repro.mem` — addresses, allocators, radix page tables, 2-D walker
* :mod:`repro.cache` — replacement policies and TLB structures
* :mod:`repro.iommu` — chipset translation subsystem
* :mod:`repro.device` — packets, rings, DevTLB
* :mod:`repro.core` — HyperTRIO mechanisms (PTB, partitioning, prefetch)
* :mod:`repro.trace` — workload models and the trace constructor
* :mod:`repro.sim` — the performance model
* :mod:`repro.analysis` — experiment drivers for every table/figure
"""

from repro.core.config import (
    ArchConfig,
    DeviceConfig,
    PrefetchConfig,
    TimingParams,
    TlbConfig,
    base_config,
    case_study_timing,
    hypertrio_config,
)
from repro.core.results import SimulationResult
from repro.sim.simulator import HyperSimulator, simulate
from repro.trace.constructor import HyperTrace, construct_trace
from repro.trace.tenant import (
    BENCHMARKS,
    IPERF3,
    MEDIASTREAM,
    WEBSEARCH,
    BenchmarkProfile,
    profile_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "ArchConfig",
    "TlbConfig",
    "TimingParams",
    "PrefetchConfig",
    "DeviceConfig",
    "base_config",
    "hypertrio_config",
    "case_study_timing",
    "SimulationResult",
    "HyperSimulator",
    "simulate",
    "HyperTrace",
    "construct_trace",
    "BenchmarkProfile",
    "profile_by_name",
    "BENCHMARKS",
    "IPERF3",
    "MEDIASTREAM",
    "WEBSEARCH",
    "__version__",
]
