"""I/O link arrival process helpers.

The performance model assumes a fully utilised link: the next packet
arrival time follows from link bandwidth and packet size (Section IV-C).
These helpers centralise the slot arithmetic used by the simulator's
drop-and-retry admission and by tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class IoLink:
    """A saturated link delivering fixed-size packets back to back."""

    bandwidth_gbps: float
    packet_bytes: int = 1542

    def __post_init__(self):
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.packet_bytes < 1:
            raise ValueError("packet size must be positive")

    @property
    def interarrival_ns(self) -> float:
        """Time between packet arrivals on the saturated link."""
        return self.packet_bytes * 8 / self.bandwidth_gbps

    def slot_at_or_after(self, origin_ns: float, time_ns: float) -> float:
        """First arrival slot at or after ``time_ns``, given slot 0 at origin."""
        if time_ns <= origin_ns:
            return origin_ns
        slots = math.ceil((time_ns - origin_ns) / self.interarrival_ns)
        return origin_ns + slots * self.interarrival_ns

    def packets_in(self, duration_ns: float) -> int:
        """Packets the link delivers in ``duration_ns``."""
        if duration_ns < 0:
            raise ValueError("duration cannot be negative")
        return int(duration_ns / self.interarrival_ns)

    def bandwidth_for_packets(self, packets: int, elapsed_ns: float) -> float:
        """Achieved bandwidth (Gb/s) for ``packets`` over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return packets * self.packet_bytes * 8 / elapsed_ns
