"""Shared-resource contention helpers for the analytic timing model.

The performance model is analytic (latencies are computed at issue), so a
resource with limited concurrency — e.g. a fixed number of IOMMU page-table
walkers — is modelled as a min-heap of per-unit free times: a job acquires
the earliest-free unit, waits if needed, and occupies it for its service
time.  This is exact for FIFO service of a known-latency job stream.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple


class ResourcePool:
    """``capacity`` identical units serving jobs in arrival order."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._free_at: List[float] = [0.0] * capacity
        heapq.heapify(self._free_at)
        self.jobs_served = 0
        self.total_queue_delay_ns = 0.0

    def acquire(self, now: float, service_ns: float) -> Tuple[float, float]:
        """Serve one job arriving at ``now`` for ``service_ns``.

        Returns ``(start, completion)``; ``start - now`` is queueing delay.
        """
        if service_ns < 0:
            raise ValueError("service time cannot be negative")
        earliest = heapq.heappop(self._free_at)
        start = now if earliest <= now else earliest
        completion = start + service_ns
        heapq.heappush(self._free_at, completion)
        self.jobs_served += 1
        self.total_queue_delay_ns += start - now
        return start, completion

    @property
    def mean_queue_delay_ns(self) -> float:
        return (
            self.total_queue_delay_ns / self.jobs_served if self.jobs_served else 0.0
        )


class UnboundedPool:
    """Infinite-concurrency stand-in with the same interface."""

    def __init__(self):
        self.jobs_served = 0
        self.total_queue_delay_ns = 0.0

    def acquire(self, now: float, service_ns: float) -> Tuple[float, float]:
        if service_ns < 0:
            raise ValueError("service time cannot be negative")
        self.jobs_served += 1
        return now, now + service_ns

    @property
    def mean_queue_delay_ns(self) -> float:
        return 0.0
