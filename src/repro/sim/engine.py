"""Per-device engine components of the fabric performance model.

The simulator used to be a monolith driving one
:class:`~repro.core.hypertrio.TranslationPath`; with the multi-device
fabric (:mod:`repro.core.fabric`) its per-packet machinery lives here as a
:class:`DeviceEngine` — one per device path, all sharing the chipset
through the fabric.  An engine owns everything device-local: the packet
cursor and per-device clock, admission against this device's PTB, the
translation of each request through the *shared* IOMMU, the prefetch
pipeline with its pending-install heap, and per-device accounting
(packet/latency stats, shared-IOTLB outcomes, walker queueing).

Both top-level control flows drive the same engines: the analytic
:class:`~repro.sim.simulator.HyperSimulator` merges per-device cursors by
``(next_time, device_id)``, the event-driven twin in :mod:`repro.sim.des`
schedules the identical steps through an event queue.  Keeping every
structure access inside the engine is what makes the two engines
step-for-step identical — and makes a single-device run behave exactly
like the pre-fabric monolith.

:class:`PacketRouter` splits one hyper-trace lazily across devices: the
trace stays a single stream (its interleaving is the tenant schedule), and
each device sees the sub-stream of packets whose SID routes to it.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.core.results import RequestLatencyStats
from repro.device.packet import PacketStats
from repro.obs import events as ev
from repro.obs.phases import PHASE_LOOKUP, PHASE_PTB, PHASE_WALK


class PacketRouter:
    """Lazily deal one packet stream out to per-device queues.

    The hyper-trace is one wire-ordered stream; each device consumes the
    packets whose SID maps to it (``fabric.device_for_sid``).  Packets for
    other devices encountered while searching are parked in per-device
    deques, so the source is consumed exactly once and never materialised
    beyond the routing lookahead.

    The source cursor is an explicit index into the packet sequence (not
    an iterator) so a router mid-run is plain picklable state — simulation
    checkpoints snapshot it together with the engines.
    """

    def __init__(self, packets, fabric, limit: Optional[int] = None):
        self._packets = packets
        self._pos = 0
        self._limit = len(packets) if limit is None else min(limit, len(packets))
        self._queues: List[deque] = [deque() for _ in range(fabric.num_devices)]
        self._single = fabric.num_devices == 1
        self._route = fabric.device_for_sid

    def _next_source(self):
        if self._pos >= self._limit:
            return None
        packet = self._packets[self._pos]
        self._pos += 1
        return packet

    def next_packet(self, device_id: int):
        """The next packet destined for ``device_id``; ``None`` when done."""
        queue = self._queues[device_id]
        if queue:
            return queue.popleft()
        if self._single:
            return self._next_source()
        while True:
            packet = self._next_source()
            if packet is None:
                return None
            target = self._route(packet.sid)
            if target == device_id:
                return packet
            self._queues[target].append(packet)


class DeviceEngine:
    """The per-packet machinery of one device path.

    Holds this device's packet cursor (``current_packet`` /
    ``next_time``), clock, and accounting, and implements the admission /
    translation / prefetch steps against the device's own structures plus
    the fabric's shared chipset.  The driving simulator decides *when*
    each step runs (merge loop or event queue); the engine guarantees the
    steps themselves are identical.
    """

    def __init__(self, sim, fabric, device_id: int):
        self.sim = sim
        self.device_id = device_id
        self.device = fabric.devices[device_id]
        self.chipset = fabric.chipset
        self.config = sim.config
        self.timing = sim.config.timing
        #: Shared fault injector (``None`` without a fault plan — the hot
        #: path then pays a single attribute check, like the obs layer).
        self._injector = sim._injector
        #: Shared phase profiler (``None`` unless the bundle carries one),
        #: resolved once like the injector so the disabled hot path pays a
        #: local ``is not None`` check per segment and nothing else.
        self._phases = sim._phases
        # Tenant-wide chipset flushes must also drop this device's
        # in-flight prefetch installs, or a prefetch issued before the
        # unmap would re-install the stale translation afterwards.
        self.chipset.iommu.add_invalidation_listener(self._on_tenant_invalidated)
        # Per-device clock and accounting.
        self.clock = 0.0
        self.last_completion = 0.0
        self.packet_stats = PacketStats()
        self.latency_stats = RequestLatencyStats()
        self.invalidation_messages = 0
        #: Shared-IOTLB outcomes of this device's DevTLB misses, and the
        #: time its walks queued behind the shared walker pool — the
        #: cross-device contention signals `DeviceResult` reports.
        self.iotlb_hits = 0
        self.iotlb_misses = 0
        self.walker_queue_delay_ns = 0.0
        self.measure_from_bytes = 0
        # Prefetch plumbing: a (install_time, seq, ...) min-heap; the
        # monotonic seq keeps equal-time installs in issue order, matching
        # both the old stable sort and the event queue's tie-breaking.
        self._pending_installs: List[Tuple[float, int, int, int, int, int]] = []
        self._install_seq = itertools.count()
        self._inflight_prefetches: set = set()
        self._last_predicted_sid: Optional[int] = None
        # Packet cursor.
        self.current_packet = None
        self.current_is_retry = False
        self.next_time = 0.0
        self._trace_packet = False
        #: Event/metric labels: empty for a single-device fabric so its
        #: traces stay byte-identical to the pre-fabric model.
        self._extra: Dict[str, int] = (
            {} if fabric.num_devices == 1 else {"device": device_id}
        )
        if sim._metrics is not None:
            # Local instrument caches so the hot path skips the registry's
            # (name, labels) key construction per event.
            self._sid_latency: Dict[int, object] = {}
            self._sid_counters: Dict[Tuple[str, int], object] = {}

    # ------------------------------------------------------------------
    # Packet cursor
    # ------------------------------------------------------------------
    def wire_time(self, packet) -> float:
        """Per-packet wire time: small packets (e.g. key-value traffic)
        arrive faster than full frames."""
        timing = self.timing
        if packet.size_bytes == timing.packet_bytes:
            return timing.packet_interarrival_ns
        # Gb/s == bits/ns.
        return packet.size_bytes * 8 / timing.link_bandwidth_gbps

    def fetch_next(self, router: PacketRouter) -> bool:
        """Advance the cursor to this device's next trace packet."""
        packet = router.next_packet(self.device_id)
        if packet is None:
            self.current_packet = None
            return False
        self.current_packet = packet
        self.current_is_retry = False
        self.next_time = self.clock + self.wire_time(packet)
        return True

    def begin_packet(self) -> None:
        """First-arrival accounting (not repeated on admission retries)."""
        self.sim.packet_stats.arrived += 1
        self.packet_stats.arrived += 1
        tracer = self.sim._tracer
        if tracer is not None:
            self._trace_packet = tracer.sample_packet()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def try_admit(self, arrival: float) -> bool:
        """One admission attempt against this device's PTB.

        On rejection the drop is accounted and ``next_time`` advances to
        the next arrival slot with a free entry (drop-and-retry,
        Section IV-C); the caller re-dispatches at that time.

        An active fault injector hooks in here, before the PTB check:
        scheduled storms/resets/leaks due by ``arrival`` are applied at
        the same global dispatch point in both engines.
        """
        injector = self._injector
        if injector is not None and not self._apply_due_faults(injector, arrival):
            return False
        ptb = self.device.ptb
        if ptb.can_accept(arrival):
            return True
        ptb.reject_packet()
        self.sim.packet_stats.record_drop("ptb_overflow")
        self.sim.packet_stats.retried += 1
        self.packet_stats.record_drop("ptb_overflow")
        self.packet_stats.retried += 1
        if self._trace_packet:
            self.sim._tracer.emit(
                ev.PACKET_DROP,
                arrival,
                self.current_packet.sid,
                occupancy=ptb.occupancy(arrival),
                **self._extra,
            )
        wire_ns = self.wire_time(self.current_packet)
        free_at = ptb.earliest_free_time(arrival)
        slots = max(1, math.ceil((free_at - arrival) / wire_ns))
        self.next_time = arrival + slots * wire_ns
        self.current_is_retry = True
        return False

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def _apply_due_faults(self, injector, arrival: float) -> bool:
        """Apply scheduled faults due by ``arrival``; False drops the packet.

        Storms flush fabric-wide state; a device reset additionally
        drops the arriving packet (the device path is resetting) and
        schedules its retry; PTB leaks adjust this device's effective
        capacity before the admission check.
        """
        for storm in injector.due_storms(arrival):
            self.sim.apply_invalidation_storm(storm, arrival)
        if injector.due_reset(self.device_id, arrival):
            self._apply_device_reset(arrival)
            return False
        self.device.ptb.set_leak(
            injector.ptb_leaked_entries(self.device_id, arrival)
        )
        return True

    def _apply_device_reset(self, now: float) -> None:
        """Reset this device path's translation state mid-run.

        DevTLB, prefetch buffer, and in-flight prefetch bookkeeping are
        flushed and the PTB's in-flight entries are discarded.  Pending
        install completions are *not* purged here — clearing
        ``_inflight_prefetches`` makes :meth:`apply_install` skip them,
        which is the one mechanism that behaves identically for the
        analytic heap and the event queue's scheduled installs.
        """
        device = self.device
        for key in list(device.devtlb.keys()):
            device.devtlb.invalidate(key)
        if device.prefetch_unit is not None:
            buffer = device.prefetch_unit.buffer
            for key in list(buffer.keys()):
                buffer.invalidate(key)
        self._inflight_prefetches.clear()
        self._last_predicted_sid = None
        device.ptb.flush()
        sim = self.sim
        sim.packet_stats.record_drop("device_reset")
        sim.packet_stats.retried += 1
        self.packet_stats.record_drop("device_reset")
        self.packet_stats.retried += 1
        tracer = sim._tracer
        if tracer is not None:
            tracer.emit(
                ev.FAULT_DEVICE_RESET,
                now,
                self.current_packet.sid,
                cause="device_reset",
                **self._extra,
            )
        self.next_time = now + self.wire_time(self.current_packet)
        self.current_is_retry = True

    def flush_tenant(self, sid: int) -> None:
        """Flush every device-local cached translation of ``sid``.

        The storm path: the chipset side is flushed by
        ``Iommu.invalidate_tenant`` (whose listeners purge this engine's
        in-flight prefetches); entries evicted here count as ATS
        invalidation messages, like per-page unmaps.
        """
        device = self.device
        flushed = 0
        for key in list(device.devtlb.keys()):
            if key[0] == sid:
                device.devtlb.invalidate(key)
                flushed += 1
        if device.prefetch_unit is not None:
            buffer = device.prefetch_unit.buffer
            for key in list(buffer.keys()):
                if key[0] == sid:
                    buffer.invalidate(key)
                    flushed += 1
        self.sim.invalidation_messages += flushed
        self.invalidation_messages += flushed

    def _on_tenant_invalidated(self, sid: int) -> None:
        """Drop in-flight prefetch installs for a flushed tenant.

        Without this, a prefetch issued before the tenant-wide unmap
        would re-install the stale translation when its completion time
        arrives.  Heap/event entries stay put; :meth:`apply_install`
        skips any install no longer in ``_inflight_prefetches``.
        """
        inflight = self._inflight_prefetches
        if not inflight:
            return
        for key in [key for key in inflight if key[0] == sid]:
            inflight.discard(key)

    # ------------------------------------------------------------------
    # Packet processing
    # ------------------------------------------------------------------
    def process_native(self, arrival: float) -> float:
        """Native (no-translation) path: processed at line rate."""
        packet = self.current_packet
        self.sim.packet_stats.accepted += 1
        self.packet_stats.accepted += 1
        self.sim.packet_stats.record_processed(packet)
        self.packet_stats.record_processed(packet)
        self.clock = arrival
        self.last_completion = max(self.last_completion, arrival)
        return arrival

    def complete_packet(self, arrival: float, drain_installs: bool = True) -> float:
        """All the work of one *accepted* packet; returns its completion.

        ``drain_installs`` applies prefetch installs due by ``arrival``
        inline (the analytic engine); the event engine passes ``False``
        and fires installs as their own events instead.
        """
        sim = self.sim
        packet = self.current_packet
        if self._trace_packet:
            sim._tracer.emit(
                ev.PACKET_ADMIT,
                arrival,
                packet.sid,
                size_bytes=packet.size_bytes,
                **self._extra,
            )
        if packet.invalidations:
            self.invalidate_pages(packet.sid, packet.invalidations)
        if drain_installs:
            self.drain_installs(arrival)
        if self.device.prefetch_unit is not None:
            self.maybe_prefetch(arrival, packet.sid)
        completion = arrival
        for giova in packet.giovas:
            finished = self.process_request(arrival, packet.sid, giova)
            if finished is None:
                # Degraded-mode retries exhausted (fault injection): the
                # packet is dropped mid-translation — counted by
                # process_request, never accepted/processed.
                self.clock = arrival
                self.last_completion = max(self.last_completion, completion)
                return completion
            completion = max(completion, finished)
        sim.packet_stats.accepted += 1
        self.packet_stats.accepted += 1
        sim.packet_stats.record_processed(packet)
        self.packet_stats.record_processed(packet)
        self.clock = arrival
        self.last_completion = max(self.last_completion, completion)
        return completion

    # ------------------------------------------------------------------
    def process_request(self, now: float, sid: int, giova: int) -> Optional[float]:
        """Translate one gIOVA; returns its completion time.

        Returns ``None`` when fault injection made every IOMMU attempt
        fault and the degraded-mode retry budget
        (``TimingParams.fault_max_retries``) is exhausted — the caller
        drops the packet.
        """
        sim = self.sim
        timing = self.timing
        device = self.device
        chipset = self.chipset
        page = giova >> 12
        key = (sid, page)
        tracer = sim._tracer if self._trace_packet else None
        phases = self._phases

        if sim._oracle is not None:
            sim._oracle.consume(key)
        if chipset.iova_history is not None:
            chipset.iova_history.record(sid, page)

        if phases is not None:
            phase_started = phases.begin()
        latency = timing.iotlb_hit_ns  # DevTLB lookup itself
        cached = device.devtlb.lookup(key)
        hit = cached is not None
        if tracer is not None:
            tracer.emit(
                ev.DEVTLB_HIT if hit else ev.DEVTLB_MISS,
                now,
                sid,
                page=page,
                **self._extra,
            )
        if hit and cached[2]:
            # First demand hit on a prefetched entry: credit the prefetcher
            # and clear the provenance flag.
            device.prefetch_unit.stats.supplied_translations += 1
            device.devtlb.insert(key, (cached[0], cached[1], False))
            if tracer is not None:
                tracer.emit(
                    ev.PREFETCH_SUPPLY, now, sid, page=page, via="devtlb",
                    **self._extra,
                )
        if not hit and device.prefetch_unit is not None:
            if device.prefetch_unit.lookup(sid, page) is not None:
                hit = True
                device.prefetch_unit.stats.supplied_translations += 1
                if tracer is not None:
                    tracer.emit(ev.PB_HIT, now, sid, page=page, **self._extra)
                    tracer.emit(
                        ev.PREFETCH_SUPPLY, now, sid, page=page,
                        via="prefetch_buffer", **self._extra,
                    )
        if phases is not None:
            phases.end(PHASE_LOOKUP, phase_started)
        if not hit:
            # Miss: cross PCIe, translate at the shared chipset, cross back.
            if phases is not None:
                phase_started = phases.begin()
            injector = self._injector
            fault_latency = 0.0
            if injector is not None:
                # Degraded mode: each faulted IOMMU attempt costs a wasted
                # PCIe round trip plus capped exponential backoff, charged
                # to this request; an exhausted budget drops the packet.
                attempt = 0
                while injector.translation_fault(now, sid):
                    if tracer is not None:
                        tracer.emit(
                            ev.FAULT_TRANSLATION, now, sid,
                            page=page, attempt=attempt, **self._extra,
                        )
                    if attempt >= timing.fault_max_retries:
                        sim.packet_stats.record_drop("translation_fault")
                        self.packet_stats.record_drop("translation_fault")
                        drop_tracer = sim._tracer
                        if drop_tracer is not None:
                            drop_tracer.emit(
                                ev.FAULT_DROP, now, sid,
                                cause="translation_fault", page=page,
                                **self._extra,
                            )
                        if sim._metrics is not None:
                            self._record_fault_drop_metric(sid)
                        return None
                    fault_latency += (
                        2 * timing.pcie_one_way_ns
                        + timing.fault_backoff_ns * (2.0 ** attempt)
                    )
                    attempt += 1
                latency += fault_latency
            outcome = chipset.iommu.translate(sid, giova)
            at_chipset = now + fault_latency + timing.pcie_one_way_ns
            start, served = chipset.walker_pool.acquire(
                at_chipset, outcome.latency_ns
            )
            chipset_time = served - at_chipset
            latency += 2 * timing.pcie_one_way_ns + chipset_time
            if injector is not None:
                # Transient latency spikes: per-crossing PCIe and per-walk
                # DRAM penalties active at this request's issue time.
                latency += 2 * injector.pcie_extra_ns(now)
                latency += outcome.memory_accesses * injector.dram_extra_ns(now)
            device.devtlb.insert(key, (outcome.hpa, outcome.page_shift, False))
            if outcome.iotlb_hit:
                self.iotlb_hits += 1
            else:
                self.iotlb_misses += 1
            self.walker_queue_delay_ns += start - at_chipset
            if tracer is not None:
                self._emit_chipset_events(
                    tracer, sid, page, at_chipset, start, served, outcome
                )
            if phases is not None:
                phases.end(PHASE_WALK, phase_started)
        if phases is not None:
            phase_started = phases.begin()
        completion = device.ptb.issue(now, latency)
        if phases is not None:
            phases.end(PHASE_PTB, phase_started)
        sim.latency_stats.record(latency)
        self.latency_stats.record(latency)
        if tracer is not None:
            tracer.emit(
                ev.PTB_ENQUEUE,
                now,
                sid,
                wait_ns=max(0.0, completion - latency - now),
                **self._extra,
            )
            tracer.emit(ev.PTB_RELEASE, completion, sid, **self._extra)
            tracer.emit(
                ev.REQUEST_TRANSLATE,
                now,
                sid,
                dur_ns=completion - now,
                page=page,
                hit=hit,
                **self._extra,
            )
        if sim._metrics is not None:
            self._record_request_metrics(sid, latency, hit)
        return completion

    # ------------------------------------------------------------------
    def _emit_chipset_events(
        self, tracer, sid: int, page: int, at_chipset: float, start: float,
        served: float, outcome,
    ) -> None:
        """Trace the chipset side of one DevTLB miss (IOTLB, walker pool)."""
        extra = self._extra
        if outcome.iotlb_hit:
            tracer.emit(ev.IOTLB_HIT, at_chipset, sid, page=page, **extra)
            return
        tracer.emit(ev.IOTLB_MISS, at_chipset, sid, page=page, **extra)
        tracer.emit(
            ev.WALKER_ACQUIRE, at_chipset, sid,
            queue_delay_ns=start - at_chipset, **extra,
        )
        tracer.emit(
            ev.WALKER_WALK,
            start,
            sid,
            dur_ns=served - start,
            memory_accesses=outcome.memory_accesses,
            nested_hits=outcome.nested_hits,
            nested_misses=outcome.nested_misses,
            **extra,
        )
        tracer.emit(ev.WALKER_RELEASE, served, sid, **extra)

    def _record_request_metrics(self, sid: int, latency: float, hit: bool) -> None:
        """Per-SID metric updates for one translation (metrics layer on)."""
        metrics = self.sim._metrics
        histogram = self._sid_latency.get(sid)
        if histogram is None:
            histogram = metrics.histogram(
                "translation_latency_ns", sid=sid, **self._extra
            )
            self._sid_latency[sid] = histogram
        histogram.record(latency)
        counter_key = ("devtlb.hit" if hit else "devtlb.miss", sid)
        counter = self._sid_counters.get(counter_key)
        if counter is None:
            counter = metrics.counter(
                counter_key[0], structure="devtlb", sid=sid, **self._extra
            )
            self._sid_counters[counter_key] = counter
        counter.inc()

    def _record_fault_drop_metric(self, sid: int) -> None:
        """Per-SID fault-drop counter (metrics layer on)."""
        counter_key = ("fault.drop", sid)
        counter = self._sid_counters.get(counter_key)
        if counter is None:
            counter = self.sim._metrics.counter(
                "fault.drop", cause="translation_fault", sid=sid, **self._extra
            )
            self._sid_counters[counter_key] = counter
        counter.inc()

    # ------------------------------------------------------------------
    def sample_telemetry(self, now: float, packet) -> None:
        """One accepted-packet telemetry sample (device-local structures,
        run-global request/drop counts)."""
        device = self.device
        supplied = (
            device.prefetch_unit.stats.supplied_translations
            if device.prefetch_unit is not None
            else 0
        )
        self.sim.telemetry.on_packet(
            now_ns=now,
            size_bytes=packet.size_bytes,
            devtlb_stats=device.devtlb.stats,
            supplied=supplied,
            requests=self.sim.latency_stats.count,
            drops=self.sim.packet_stats.dropped,
            ptb_occupancy=device.ptb.occupancy(now),
        )

    # ------------------------------------------------------------------
    def invalidate_pages(self, sid: int, pages) -> None:
        """Flush unmapped pages from every translation structure.

        Driven by a trace's invalidation events (driver unmap before
        advancing to the next data page).  The nested TLB and PTE cache
        keep their entries — those cache page-table structure that survives
        a leaf remap — while the final-translation caches must drop theirs.
        """
        device = self.device
        chipset = self.chipset
        for page in pages:
            self.sim.invalidation_messages += 1
            self.invalidation_messages += 1
            key = (sid, page)
            device.devtlb.invalidate(key)
            chipset.iommu.iotlb.invalidate(key)
            if device.prefetch_unit is not None:
                device.prefetch_unit.buffer.invalidate(key)
            self._inflight_prefetches.discard(key)
            walker = self.sim.trace.system.walker_for(sid)
            walker.invalidate(page << 12)

    # ------------------------------------------------------------------
    # Prefetching
    # ------------------------------------------------------------------
    def maybe_prefetch(self, now: float, sid: int) -> None:
        """Observe the SID stream; issue a prefetch for the predicted SID."""
        pu = self.device.prefetch_unit
        history = self.chipset.iova_history
        predicted = pu.observe_and_predict(sid)
        if predicted is None or predicted == self._last_predicted_sid:
            return
        self._last_predicted_sid = predicted
        tracer = self.sim._tracer if self._trace_packet else None
        if tracer is not None:
            tracer.emit(
                ev.PREFETCH_PREDICT, now, sid, predicted_sid=predicted,
                **self._extra,
            )
        pages = history.most_recent(predicted)[: self.config.prefetch.pages_per_tenant]
        if not pages:
            return
        timing = self.timing
        # The chipset-side IOVA history reader: PCIe out, one memory read of
        # the history record, then concurrent IOMMU translations of the
        # predicted pages, PCIe back.
        base_latency = self.chipset.memory.read("history")
        issued = 0
        for page in pages:
            if pu.buffer.contains((predicted, page)):
                continue
            if (predicted, page) in self._inflight_prefetches:
                continue
            outcome = self.chipset.iommu.translate(predicted, page << 12)
            install_time = (
                now + 2 * timing.pcie_one_way_ns + base_latency + outcome.latency_ns
            )
            heapq.heappush(
                self._pending_installs,
                (
                    install_time,
                    next(self._install_seq),
                    predicted,
                    page,
                    outcome.hpa,
                    outcome.page_shift,
                ),
            )
            self._inflight_prefetches.add((predicted, page))
            issued += 1
            if tracer is not None:
                tracer.emit(
                    ev.PREFETCH_ISSUE, now, predicted,
                    page=page, install_at_ns=install_time, **self._extra,
                )
        if issued:
            pu.note_prefetch_issued(issued)

    def apply_install(
        self, install_time: float, sid: int, page: int, hpa: int, page_shift: int
    ) -> None:
        """Apply one completed prefetch at the device.

        The translation enters the Prefetch Buffer and the (partitioned)
        DevTLB, the latter with prefetch-aware insertion priority and a pin
        so demand-miss bursts cannot evict it before the predicted tenant's
        turn (DESIGN.md calls this install decision out for ablation).

        An install whose ``(sid, page)`` is no longer in flight was
        invalidated while crossing the fabric (per-page unmap,
        tenant-wide flush, or device reset) and is skipped — installing
        it would resurrect a stale translation.  The membership check is
        the only purge mechanism that treats the analytic engine's heap
        and the event engine's scheduled installs identically.
        """
        if (sid, page) not in self._inflight_prefetches:
            return
        self.device.prefetch_unit.install(sid, page, hpa, page_shift)
        self.device.devtlb.insert(
            (sid, page), (hpa, page_shift, True), priority=1, pinned=True
        )
        self._inflight_prefetches.discard((sid, page))
        if self._trace_packet:
            self.sim._tracer.emit(
                ev.PREFETCH_INSTALL, install_time, sid, page=page, **self._extra
            )

    def drain_installs(self, now: float) -> None:
        """Install prefetches whose completion is due by ``now``."""
        pending = self._pending_installs
        if self.device.prefetch_unit is None or not pending:
            return
        while pending and pending[0][0] <= now:
            install_time, _seq, sid, page, hpa, page_shift = heapq.heappop(pending)
            self.apply_install(install_time, sid, page, hpa, page_shift)

    def pop_pending_installs(self):
        """Drain the pending-install heap in (time, issue) order.

        The event engine lifts these into ``PREFETCH_INSTALL`` events right
        after issuing them, so the heap never carries entries across
        packets there.
        """
        pending = self._pending_installs
        items = []
        while pending:
            items.append(heapq.heappop(pending))
        return items
