"""Windowed time-series telemetry for simulation runs.

A :class:`Telemetry` object attached to a simulator samples the run in
fixed-size packet windows: achieved bandwidth, drop rate, DevTLB hit
rate, PTB occupancy, and prefetch coverage per window.  This is how the
cold-start transient, the prefetcher's lock-in, and the bistable dynamics
discussed in docs/MODEL.md can actually be *seen*::

    telemetry = Telemetry(window_packets=256)
    result = HyperSimulator(config, trace, telemetry=telemetry).run()
    for window in telemetry.windows:
        print(window.describe())

The simulator calls :meth:`on_packet` once per accepted packet; the
overhead is a handful of integer updates, so telemetry is cheap enough to
leave on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.base import CacheStats


@dataclass(frozen=True)
class WindowSample:
    """Aggregates for one window of accepted packets."""

    index: int
    start_ns: float
    end_ns: float
    packets: int
    bytes: int
    drops: int
    devtlb_hits: int
    devtlb_accesses: int
    prefetch_supplied: int
    requests: int
    mean_ptb_occupancy: float

    @property
    def bandwidth_gbps(self) -> float:
        duration = self.end_ns - self.start_ns
        return self.bytes * 8 / duration if duration > 0 else 0.0

    @property
    def devtlb_hit_rate(self) -> float:
        return (
            self.devtlb_hits / self.devtlb_accesses
            if self.devtlb_accesses
            else 0.0
        )

    @property
    def supplied_fraction(self) -> float:
        return self.prefetch_supplied / self.requests if self.requests else 0.0

    def describe(self) -> str:
        return (
            f"window {self.index:3d}: {self.bandwidth_gbps:6.1f} Gb/s, "
            f"devtlb {self.devtlb_hit_rate * 100:5.1f}%, "
            f"supplied {self.supplied_fraction * 100:5.1f}%, "
            f"drops {self.drops}, ptb {self.mean_ptb_occupancy:.1f}"
        )


class Telemetry:
    """Collects :class:`WindowSample` objects during a run."""

    def __init__(self, window_packets: int = 256):
        if window_packets < 1:
            raise ValueError("window_packets must be >= 1")
        self.window_packets = window_packets
        self.windows: List[WindowSample] = []
        self._reset_window(start_ns=0.0, index=0)
        # Baselines for differencing cumulative counters.
        self._devtlb_hits0 = 0
        self._devtlb_accesses0 = 0
        self._supplied0 = 0
        self._requests0 = 0
        self._drops0 = 0
        # Latest cumulative values seen, so finish() can close a partial
        # window without another simulator callback.
        self._last_now_ns = 0.0
        self._last_devtlb_hits = 0
        self._last_devtlb_accesses = 0
        self._last_supplied = 0
        self._last_requests = 0
        self._last_drops = 0

    def _reset_window(self, start_ns: float, index: int) -> None:
        self._index = index
        self._start_ns = start_ns
        self._packets = 0
        self._bytes = 0
        self._occupancy_sum = 0.0

    # ------------------------------------------------------------------
    def on_packet(
        self,
        now_ns: float,
        size_bytes: int,
        devtlb_stats: CacheStats,
        supplied: int,
        requests: int,
        drops: int,
        ptb_occupancy: int,
    ) -> None:
        """Record one accepted packet; close the window when full."""
        self._packets += 1
        self._bytes += size_bytes
        self._occupancy_sum += ptb_occupancy
        self._last_now_ns = now_ns
        self._last_devtlb_hits = devtlb_stats.hits
        self._last_devtlb_accesses = devtlb_stats.accesses
        self._last_supplied = supplied
        self._last_requests = requests
        self._last_drops = drops
        if self._packets < self.window_packets:
            return
        self._close_window(
            end_ns=now_ns,
            devtlb_hits=devtlb_stats.hits,
            devtlb_accesses=devtlb_stats.accesses,
            supplied=supplied,
            requests=requests,
            drops=drops,
        )

    def _close_window(
        self,
        end_ns: float,
        devtlb_hits: int,
        devtlb_accesses: int,
        supplied: int,
        requests: int,
        drops: int,
    ) -> None:
        self.windows.append(
            WindowSample(
                index=self._index,
                start_ns=self._start_ns,
                end_ns=end_ns,
                packets=self._packets,
                bytes=self._bytes,
                drops=drops - self._drops0,
                devtlb_hits=devtlb_hits - self._devtlb_hits0,
                devtlb_accesses=devtlb_accesses - self._devtlb_accesses0,
                prefetch_supplied=supplied - self._supplied0,
                requests=requests - self._requests0,
                mean_ptb_occupancy=self._occupancy_sum / self._packets,
            )
        )
        self._devtlb_hits0 = devtlb_hits
        self._devtlb_accesses0 = devtlb_accesses
        self._supplied0 = supplied
        self._requests0 = requests
        self._drops0 = drops
        self._reset_window(start_ns=end_ns, index=self._index + 1)

    def finish(self, now_ns: Optional[float] = None) -> None:
        """Flush the trailing partial window, if any.

        Called by :meth:`HyperSimulator.run` at the end of a run so tail
        packets are not silently excluded from :attr:`windows` (and hence
        from :meth:`steady_state_window`).  A run whose length divides
        evenly into windows — or an empty run — flushes nothing.  Safe to
        call more than once.
        """
        if self._packets == 0:
            return
        end_ns = now_ns if now_ns is not None else self._last_now_ns
        self._close_window(
            end_ns=max(end_ns, self._last_now_ns, self._start_ns),
            devtlb_hits=self._last_devtlb_hits,
            devtlb_accesses=self._last_devtlb_accesses,
            supplied=self._last_supplied,
            requests=self._last_requests,
            drops=self._last_drops,
        )

    # ------------------------------------------------------------------
    def series(self, attribute: str) -> List[float]:
        """Extract one per-window series (e.g. ``"bandwidth_gbps"``)."""
        return [getattr(window, attribute) for window in self.windows]

    def steady_state_window(self) -> Optional[WindowSample]:
        """The last *full* window (a steady-state sample), if any.

        A trailing partial window flushed by :meth:`finish` is not a fair
        steady-state sample (it covers fewer packets), so it is skipped
        unless no full window exists at all.
        """
        if not self.windows:
            return None
        for window in reversed(self.windows):
            if window.packets >= self.window_packets:
                return window
        return self.windows[-1]
