"""HyperSIO's trace-driven device-system performance model.

Reimplements the paper's C++ performance model (Section IV-C): packets
arrive at intervals set by the link bandwidth and packet size; each accepted
packet generates three translation requests (ring pointer, data buffer,
mailbox); a packet is dropped — and retried at the next arrival slot — when
the Pending Translation Buffer has no free entry.  Requests that hit in the
DevTLB or Prefetch Buffer complete at device speed; misses cross PCIe to the
IOMMU, which may perform a two-dimensional page-table walk, and cross PCIe
back.  At the end of a run, achieved bandwidth is total bytes processed
divided by the time taken to translate everything.

Timing is analytic rather than event-queued: each request's latency is
fully determined at issue, so PTB occupancy and bounded IOMMU walker pools
are tracked as min-heaps of completion times (exact for this model).  Two
documented approximations, both also present in trace-driven models of this
kind: cache state is updated in trace order (a request that arrives while a
fill for the same page is still in flight counts as a hit — zero-cost
hit-under-miss), and a prefetch updates chipset cache state when issued
while its device-side installs are delayed by the full prefetch latency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.config import ArchConfig
from repro.core.hypertrio import (
    TranslationPath,
    attach_observability,
    build_translation_path,
)
from repro.core.results import RequestLatencyStats, SimulationResult
from repro.device.packet import PacketStats
from repro.obs import events as ev
from repro.sim.oracle import FutureOracle, oracle_for_trace
from repro.sim.resources import ResourcePool, UnboundedPool
from repro.trace.constructor import HyperTrace


class HyperSimulator:
    """Run one :class:`~repro.trace.constructor.HyperTrace` through a config.

    Parameters
    ----------
    config:
        Architecture to model (see :func:`repro.core.config.base_config` and
        :func:`repro.core.config.hypertrio_config`).
    trace:
        The hyper-trace plus the tenant system behind it.
    native:
        Model a non-virtualised host interface: no address translation at
        all (used by the Figure 5 case study's "host" series).
    observability:
        Optional :class:`~repro.obs.Observability` bundle.  Its
        ``enabled`` flag is checked **once here**: when disabled (or
        ``None``) the per-request hot path contains no tracing or metrics
        calls at all, so the overhead is a handful of attribute loads
        (guarded by ``benchmarks/bench_obs_overhead.py``).
    """

    def __init__(
        self,
        config: ArchConfig,
        trace: HyperTrace,
        native: bool = False,
        telemetry=None,
        observability=None,
    ):
        self.config = config
        self.trace = trace
        self.native = native
        self.telemetry = telemetry
        self.observability = observability
        # Null-object fast path: resolve the three observability layers to
        # attribute-level Nones exactly once, at attach time.
        obs_on = observability is not None and observability.enabled
        tracer = observability.tracer if obs_on else None
        self._tracer = tracer if (tracer is not None and tracer.enabled) else None
        self._metrics = observability.metrics if obs_on else None
        self._trace_packet = False
        if self._metrics is not None:
            # Local instrument caches so the hot path skips the registry's
            # (name, labels) key construction per event.
            self._sid_latency: Dict[int, object] = {}
            self._sid_counters: Dict[Tuple[str, int], object] = {}
        self._oracle: Optional[FutureOracle] = None
        next_use = None
        if config.devtlb.policy.lower() == "oracle":
            self._oracle = oracle_for_trace(trace.packets)
            next_use = self._oracle.next_use
        self.path: TranslationPath = build_translation_path(
            config,
            walker_for_sid=trace.system.walker_for,
            sids=trace.system.sids(),
            devtlb_next_use=next_use,
        )
        if obs_on:
            attach_observability(self.path, observability)
        if config.iommu_walkers is None:
            self._walker_pool = UnboundedPool()
        else:
            self._walker_pool = ResourcePool(config.iommu_walkers)
        self.packet_stats = PacketStats()
        self.latency_stats = RequestLatencyStats()
        # Prefetch plumbing: installs pending their arrival back at the
        # device, keyed min-heap by install time.
        self._pending_installs: List[Tuple[float, int, int, int, int]] = []
        self._inflight_prefetches: set = set()
        self._last_predicted_sid: Optional[int] = None
        #: ATS-style invalidation messages sent to the device (driver
        #: unmap events in the trace).
        self.invalidation_messages = 0

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self, max_packets: Optional[int] = None, warmup_packets: int = 0
    ) -> SimulationResult:
        """Simulate the trace and return the measured result.

        ``warmup_packets`` excludes the cold-start transient from the
        bandwidth measurement (caches and predictors keep their state; only
        the byte/time accounting restarts), mirroring the paper's
        steady-state methodology (workloads run 60-360 s and traces stop
        before any tenant drains).
        """
        timing = self.config.timing
        interarrival = timing.packet_interarrival_ns
        ptb = self.path.ptb
        packets = self.trace.packets
        if max_packets is not None:
            packets = packets[:max_packets]
        if warmup_packets >= len(packets):
            raise ValueError(
                f"warmup ({warmup_packets}) must be shorter than the trace "
                f"({len(packets)} packets)"
            )

        bits_per_ns = timing.link_bandwidth_gbps  # Gb/s == bits/ns
        clock = 0.0
        last_completion = 0.0
        measure_from_ns = 0.0
        measure_from_bytes = 0
        processed = 0
        tracer = self._tracer
        for packet in packets:
            # Per-packet wire time: small packets (e.g. key-value traffic)
            # arrive faster than full frames.
            if packet.size_bytes == timing.packet_bytes:
                wire_ns = interarrival
            else:
                wire_ns = packet.size_bytes * 8 / bits_per_ns
            arrival = clock + wire_ns
            self.packet_stats.arrived += 1
            if tracer is not None:
                self._trace_packet = tracer.sample_packet()
            if self.native:
                # No translation: the packet is processed at line rate.
                self.packet_stats.accepted += 1
                self.packet_stats.record_processed(packet)
                clock = arrival
                last_completion = max(last_completion, arrival)
                processed += 1
                if warmup_packets and processed == warmup_packets:
                    measure_from_ns = arrival
                    measure_from_bytes = self.packet_stats.bytes_processed
                continue

            arrival = self._admit(arrival, wire_ns, ptb, packet.sid)
            self.packet_stats.accepted += 1
            if self._trace_packet:
                tracer.emit(
                    ev.PACKET_ADMIT,
                    arrival,
                    packet.sid,
                    size_bytes=packet.size_bytes,
                )
            if packet.invalidations:
                self._invalidate_pages(packet.sid, packet.invalidations)
            self._drain_prefetch_installs(arrival)
            if self.path.prefetch_unit is not None:
                self._maybe_prefetch(arrival, packet.sid)
            completion = arrival
            for giova in packet.giovas:
                finished = self._process_request(arrival, packet.sid, giova)
                completion = max(completion, finished)
            self.packet_stats.record_processed(packet)
            last_completion = max(last_completion, completion)
            clock = arrival
            processed += 1
            if self.telemetry is not None:
                self._sample_telemetry(arrival, packet)
            if warmup_packets and processed == warmup_packets:
                measure_from_ns = max(last_completion, clock)
                measure_from_bytes = self.packet_stats.bytes_processed

        # Apply prefetches still in flight when the trace ends, so final
        # cache-state accounting matches the event-driven engine.
        self._drain_prefetch_installs(float("inf"))
        elapsed = max(last_completion, clock)
        if self.telemetry is not None:
            # Flush the trailing partial window so tail packets are not
            # silently excluded from the windowed series.
            self.telemetry.finish(elapsed)
        return self._build_result(
            elapsed,
            measure_from_ns=measure_from_ns,
            measure_from_bytes=measure_from_bytes,
        )

    # ------------------------------------------------------------------
    def _admit(self, arrival: float, interarrival: float, ptb, sid: int = -1) -> float:
        """Drop-and-retry until a PTB entry is free at an arrival slot.

        Dropped packets are retried at the next slot (Section IV-C), so the
        trace is eventually fully consumed; lost slots surface as stretched
        elapsed time, i.e. reduced average bandwidth.
        """
        while not ptb.can_accept(arrival):
            ptb.reject_packet()
            self.packet_stats.dropped += 1
            self.packet_stats.retried += 1
            if self._trace_packet:
                self._tracer.emit(
                    ev.PACKET_DROP,
                    arrival,
                    sid,
                    occupancy=ptb.occupancy(arrival),
                )
            free_at = ptb.earliest_free_time(arrival)
            slots = max(1, math.ceil((free_at - arrival) / interarrival))
            arrival += slots * interarrival
        return arrival

    # ------------------------------------------------------------------
    def _process_request(self, now: float, sid: int, giova: int) -> float:
        """Translate one gIOVA; returns its completion time."""
        timing = self.config.timing
        path = self.path
        page = giova >> 12
        key = (sid, page)
        tracer = self._tracer if self._trace_packet else None

        if self._oracle is not None:
            self._oracle.consume(key)
        if path.iova_history is not None:
            path.iova_history.record(sid, page)

        latency = timing.iotlb_hit_ns  # DevTLB lookup itself
        cached = path.devtlb.lookup(key)
        hit = cached is not None
        if tracer is not None:
            tracer.emit(ev.DEVTLB_HIT if hit else ev.DEVTLB_MISS, now, sid, page=page)
        if hit and cached[2]:
            # First demand hit on a prefetched entry: credit the prefetcher
            # and clear the provenance flag.
            path.prefetch_unit.stats.supplied_translations += 1
            path.devtlb.insert(key, (cached[0], cached[1], False))
            if tracer is not None:
                tracer.emit(ev.PREFETCH_SUPPLY, now, sid, page=page, via="devtlb")
        if not hit and path.prefetch_unit is not None:
            if path.prefetch_unit.lookup(sid, page) is not None:
                hit = True
                path.prefetch_unit.stats.supplied_translations += 1
                if tracer is not None:
                    tracer.emit(ev.PB_HIT, now, sid, page=page)
                    tracer.emit(
                        ev.PREFETCH_SUPPLY, now, sid, page=page, via="prefetch_buffer"
                    )
        if not hit:
            # Miss: cross PCIe, translate at the chipset, cross back.
            outcome = path.iommu.translate(sid, giova)
            at_chipset = now + timing.pcie_one_way_ns
            start, served = self._walker_pool.acquire(
                at_chipset, outcome.latency_ns
            )
            chipset_time = served - at_chipset
            latency += 2 * timing.pcie_one_way_ns + chipset_time
            path.devtlb.insert(key, (outcome.hpa, outcome.page_shift, False))
            if tracer is not None:
                self._emit_chipset_events(
                    tracer, sid, page, at_chipset, start, served, outcome
                )
        completion = path.ptb.issue(now, latency)
        self.latency_stats.record(latency)
        if tracer is not None:
            tracer.emit(
                ev.PTB_ENQUEUE, now, sid, wait_ns=max(0.0, completion - latency - now)
            )
            tracer.emit(ev.PTB_RELEASE, completion, sid)
            tracer.emit(
                ev.REQUEST_TRANSLATE,
                now,
                sid,
                dur_ns=completion - now,
                page=page,
                hit=hit,
            )
        if self._metrics is not None:
            self._record_request_metrics(sid, latency, hit)
        return completion

    # ------------------------------------------------------------------
    def _emit_chipset_events(
        self, tracer, sid: int, page: int, at_chipset: float, start: float,
        served: float, outcome,
    ) -> None:
        """Trace the chipset side of one DevTLB miss (IOTLB, walker pool)."""
        if outcome.iotlb_hit:
            tracer.emit(ev.IOTLB_HIT, at_chipset, sid, page=page)
            return
        tracer.emit(ev.IOTLB_MISS, at_chipset, sid, page=page)
        tracer.emit(
            ev.WALKER_ACQUIRE, at_chipset, sid, queue_delay_ns=start - at_chipset
        )
        tracer.emit(
            ev.WALKER_WALK,
            start,
            sid,
            dur_ns=served - start,
            memory_accesses=outcome.memory_accesses,
            nested_hits=outcome.nested_hits,
            nested_misses=outcome.nested_misses,
        )
        tracer.emit(ev.WALKER_RELEASE, served, sid)

    def _record_request_metrics(self, sid: int, latency: float, hit: bool) -> None:
        """Per-SID metric updates for one translation (metrics layer on)."""
        histogram = self._sid_latency.get(sid)
        if histogram is None:
            histogram = self._metrics.histogram("translation_latency_ns", sid=sid)
            self._sid_latency[sid] = histogram
        histogram.record(latency)
        counter_key = ("devtlb.hit" if hit else "devtlb.miss", sid)
        counter = self._sid_counters.get(counter_key)
        if counter is None:
            counter = self._metrics.counter(
                counter_key[0], structure="devtlb", sid=sid
            )
            self._sid_counters[counter_key] = counter
        counter.inc()

    # ------------------------------------------------------------------
    def _sample_telemetry(self, now: float, packet) -> None:
        path = self.path
        supplied = (
            path.prefetch_unit.stats.supplied_translations
            if path.prefetch_unit is not None
            else 0
        )
        self.telemetry.on_packet(
            now_ns=now,
            size_bytes=packet.size_bytes,
            devtlb_stats=path.devtlb.stats,
            supplied=supplied,
            requests=self.latency_stats.count,
            drops=self.packet_stats.dropped,
            ptb_occupancy=path.ptb.occupancy(now),
        )

    # ------------------------------------------------------------------
    def _invalidate_pages(self, sid: int, pages) -> None:
        """Flush unmapped pages from every translation structure.

        Driven by a trace's invalidation events (driver unmap before
        advancing to the next data page).  The nested TLB and PTE cache
        keep their entries — those cache page-table structure that survives
        a leaf remap — while the final-translation caches must drop theirs.
        """
        path = self.path
        for page in pages:
            self.invalidation_messages += 1
            key = (sid, page)
            path.devtlb.invalidate(key)
            path.iommu.iotlb.invalidate(key)
            if path.prefetch_unit is not None:
                path.prefetch_unit.buffer.invalidate(key)
            self._inflight_prefetches.discard(key)
            walker = self.trace.system.walker_for(sid)
            walker.invalidate(page << 12)

    # ------------------------------------------------------------------
    # Prefetching
    # ------------------------------------------------------------------
    def _maybe_prefetch(self, now: float, sid: int) -> None:
        """Observe the SID stream; issue a prefetch for the predicted SID."""
        pu = self.path.prefetch_unit
        history = self.path.iova_history
        predicted = pu.observe_and_predict(sid)
        if predicted is None or predicted == self._last_predicted_sid:
            return
        self._last_predicted_sid = predicted
        tracer = self._tracer if self._trace_packet else None
        if tracer is not None:
            tracer.emit(ev.PREFETCH_PREDICT, now, sid, predicted_sid=predicted)
        pages = history.most_recent(predicted)[: self.config.prefetch.pages_per_tenant]
        if not pages:
            return
        timing = self.config.timing
        # The chipset-side IOVA history reader: PCIe out, one memory read of
        # the history record, then concurrent IOMMU translations of the
        # predicted pages, PCIe back.
        base_latency = self.path.memory.read("history")
        issued = 0
        for page in pages:
            if pu.buffer.contains((predicted, page)):
                continue
            if (predicted, page) in self._inflight_prefetches:
                continue
            outcome = self.path.iommu.translate(predicted, page << 12)
            install_time = (
                now + 2 * timing.pcie_one_way_ns + base_latency + outcome.latency_ns
            )
            self._pending_installs.append(
                (install_time, predicted, page, outcome.hpa, outcome.page_shift)
            )
            self._inflight_prefetches.add((predicted, page))
            issued += 1
            if tracer is not None:
                tracer.emit(
                    ev.PREFETCH_ISSUE, now, predicted,
                    page=page, install_at_ns=install_time,
                )
        if issued:
            self._pending_installs.sort(key=lambda item: item[0])
            pu.note_prefetch_issued(issued)

    def _apply_install(
        self, install_time: float, sid: int, page: int, hpa: int, page_shift: int
    ) -> None:
        """Apply one completed prefetch at the device.

        The translation enters the Prefetch Buffer and the (partitioned)
        DevTLB, the latter with prefetch-aware insertion priority and a pin
        so demand-miss bursts cannot evict it before the predicted tenant's
        turn (DESIGN.md calls this install decision out for ablation).
        """
        self.path.prefetch_unit.install(sid, page, hpa, page_shift)
        self.path.devtlb.insert(
            (sid, page), (hpa, page_shift, True), priority=1, pinned=True
        )
        self._inflight_prefetches.discard((sid, page))
        if self._trace_packet:
            self._tracer.emit(ev.PREFETCH_INSTALL, install_time, sid, page=page)

    def _drain_prefetch_installs(self, now: float) -> None:
        """Install completed prefetches into the PB and the DevTLB."""
        pu = self.path.prefetch_unit
        if pu is None or not self._pending_installs:
            return
        pending = self._pending_installs
        index = 0
        while index < len(pending) and pending[index][0] <= now:
            install_time, sid, page, hpa, page_shift = pending[index]
            self._apply_install(install_time, sid, page, hpa, page_shift)
            index += 1
        if index:
            del pending[:index]

    # ------------------------------------------------------------------
    def _build_result(
        self,
        elapsed_ns: float,
        measure_from_ns: float = 0.0,
        measure_from_bytes: int = 0,
    ) -> SimulationResult:
        timing = self.config.timing
        measured_bits = (self.packet_stats.bytes_processed - measure_from_bytes) * 8
        window_ns = elapsed_ns - measure_from_ns
        achieved = measured_bits / window_ns if window_ns > 0 else 0.0
        path = self.path
        cache_stats = {
            "devtlb": path.devtlb.stats,
            "iotlb": path.iommu.iotlb.stats,
            "nested_tlb": path.iommu.nested_tlb.stats,
            "pte_cache": path.iommu.pte_cache.stats,
            "context": path.context_cache.stats,
        }
        pb_hit_rate = 0.0
        prefetch_requests = 0
        prefetch_supplied = 0
        if path.prefetch_unit is not None:
            cache_stats["prefetch_buffer"] = path.prefetch_unit.buffer.stats
            pb_hit_rate = path.prefetch_unit.stats.buffer_hit_rate
            prefetch_requests = path.prefetch_unit.stats.prefetch_requests
            prefetch_supplied = path.prefetch_unit.stats.supplied_translations
        benchmark = self._benchmark_name()
        percentiles = {}
        if self.latency_stats.count:
            percentiles = {
                "p50_ns": self.latency_stats.percentile(50),
                "p95_ns": self.latency_stats.percentile(95),
                "p99_ns": self.latency_stats.percentile(99),
            }
        return SimulationResult(
            config_name=self.config.name,
            benchmark=benchmark,
            num_tenants=self.trace.num_tenants,
            interleaving=str(self.trace.interleaving),
            link_bandwidth_gbps=timing.link_bandwidth_gbps,
            elapsed_ns=elapsed_ns,
            achieved_bandwidth_gbps=achieved,
            packets=self.packet_stats,
            latency=self.latency_stats,
            ptb=path.ptb.stats,
            dram=path.memory.stats,
            cache_stats=cache_stats,
            prefetch_buffer_hit_rate=pb_hit_rate,
            prefetch_requests=prefetch_requests,
            prefetch_supplied=prefetch_supplied,
            invalidation_messages=self.invalidation_messages,
            percentiles=percentiles,
        )

    def _benchmark_name(self) -> str:
        workloads = self.trace.system.workloads
        if not workloads:
            return "empty"
        first = next(iter(workloads.values()))
        return first.spec.profile.name


def simulate(
    config: ArchConfig, trace: HyperTrace, native: bool = False,
    max_packets: Optional[int] = None,
) -> SimulationResult:
    """One-call convenience: build a simulator and run it."""
    return HyperSimulator(config, trace, native=native).run(max_packets=max_packets)
