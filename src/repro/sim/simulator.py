"""HyperSIO's trace-driven device-system performance model.

Reimplements the paper's C++ performance model (Section IV-C): packets
arrive at intervals set by the link bandwidth and packet size; each accepted
packet generates three translation requests (ring pointer, data buffer,
mailbox); a packet is dropped — and retried at the next arrival slot — when
the Pending Translation Buffer has no free entry.  Requests that hit in the
DevTLB or Prefetch Buffer complete at device speed; misses cross PCIe to the
IOMMU, which may perform a two-dimensional page-table walk, and cross PCIe
back.  At the end of a run, achieved bandwidth is total bytes processed
divided by the time taken to translate everything.

The hardware is a :class:`~repro.core.fabric.Fabric`: ``devices.count``
device paths (DevTLB + PTB + Prefetch Unit each, driven by a
:class:`~repro.sim.engine.DeviceEngine`) behind one shared chipset (IOMMU
caches, walker pool, DRAM).  Each device's link is independent — packets
routed to it by SID arrive back-to-back at the configured rate — while
every DevTLB miss contends for the shared chipset.  With one device (the
default) the model is exactly the paper's Figure 6 single device+chipset
pair.

Timing is analytic rather than event-queued: each request's latency is
fully determined at issue, so PTB occupancy and bounded IOMMU walker pools
are tracked as min-heaps of completion times (exact for this model).  The
run loop merges the per-device packet cursors in global ``(time,
device_id)`` order, which makes shared-chipset accesses happen in the same
order as the event-driven twin (:mod:`repro.sim.des`).  Two documented
approximations, both also present in trace-driven models of this kind:
cache state is updated in trace order (a request that arrives while a fill
for the same page is still in flight counts as a hit — zero-cost
hit-under-miss), and a prefetch updates chipset cache state when issued
while its device-side installs are delayed by the full prefetch latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cache.base import CacheStats
from repro.core.config import ArchConfig
from repro.core.fabric import Fabric, build_fabric
from repro.core.hypertrio import TranslationPath, attach_observability
from repro.core.ptb import PtbStats
from repro.core.results import (
    DeviceResult,
    FabricStats,
    RequestLatencyStats,
    SimulationResult,
)
from repro.device.packet import PacketStats
from repro.faults.injector import FaultInjector
from repro.obs import events as ev
from repro.sim.engine import DeviceEngine, PacketRouter
from repro.sim.oracle import FutureOracle, oracle_for_trace
from repro.trace.constructor import HyperTrace


class HyperSimulator:
    """Run one :class:`~repro.trace.constructor.HyperTrace` through a config.

    Parameters
    ----------
    config:
        Architecture to model (see :func:`repro.core.config.base_config` and
        :func:`repro.core.config.hypertrio_config`), including the
        ``devices`` fabric dimension.
    trace:
        The hyper-trace plus the tenant system behind it.
    native:
        Model a non-virtualised host interface: no address translation at
        all (used by the Figure 5 case study's "host" series).
    observability:
        Optional :class:`~repro.obs.Observability` bundle.  Its
        ``enabled`` flag is checked **once here**: when disabled (or
        ``None``) the per-request hot path contains no tracing or metrics
        calls at all, so the overhead is a handful of attribute loads
        (guarded by ``benchmarks/bench_obs_overhead.py``).
    """

    def __init__(
        self,
        config: ArchConfig,
        trace: HyperTrace,
        native: bool = False,
        telemetry=None,
        observability=None,
        fault_plan=None,
    ):
        self.config = config
        self.trace = trace
        self.native = native
        self.telemetry = telemetry
        self.observability = observability
        self.fault_plan = fault_plan
        # Null-object fast path: resolve the three observability layers to
        # attribute-level Nones exactly once, at attach time.
        obs_on = observability is not None and observability.enabled
        tracer = observability.tracer if obs_on else None
        self._tracer = tracer if (tracer is not None and tracer.enabled) else None
        self._metrics = observability.metrics if obs_on else None
        # ``getattr`` keeps bundles pickled before phase profiling existed
        # loadable from old checkpoints.
        self._phases = getattr(observability, "phases", None) if obs_on else None
        self._oracle: Optional[FutureOracle] = None
        next_use = None
        if config.devtlb.policy.lower() == "oracle":
            self._oracle = oracle_for_trace(trace.packets)
            next_use = self._oracle.next_use
        self.fabric: Fabric = build_fabric(
            config,
            walker_for_sid=trace.system.walker_for,
            sids=trace.system.sids(),
            devtlb_next_use=next_use,
        )
        #: Single-device view kept for API compatibility: ``path.devtlb``
        #: etc. address device 0 plus the shared chipset.
        self.path: TranslationPath = self.fabric.view(0)
        if obs_on:
            attach_observability(
                self.path if self.fabric.num_devices == 1 else self.fabric,
                observability,
            )
        # Run-global accounting (sums over all devices, recorded live).
        self.packet_stats = PacketStats()
        self.latency_stats = RequestLatencyStats()
        #: ATS-style invalidation messages sent to the devices (driver
        #: unmap events in the trace).
        self.invalidation_messages = 0
        #: Seeded fault injector, or ``None`` (the common case) so the
        #: per-packet hot path pays one attribute check, mirroring the
        #: observability null-object resolution above.
        self._injector = (
            FaultInjector(fault_plan, self.fabric.num_devices)
            if fault_plan is not None
            else None
        )
        self.engines: List[DeviceEngine] = [
            DeviceEngine(self, self.fabric, device_id)
            for device_id in range(self.fabric.num_devices)
        ]

    #: Engine kind recorded in checkpoints (the event twin overrides).
    _engine_kind = "analytic"

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(
        self,
        max_packets: Optional[int] = None,
        warmup_packets: int = 0,
        checkpoint_every: int = 0,
        checkpoint_path=None,
        checkpoint_hook=None,
    ) -> SimulationResult:
        """Simulate the trace and return the measured result.

        ``warmup_packets`` excludes the cold-start transient from the
        bandwidth measurement (caches and predictors keep their state; only
        the byte/time accounting restarts), mirroring the paper's
        steady-state methodology (workloads run 60-360 s and traces stop
        before any tenant drains).  With several devices the warmup counts
        *fabric-wide* accepted packets.

        ``checkpoint_every`` > 0 (with ``checkpoint_path``) snapshots the
        full engine state to ``checkpoint_path`` every N processed packets
        (atomic tmp+rename write); a run restored from any such snapshot
        via :func:`repro.sim.checkpoint.resume_simulation` produces a
        byte-identical :class:`SimulationResult`.  With ``checkpoint_path``
        set, a pending interrupt (see
        :func:`repro.sim.checkpoint.request_interrupt`) flushes a final
        snapshot at the next packet barrier and raises
        :class:`~repro.sim.checkpoint.SimulationInterrupted`.
        ``checkpoint_hook`` is called as ``hook(packets_done, path)`` after
        every snapshot (the runner uses it for worker heartbeats).  At the
        default ``checkpoint_every=0`` with no path the loop is untouched.
        """
        trace_packets = self.trace.packets
        total = len(trace_packets)
        if max_packets is not None:
            total = min(total, max_packets)
        if warmup_packets >= total:
            raise ValueError(
                f"warmup ({warmup_packets}) must be shorter than the trace "
                f"({total} packets)"
            )
        router = PacketRouter(trace_packets, self.fabric, limit=max_packets)
        state = _AnalyticLoop(
            warmup_packets=warmup_packets,
            active=[engine for engine in self.engines if engine.fetch_next(router)],
        )
        return self._run_loop(
            router, state, self._checkpoint_policy(
                checkpoint_every, checkpoint_path, checkpoint_hook
            ),
        )

    def _checkpoint_policy(self, every, path, hook):
        if not every and path is None:
            return None
        from repro.sim.checkpoint import CheckpointPolicy

        return CheckpointPolicy(every=every, path=path, hook=hook)

    def _run_loop(self, router, state, policy=None) -> SimulationResult:
        """Drive the merge loop from ``state`` to completion.

        Entered fresh from :meth:`run` and re-entered with restored state
        by :meth:`repro.sim.checkpoint.SimulationCheckpoint.resume` — the
        loop body itself is identical either way, which is what makes a
        resumed run bit-exact.
        """
        engines = self.engines
        active = state.active
        native = self.native
        telemetry = self.telemetry
        while active:
            # Merge the per-device cursors: the globally earliest pending
            # arrival (retries included) runs next, ties broken by device
            # id — the same order the event queue in repro.sim.des pops.
            engine = min(active, key=_engine_order)
            arrival = engine.next_time
            if not engine.current_is_retry:
                engine.begin_packet()
            if native:
                # No translation: the packet is processed at line rate.
                completion = engine.process_native(arrival)
            else:
                if not engine.try_admit(arrival):
                    continue
                completion = engine.complete_packet(arrival)
            state.last_completion = max(state.last_completion, completion)
            state.processed += 1
            if telemetry is not None and not native:
                engine.sample_telemetry(arrival, engine.current_packet)
            if state.warmup_packets and state.processed == state.warmup_packets:
                state.measure_from_ns = (
                    arrival if native else max(state.last_completion, arrival)
                )
                state.measure_from_bytes = self.packet_stats.bytes_processed
                for other in engines:
                    other.measure_from_bytes = other.packet_stats.bytes_processed
            if not engine.fetch_next(router):
                active.remove(engine)
            if policy is not None:
                self._checkpoint_barrier(policy, router, state)

        # Apply prefetches still in flight when the trace ends, so final
        # cache-state accounting matches the event-driven engine.
        for engine in engines:
            engine.drain_installs(float("inf"))
        elapsed = state.last_completion
        for engine in engines:
            elapsed = max(elapsed, engine.clock)
        if telemetry is not None:
            # Flush the trailing partial window so tail packets are not
            # silently excluded from the windowed series.
            telemetry.finish(elapsed)
        return self._build_result(
            elapsed,
            measure_from_ns=state.measure_from_ns,
            measure_from_bytes=state.measure_from_bytes,
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _checkpoint_barrier(self, policy, router, state) -> None:
        """One packet-granularity barrier: snapshot and/or interrupt.

        Runs after a packet fully dispatched (and the cursor advanced), so
        a snapshot taken here restores to exactly the next dispatch.
        Saving is pure observation — it mutates no engine state and
        consumes no randomness — so enabling checkpoints cannot change the
        simulated result.
        """
        from repro.sim import checkpoint as ckpt

        if policy.path is not None and ckpt.interrupt_requested():
            path = self._save_checkpoint(policy, router, state)
            raise ckpt.SimulationInterrupted(
                f"interrupted at packet {state.processed}; "
                f"checkpoint flushed to {path}",
                packets_done=state.processed,
                checkpoint_path=str(path),
            )
        if policy.due(state.processed):
            self._save_checkpoint(policy, router, state)

    def _save_checkpoint(self, policy, router, state):
        from repro.sim.checkpoint import SimulationCheckpoint

        snapshot = SimulationCheckpoint(
            engine=self._engine_kind,
            packets_done=state.processed,
            config=dict(self._config_dict()),
            state={"sim": self, "router": router, "loop": state},
        )
        snapshot.save(policy.path)
        if self._tracer is not None:
            self._tracer.emit(
                ev.CHECKPOINT_SAVE,
                state.last_completion,
                packets_done=state.processed,
            )
        if policy.hook is not None:
            policy.hook(state.processed, str(policy.path))
        return policy.path

    def _config_dict(self) -> Dict:
        """The serialised config recorded in checkpoint headers."""
        from repro.core.config_io import config_to_dict

        return config_to_dict(self.config)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def apply_invalidation_storm(self, storm, now: float) -> None:
        """Burst unmap of tenant ``storm.sid``: flush it fabric-wide.

        Chipset caches first (``invalidate_tenant`` also notifies the
        engines to drop the tenant's in-flight prefetch installs), then
        the IOVA history the prefetcher reads, then every device path's
        local caches.  Called from the engine dispatch path at the same
        global ``(time, device)`` point in both simulator engines.
        """
        chipset = self.fabric.chipset
        chipset.iommu.invalidate_tenant(storm.sid)
        if chipset.iova_history is not None:
            chipset.iova_history.forget(storm.sid)
        for engine in self.engines:
            engine.flush_tenant(storm.sid)
        if self._tracer is not None:
            self._tracer.emit(ev.FAULT_STORM, now, storm.sid)

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def _build_result(
        self,
        elapsed_ns: float,
        measure_from_ns: float = 0.0,
        measure_from_bytes: int = 0,
    ) -> SimulationResult:
        timing = self.config.timing
        measured_bits = (self.packet_stats.bytes_processed - measure_from_bytes) * 8
        window_ns = elapsed_ns - measure_from_ns
        achieved = measured_bits / window_ns if window_ns > 0 else 0.0
        fabric = self.fabric
        chipset = fabric.chipset
        single = fabric.num_devices == 1
        if single:
            # One device: report the live stats objects, exactly as the
            # pre-fabric model did.
            device = fabric.devices[0]
            devtlb_stats = device.devtlb.stats
            ptb_stats = device.ptb.stats
        else:
            devtlb_stats = _merged_cache_stats(
                device.devtlb.stats for device in fabric.devices
            )
            ptb_stats = _merged_ptb_stats(
                device.ptb.stats for device in fabric.devices
            )
        cache_stats = {
            "devtlb": devtlb_stats,
            "iotlb": chipset.iommu.iotlb.stats,
            "nested_tlb": chipset.iommu.nested_tlb.stats,
            "pte_cache": chipset.iommu.pte_cache.stats,
            "context": chipset.context_cache.stats,
        }
        pb_hit_rate = 0.0
        prefetch_requests = 0
        prefetch_supplied = 0
        if fabric.devices[0].prefetch_unit is not None:
            if single:
                unit = fabric.devices[0].prefetch_unit
                cache_stats["prefetch_buffer"] = unit.buffer.stats
                pb_hit_rate = unit.stats.buffer_hit_rate
                prefetch_requests = unit.stats.prefetch_requests
                prefetch_supplied = unit.stats.supplied_translations
            else:
                cache_stats["prefetch_buffer"] = _merged_cache_stats(
                    device.prefetch_unit.buffer.stats for device in fabric.devices
                )
                pb_hits = 0
                pb_misses = 0
                for device in fabric.devices:
                    stats = device.prefetch_unit.stats
                    pb_hits += stats.buffer_hits
                    pb_misses += stats.buffer_misses
                    prefetch_requests += stats.prefetch_requests
                    prefetch_supplied += stats.supplied_translations
                pb_total = pb_hits + pb_misses
                pb_hit_rate = pb_hits / pb_total if pb_total else 0.0
        benchmark = self._benchmark_name()
        percentiles = {}
        if self.latency_stats.count:
            percentiles = {
                "p50_ns": self.latency_stats.percentile(50),
                "p95_ns": self.latency_stats.percentile(95),
                "p99_ns": self.latency_stats.percentile(99),
            }
        device_results: List[DeviceResult] = []
        fabric_stats: Optional[FabricStats] = None
        if not single:
            device_results = [
                self._device_result(engine, measure_from_ns)
                for engine in self.engines
            ]
            pool = chipset.walker_pool
            fabric_stats = FabricStats(
                num_devices=fabric.num_devices,
                sid_map=self.config.devices.sid_map,
                walker_jobs=pool.jobs_served,
                walker_total_queue_delay_ns=pool.total_queue_delay_ns,
            )
        return SimulationResult(
            config_name=self.config.name,
            benchmark=benchmark,
            num_tenants=self.trace.num_tenants,
            interleaving=str(self.trace.interleaving),
            link_bandwidth_gbps=timing.link_bandwidth_gbps,
            elapsed_ns=elapsed_ns,
            achieved_bandwidth_gbps=achieved,
            packets=self.packet_stats,
            latency=self.latency_stats,
            ptb=ptb_stats,
            dram=chipset.memory.stats,
            cache_stats=cache_stats,
            prefetch_buffer_hit_rate=pb_hit_rate,
            prefetch_requests=prefetch_requests,
            prefetch_supplied=prefetch_supplied,
            invalidation_messages=self.invalidation_messages,
            percentiles=percentiles,
            device_results=device_results,
            fabric=fabric_stats,
            phase_profile=(
                self._phases.snapshot() if self._phases is not None else {}
            ),
        )

    def _device_result(
        self, engine: DeviceEngine, measure_from_ns: float
    ) -> DeviceResult:
        """Per-device breakdown for one engine (multi-device runs only)."""
        device = engine.device
        dev_elapsed = max(engine.last_completion, engine.clock)
        dev_bits = (engine.packet_stats.bytes_processed - engine.measure_from_bytes) * 8
        dev_window = dev_elapsed - measure_from_ns
        dev_achieved = dev_bits / dev_window if dev_window > 0 else 0.0
        cache_stats: Dict[str, CacheStats] = {"devtlb": device.devtlb.stats}
        if device.prefetch_unit is not None:
            cache_stats["prefetch_buffer"] = device.prefetch_unit.buffer.stats
        return DeviceResult(
            device_id=engine.device_id,
            packets=engine.packet_stats,
            latency=engine.latency_stats,
            ptb=device.ptb.stats,
            elapsed_ns=dev_elapsed,
            achieved_bandwidth_gbps=dev_achieved,
            cache_stats=cache_stats,
            iotlb_hits=engine.iotlb_hits,
            iotlb_misses=engine.iotlb_misses,
            walker_queue_delay_ns=engine.walker_queue_delay_ns,
            invalidation_messages=engine.invalidation_messages,
        )

    def _benchmark_name(self) -> str:
        workloads = self.trace.system.workloads
        if not workloads:
            return "empty"
        first = next(iter(workloads.values()))
        return first.spec.profile.name


@dataclass
class _AnalyticLoop:
    """Loop-local state of one analytic run.

    Everything the merge loop carries between iterations lives here (not
    in locals) so a checkpoint can pickle it alongside the simulator and
    resume mid-run.  ``active`` holds the engine objects themselves;
    pickling them together with the simulator preserves identity.
    """

    warmup_packets: int = 0
    active: List[DeviceEngine] = field(default_factory=list)
    last_completion: float = 0.0
    measure_from_ns: float = 0.0
    measure_from_bytes: int = 0
    processed: int = 0


def _engine_order(engine: DeviceEngine) -> Tuple[float, int]:
    """Global dispatch order of pending per-device arrivals."""
    return (engine.next_time, engine.device_id)


def _merged_cache_stats(stats_iter) -> CacheStats:
    """Sum :class:`CacheStats` across devices into a fresh object."""
    merged = CacheStats()
    for stats in stats_iter:
        merged = merged.merged_with(stats)
    return merged


def _merged_ptb_stats(stats_iter) -> PtbStats:
    """Aggregate per-device PTB stats (max of maxima, sums elsewhere)."""
    merged = PtbStats()
    for stats in stats_iter:
        merged.issued += stats.issued
        merged.rejected_packets += stats.rejected_packets
        merged.max_occupancy = max(merged.max_occupancy, stats.max_occupancy)
        merged.occupancy_accumulator += stats.occupancy_accumulator
        merged.total_wait_ns += stats.total_wait_ns
    return merged


#: Engine names accepted by :func:`simulate`'s ``engine`` argument.
SIMULATE_ENGINES = ("analytic", "evented", "vectorized")


def simulate(
    config: ArchConfig,
    trace: HyperTrace,
    native: bool = False,
    max_packets: Optional[int] = None,
    warmup_packets: int = 0,
    telemetry=None,
    observability=None,
    fault_plan=None,
    checkpoint_every: int = 0,
    checkpoint_path=None,
    checkpoint_hook=None,
    resume_from=None,
    engine: str = "analytic",
) -> SimulationResult:
    """One-call convenience: build a simulator and run it.

    ``engine`` selects the implementation: ``"analytic"`` (this
    module's merge loop), ``"evented"`` (the event-driven twin), or
    ``"vectorized"`` (the struct-of-arrays batch engine).  All three
    return byte-identical results for supported configurations; the
    vectorized engine raises
    :class:`~repro.sim.vectorized.VectorizedUnsupportedError` for fault
    plans and checkpoint/resume.

    ``resume_from`` restores a run from a checkpoint file written by an
    earlier ``checkpoint_every``/``checkpoint_path`` run and continues it
    to completion; the restored run's result is byte-identical to an
    uninterrupted one.  The checkpoint carries its own config and trace
    state, so ``config``/``trace`` are only cross-checked (a mismatching
    config raises :class:`~repro.sim.checkpoint.CheckpointError`).
    """
    if engine != "analytic":
        if engine == "evented":
            from repro.sim.des import simulate_evented as delegate
        elif engine == "vectorized":
            from repro.sim.vectorized import simulate_vectorized as delegate
        else:
            raise ValueError(
                f"unknown engine {engine!r}; choose one of "
                f"{', '.join(SIMULATE_ENGINES)}"
            )
        return delegate(
            config,
            trace,
            native=native,
            max_packets=max_packets,
            warmup_packets=warmup_packets,
            telemetry=telemetry,
            observability=observability,
            fault_plan=fault_plan,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            checkpoint_hook=checkpoint_hook,
            resume_from=resume_from,
        )
    if resume_from is not None:
        from repro.sim.checkpoint import resume_simulation

        return resume_simulation(
            resume_from,
            expect_engine="analytic",
            expect_config=config,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            checkpoint_hook=checkpoint_hook,
        )
    simulator = HyperSimulator(
        config,
        trace,
        native=native,
        telemetry=telemetry,
        observability=observability,
        fault_plan=fault_plan,
    )
    return simulator.run(
        max_packets=max_packets,
        warmup_packets=warmup_packets,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        checkpoint_hook=checkpoint_hook,
    )
