"""Future-knowledge oracle for Belady replacement (Figure 11b/11c).

Having the full translation trace lets the simulator build an oracle
replacement scheme that, on a conflict, evicts the entry whose next use lies
furthest in the future.  :class:`FutureOracle` pre-scans the DevTLB key
sequence of a trace and then answers "when is this key used next?" queries
in O(1) as the simulation advances.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.trace.records import PacketRecord


def devtlb_key_sequence(packets: Iterable[PacketRecord]) -> List[Tuple[int, int]]:
    """The per-request DevTLB key stream of a trace: ``(sid, giova_page)``."""
    keys: List[Tuple[int, int]] = []
    for packet in packets:
        sid = packet.sid
        for giova in packet.giovas:
            keys.append((sid, giova >> 12))
    return keys


class FutureOracle:
    """Answers next-use queries over a known access sequence.

    The owner must call :meth:`consume` exactly once per access, in order;
    :meth:`next_use` then reports the position of each key's next access
    *after* the current point (``None`` when it never recurs).  Positions
    are indices into the access sequence, which is all Belady needs (only
    the ordering matters).
    """

    def __init__(self, keys: Iterable[Hashable]):
        self._positions: Dict[Hashable, Deque[int]] = defaultdict(deque)
        count = 0
        for position, key in enumerate(keys):
            self._positions[key].append(position)
            count += 1
        self._length = count
        self._cursor = 0

    @property
    def length(self) -> int:
        return self._length

    @property
    def cursor(self) -> int:
        return self._cursor

    def consume(self, key: Hashable) -> None:
        """Advance past the current access, which must be to ``key``."""
        if self._cursor >= self._length:
            raise RuntimeError("oracle consumed past the end of the trace")
        queue = self._positions.get(key)
        if not queue or queue[0] != self._cursor:
            raise ValueError(
                f"access order mismatch at position {self._cursor}: "
                f"expected key {key!r} here"
            )
        queue.popleft()
        self._cursor += 1

    def next_use(self, key: Hashable) -> Optional[int]:
        """Position of the next access to ``key``, or ``None`` if never."""
        queue = self._positions.get(key)
        if not queue:
            return None
        return queue[0]


def oracle_for_trace(packets: Iterable[PacketRecord]) -> FutureOracle:
    """Build a :class:`FutureOracle` over a trace's DevTLB key stream."""
    return FutureOracle(devtlb_key_sequence(packets))
