"""Vectorized batch translation engine: the struct-of-arrays twin.

The analytic engine walks the trace one packet at a time, paying Python
call overhead for every cache probe, PTB transaction, and stat update.
This engine replays the *same model* in two batch passes over
struct-of-arrays packet data:

1. **Stage A — cache outcomes.**  All cache state (DevTLB, shared
   IOTLB/nested/PTE caches, context cache, walkers) is *timing
   independent* with prefetching off: a request's hit/miss outcome and
   walk latency are a pure function of the access order, and the
   analytic admission loop retries a rejected packet until it lands —
   every packet is eventually processed, in trace order.  Stage A
   therefore drives the real cache objects in trace order once,
   recording each request's DevTLB hit flag and chipset walk latency
   into flat numpy arrays (``numpy.bool_`` / ``numpy.float64``, one slot
   per gIOVA).

   On top of that pass sits a *block cycle detector*: periodic traces
   (the common steady state — round-robin tenants replaying per-page
   loops) drive the caches through a repeating state orbit.  The pass
   snapshots canonical cache state at tenant-block boundaries, and when
   a snapshot repeats it leaps over every following block whose input
   slice (SIDs + gIOVA pages, no invalidations) matches one period
   earlier: per-request outcomes are tiled with ``numpy.tile`` and the
   aggregate counters (cache/DRAM/walk stats) advance by ``periods x
   per-period delta``.  Cache state is untouched by construction — that
   is what the snapshot equality proved.

2. **Stage B — exact scalar timing.**  Arrival times, drop-and-retry
   admission, PTB occupancy, and latency accounting are replayed
   per packet with the exact float-operation sequence of the analytic
   engine (IEEE addition is order sensitive, so these sums cannot be
   vectorized without changing the bytes).  The PTB is folded into a
   running prefix over arrival/completion times: a single completion
   scalar for the paper's one-entry Base design, a plain ``heapq``
   mirror of :class:`~repro.core.ptb.PendingTranslationBuffer`
   otherwise; rejected arrivals are marked dropped and re-timed to the
   next free wire slot, exactly like ``DeviceEngine.try_admit``.

The result is **byte-identical** (serialized :class:`SimulationResult`)
to the analytic engine — pinned by ``tests/test_vectorized.py`` against
the golden file and a property-based cross-engine matrix.

Scope and honesty
-----------------
The batch pass runs only for the configurations it can reproduce
byte-exactly: a single device, translation on (``native=False``), no
telemetry/observability, no prefetch unit, and no IOVA history.  Any
other combination silently falls back to the inherited analytic loop
(same object model, same result) and records why in
:attr:`VectorizedSimulator.batch_stats`.  Fault plans and checkpointing
raise :class:`VectorizedUnsupportedError` instead — the CLI turns that
into a clean exit 2.

Two engine-internal aggregates are intentionally left stale by the
batch pass because no single-device :class:`SimulationResult` carries
them: the per-device ``DeviceEngine`` mirrors (``iotlb_hits``,
``walker_queue_delay_ns``, per-engine packet/latency stats) and
per-tenant ``WalkerStats`` under a cycle leap (the walker memo is
bypassed for leaped blocks).  The serialized result is unaffected.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Optional

import numpy as np

from repro.cache.policies import FifoPolicy, LfuPolicy, LruPolicy
from repro.core.config import ArchConfig
from repro.core.results import SimulationResult
from repro.obs.metrics import latency_bucket
from repro.sim.resources import UnboundedPool
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import HyperTrace

#: Cycle-detector ring depth: state periods up to this many tenant
#: blocks are found.  Steady-state traces lock at period 1; the ring
#: exists for phase-offset workloads.
MAX_PERIOD = 8

#: Replacement policies whose state the block snapshot canonicalises.
#: Anything else (oracle, random) disables cycle detection — the batch
#: pass still runs, it just never leaps.
_SNAPSHOT_POLICIES = (LruPolicy, FifoPolicy, LfuPolicy)


class VectorizedUnsupportedError(RuntimeError):
    """A feature the vectorized engine does not support was requested.

    Raised for fault plans and checkpoint/resume — combinations whose
    per-packet barriers are meaningless under batch execution.  The CLI
    reports these as a clean exit 2 rather than a traceback.
    """


class VectorizedSimulator(HyperSimulator):
    """Batch twin of :class:`HyperSimulator` behind the same interface.

    Construction is identical to the analytic simulator; :meth:`run`
    dispatches to the two-stage batch pass when the configuration is
    batch-eligible and to the inherited analytic loop otherwise, so the
    returned :class:`SimulationResult` is byte-identical either way.
    """

    #: Engine kind for checkpoint headers; vectorized runs never write
    #: checkpoints, but the kind still names the engine in errors.
    _engine_kind = "vectorized"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if self._injector is not None:
            raise VectorizedUnsupportedError(
                "fault plans are not supported by the vectorized engine; "
                "run with engine='analytic' or engine='evented'"
            )
        #: Introspection of the last :meth:`run`: ``mode`` is ``"batch"``
        #: or ``"fallback"`` (with ``reason``), and the block counters
        #: say how much of Stage A was leaped over.
        self.batch_stats = {
            "mode": None,
            "reason": None,
            "blocks_simulated": 0,
            "blocks_leaped": 0,
        }

    # ------------------------------------------------------------------
    def run(
        self,
        max_packets: Optional[int] = None,
        warmup_packets: int = 0,
        checkpoint_every: int = 0,
        checkpoint_path=None,
        checkpoint_hook=None,
    ) -> SimulationResult:
        if checkpoint_every or checkpoint_path is not None or checkpoint_hook is not None:
            raise VectorizedUnsupportedError(
                "checkpointing is not supported by the vectorized engine "
                "(batch execution has no per-packet barrier); run with "
                "engine='analytic' or engine='evented'"
            )
        reason = self._fallback_reason()
        if reason is not None:
            self.batch_stats["mode"] = "fallback"
            self.batch_stats["reason"] = reason
            return super().run(
                max_packets=max_packets, warmup_packets=warmup_packets
            )
        trace_packets = self.trace.packets
        total = len(trace_packets)
        if max_packets is not None:
            total = min(total, max_packets)
        if warmup_packets >= total:
            raise ValueError(
                f"warmup ({warmup_packets}) must be shorter than the trace "
                f"({total} packets)"
            )
        self.batch_stats["mode"] = "batch"
        self.batch_stats["reason"] = None
        return self._run_batch(trace_packets[:total], warmup_packets)

    # ------------------------------------------------------------------
    def _fallback_reason(self) -> Optional[str]:
        """Why the batch pass cannot run, or ``None`` when it can.

        Each condition names a feature whose per-packet side channel the
        batch split (cache pass / timing pass) cannot reproduce
        byte-exactly.
        """
        if self.native:
            return "native (no-translation) runs"
        if self.fabric.num_devices != 1:
            return "multi-device fabrics interleave per-device cursors"
        if self.telemetry is not None:
            return "telemetry samples per-packet state"
        if (
            self._tracer is not None
            or self._metrics is not None
            or self._phases is not None
        ):
            return "observability hooks observe per-packet state"
        if self.fabric.devices[0].prefetch_unit is not None:
            return "prefetching couples cache state to packet timing"
        if self.fabric.chipset.iova_history is not None:
            return "IOVA history records per-request accesses"
        return None

    # ------------------------------------------------------------------
    # The batch pass
    # ------------------------------------------------------------------
    def _run_batch(self, packets, warmup_packets: int) -> SimulationResult:
        n = len(packets)
        timing = self.config.timing

        # Struct-of-arrays packet columns.
        sids = np.fromiter((p.sid for p in packets), dtype=np.int64, count=n)
        sizes = np.fromiter(
            (p.size_bytes for p in packets), dtype=np.int64, count=n
        )
        counts = np.fromiter(
            (len(p.giovas) for p in packets), dtype=np.int64, count=n
        )
        total_requests = int(counts.sum())
        uniform_r = None
        if n and int(counts.min()) == int(counts.max()):
            uniform_r = int(counts[0])
        # Wire time column: full frames tick at the link's interarrival,
        # anything else serialises at line rate.  ``int64 * 8`` is exact
        # and the float division is the same IEEE op the scalar engine
        # performs, so the column is bit-identical to per-packet calls.
        wire = np.where(
            sizes == timing.packet_bytes,
            timing.packet_interarrival_ns,
            sizes * 8 / timing.link_bandwidth_gbps,
        )
        inv_flags = np.fromiter(
            (bool(p.invalidations) for p in packets), dtype=np.bool_, count=n
        )

        # Stage A: per-request cache outcomes (hit flag + walk latency).
        hit_flags = np.zeros(total_requests, dtype=np.bool_)
        walk_latency = np.zeros(total_requests, dtype=np.float64)
        self._stage_a(
            packets, n, sids, counts, inv_flags, uniform_r,
            hit_flags, walk_latency,
        )

        # Stage B: exact scalar timing over the outcome arrays.
        return self._stage_b(
            n, counts, sids, sizes, wire, hit_flags, walk_latency,
            warmup_packets,
        )

    # ------------------------------------------------------------------
    # Stage A: cache-outcome pass with block cycle detection
    # ------------------------------------------------------------------
    def _stage_a(
        self, packets, n, sids, counts, inv_flags, uniform_r,
        hit_flags, walk_latency,
    ) -> None:
        block = max(1, self.trace.num_tenants)
        detect = (
            uniform_r is not None
            and self._oracle is None
            and n >= 4 * block
            and self._snapshot_supported()
        )
        stats = self.batch_stats
        if not detect:
            self._stage_a_range(packets, 0, n, 0, hit_flags, walk_latency)
            stats["blocks_simulated"] += (n + block - 1) // block
            return

        requests = uniform_r
        nblocks = n // block
        pages = np.fromiter(
            (g >> 12 for p in packets for g in p.giovas),
            dtype=np.int64,
            count=n * requests,
        )
        sid_blocks = sids[: nblocks * block].reshape(nblocks, block)
        page_blocks = pages[: nblocks * block * requests].reshape(
            nblocks, block * requests
        )
        inv_any = inv_flags[: nblocks * block].reshape(nblocks, block).any(axis=1)

        ring = deque(maxlen=MAX_PERIOD)  # (snapshot, block index)
        deltas = deque(maxlen=MAX_PERIOD)  # per-block counter deltas
        i = 0
        cursor = 0  # flat request index at packet i
        while i < n:
            b = i // block
            if b >= nblocks:
                # Trailing partial block.
                self._stage_a_range(
                    packets, i, n, cursor, hit_flags, walk_latency
                )
                stats["blocks_simulated"] += 1
                return
            snapshot = self._state_snapshot()
            leaped = False
            for prev_snapshot, m in reversed(ring):
                if prev_snapshot != snapshot:
                    continue
                period = b - m
                # Longest run of blocks whose *input* matches one period
                # back; state repetition plus input repetition proves the
                # outcomes repeat too.  Blocks with invalidations never
                # match — their cache flushes must run for real.
                same = (
                    (sid_blocks[b:] == sid_blocks[b - period : nblocks - period])
                    .all(axis=1)
                    & (
                        page_blocks[b:]
                        == page_blocks[b - period : nblocks - period]
                    ).all(axis=1)
                    & ~inv_any[b:]
                    & ~inv_any[b - period : nblocks - period]
                )
                mismatch = np.flatnonzero(~same)
                run = int(mismatch[0]) if mismatch.size else int(same.size)
                whole = (run // period) * period
                if whole >= period:
                    span = block * requests
                    source = slice((b - period) * span, b * span)
                    reps = whole // period
                    lo = b * span
                    hi = lo + whole * span
                    hit_flags[lo:hi] = np.tile(hit_flags[source], reps)
                    walk_latency[lo:hi] = np.tile(walk_latency[source], reps)
                    period_delta = [0] * len(deltas[-1])
                    for d in list(deltas)[-period:]:
                        for k, value in enumerate(d):
                            period_delta[k] += value
                    self._apply_counter_delta(period_delta, reps)
                    stats["blocks_leaped"] += whole
                    i += whole * block
                    cursor += whole * span
                    # The boundary history predates the leap; restart it.
                    ring.clear()
                    deltas.clear()
                    leaped = True
                break
            if leaped:
                continue
            ring.append((snapshot, b))
            before = self._counter_tuple()
            cursor = self._stage_a_range(
                packets, i, i + block, cursor, hit_flags, walk_latency
            )
            after = self._counter_tuple()
            deltas.append(tuple(x - y for x, y in zip(after, before)))
            stats["blocks_simulated"] += 1
            i += block

    def _stage_a_range(
        self, packets, lo, hi, cursor, hit_flags, walk_latency
    ) -> int:
        """Drive the real cache objects for packets ``[lo, hi)``.

        The exact per-request access order of ``complete_packet`` /
        ``process_request``, minus everything timing-related.  Returns
        the advanced flat request cursor.
        """
        device = self.fabric.devices[0]
        chipset = self.fabric.chipset
        lookup = device.devtlb.lookup
        insert = device.devtlb.insert
        devtlb_invalidate = device.devtlb.invalidate
        iotlb_invalidate = chipset.iommu.iotlb.invalidate
        translate = chipset.iommu.translate
        walker_for = self.trace.system.walker_for
        oracle = self._oracle
        consume = oracle.consume if oracle is not None else None
        hit_buffer = []
        latency_buffer = []
        for index in range(lo, hi):
            packet = packets[index]
            sid = packet.sid
            if packet.invalidations:
                for page in packet.invalidations:
                    self.invalidation_messages += 1
                    key = (sid, page)
                    devtlb_invalidate(key)
                    iotlb_invalidate(key)
                    walker_for(sid).invalidate(page << 12)
            for giova in packet.giovas:
                key = (sid, giova >> 12)
                if consume is not None:
                    consume(key)
                cached = lookup(key)
                if cached is None:
                    outcome = translate(sid, giova)
                    insert(key, (outcome.hpa, outcome.page_shift, False))
                    hit_buffer.append(False)
                    latency_buffer.append(outcome.latency_ns)
                else:
                    hit_buffer.append(True)
                    latency_buffer.append(0.0)
        count = len(hit_buffer)
        hit_flags[cursor : cursor + count] = hit_buffer
        walk_latency[cursor : cursor + count] = latency_buffer
        return cursor + count

    # ------------------------------------------------------------------
    # Snapshots and counters for the cycle detector
    # ------------------------------------------------------------------
    def _snapshot_caches(self):
        chipset = self.fabric.chipset
        return (
            self.fabric.devices[0].devtlb,
            chipset.iommu.iotlb,
            chipset.iommu.nested_tlb,
            chipset.iommu.pte_cache,
            chipset.context_cache._cache,
        )

    def _snapshot_supported(self) -> bool:
        for cache in self._snapshot_caches():
            for policy in cache._policies:
                if not isinstance(policy, _SNAPSHOT_POLICIES):
                    return False
                break  # one factory per cache; checking set 0 suffices
        return True

    def _state_snapshot(self):
        """Canonical tuple of every cache's content and policy state.

        Two equal snapshots mean the model is at the same point of its
        state orbit: identical subsequent inputs produce identical
        outcomes and identical counter deltas.  The shared host frame
        allocator's bump cursor rides along — a block that backs new
        host frames can never alias a block that does not.
        """
        parts = [self.trace.system.host_allocator.frames_allocated]
        for cache in self._snapshot_caches():
            for entry_set, policy, pinned in zip(
                cache._sets, cache._policies, cache._pinned
            ):
                if type(policy) is LfuPolicy:
                    policy_state = tuple(policy._counts.items())
                else:
                    policy_state = tuple(policy._order)
                parts.append(
                    (tuple(entry_set.items()), policy_state, tuple(pinned))
                )
        return tuple(parts)

    def _counter_tuple(self):
        """Every aggregate Stage A mutates, as one flat tuple of ints."""
        values = []
        for cache in self._snapshot_caches():
            stats = cache.stats
            values.extend(
                (
                    stats.hits,
                    stats.misses,
                    stats.fills,
                    stats.evictions,
                    stats.invalidations,
                )
            )
        chipset = self.fabric.chipset
        memory = chipset.memory.stats
        values.extend(
            (
                memory.reads,
                memory.page_table_reads,
                memory.history_reads,
                chipset.iommu.walks_performed,
                self.invalidation_messages,
            )
        )
        return tuple(values)

    def _apply_counter_delta(self, delta, reps: int) -> None:
        """Advance the Stage A aggregates by ``reps`` periods at once."""
        it = iter(delta)
        for cache in self._snapshot_caches():
            stats = cache.stats
            stats.hits += next(it) * reps
            stats.misses += next(it) * reps
            stats.fills += next(it) * reps
            stats.evictions += next(it) * reps
            stats.invalidations += next(it) * reps
        chipset = self.fabric.chipset
        memory = chipset.memory.stats
        memory.reads += next(it) * reps
        memory.page_table_reads += next(it) * reps
        memory.history_reads += next(it) * reps
        chipset.iommu.walks_performed += next(it) * reps
        self.invalidation_messages += next(it) * reps

    # ------------------------------------------------------------------
    # Stage B: exact scalar timing
    # ------------------------------------------------------------------
    def _stage_b(
        self, n, counts, sids, sizes, wire, hit_flags, walk_latency,
        warmup_packets,
    ) -> SimulationResult:
        timing = self.config.timing
        device = self.fabric.devices[0]
        entries = device.ptb.effective_entries
        pool = self.fabric.chipset.walker_pool
        unbounded = isinstance(pool, UnboundedPool)

        hit_ns = timing.iotlb_hit_ns
        pcie = timing.pcie_one_way_ns
        # The same float product the scalar engine evaluates per miss.
        two_pcie = 2 * timing.pcie_one_way_ns
        ceil = math.ceil
        heappush = heapq.heappush
        heappop = heapq.heappop

        # ``tolist`` materialises exact Python floats/ints: round-tripping
        # float64 through numpy is value-preserving, so Stage B arithmetic
        # sees the very same numbers the scalar engine would.
        hits_list = hit_flags.tolist()
        walk_list = walk_latency.tolist()
        wire_list = wire.tolist()
        counts_list = counts.tolist()
        pool_heap = None if unbounded else [0.0] * pool.capacity

        rejects = 0
        wait_total = 0.0
        occupancy_accumulator = 0
        max_occupancy = 0
        latency_count = 0
        latency_total = 0.0
        latency_min = 0.0
        latency_max = 0.0
        buckets = {}
        bucket_memo = {}
        clock = 0.0
        last_completion = 0.0
        measure_from_ns = 0.0
        warmup_boundary = warmup_packets  # processed count at the boundary
        cursor = 0

        if entries == 1:
            # The paper's Base design: one in-flight translation.  The
            # whole PTB heap folds into a single running completion
            # scalar — a prefix over arrival/completion times.
            completion_last = 0.0
            for i in range(n):
                w = wire_list[i]
                arrival = clock + w
                while completion_last > arrival:
                    # Drop-and-retry: burn the slot, re-arrive at the
                    # next wire slot with a free entry.
                    rejects += 1
                    slots = ceil((completion_last - arrival) / w)
                    if slots < 1:
                        slots = 1
                    arrival = arrival + slots * w
                for _ in range(counts_list[i]):
                    if hits_list[cursor]:
                        latency = hit_ns
                    else:
                        at_chipset = arrival + pcie
                        walk = walk_list[cursor]
                        if unbounded:
                            chipset_time = (at_chipset + walk) - at_chipset
                        else:
                            earliest = heappop(pool_heap)
                            start = (
                                at_chipset
                                if earliest <= at_chipset
                                else earliest
                            )
                            served = start + walk
                            heappush(pool_heap, served)
                            chipset_time = served - at_chipset
                        latency = hit_ns + (two_pcie + chipset_time)
                    if completion_last > arrival:
                        wait_total += completion_last - arrival
                        completion_last = completion_last + latency
                    else:
                        completion_last = arrival + latency
                    if latency_count == 0 or latency < latency_min:
                        latency_min = latency
                    latency_count += 1
                    latency_total += latency
                    if latency > latency_max:
                        latency_max = latency
                    bucket = bucket_memo.get(latency)
                    if bucket is None:
                        bucket = latency_bucket(latency)
                        bucket_memo[latency] = bucket
                    seen = buckets.get(bucket)
                    buckets[bucket] = 1 if seen is None else seen + 1
                    cursor += 1
                clock = arrival
                if completion_last > last_completion:
                    last_completion = completion_last
                if i + 1 == warmup_boundary:
                    measure_from_ns = (
                        last_completion
                        if last_completion > arrival
                        else arrival
                    )
            occupancy_accumulator = latency_count
            max_occupancy = 1 if latency_count else 0
            issued = latency_count
        else:
            completions = []  # heapq mirror of the PTB
            for i in range(n):
                w = wire_list[i]
                arrival = clock + w
                while True:
                    while completions and completions[0] <= arrival:
                        heappop(completions)
                    if len(completions) < entries:
                        break
                    rejects += 1
                    free_at = completions[0]
                    slots = ceil((free_at - arrival) / w)
                    if slots < 1:
                        slots = 1
                    arrival = arrival + slots * w
                packet_completion = arrival
                for _ in range(counts_list[i]):
                    if hits_list[cursor]:
                        latency = hit_ns
                    else:
                        at_chipset = arrival + pcie
                        walk = walk_list[cursor]
                        if unbounded:
                            chipset_time = (at_chipset + walk) - at_chipset
                        else:
                            earliest = heappop(pool_heap)
                            start = (
                                at_chipset
                                if earliest <= at_chipset
                                else earliest
                            )
                            served = start + walk
                            heappush(pool_heap, served)
                            chipset_time = served - at_chipset
                        latency = hit_ns + (two_pcie + chipset_time)
                    while completions and completions[0] <= arrival:
                        heappop(completions)
                    if len(completions) < entries:
                        start = arrival
                    else:
                        start = completions[0]
                        wait_total += start - arrival
                        heappop(completions)
                    finished = start + latency
                    heappush(completions, finished)
                    occupancy = len(completions)
                    occupancy_accumulator += occupancy
                    if occupancy > max_occupancy:
                        max_occupancy = occupancy
                    if latency_count == 0 or latency < latency_min:
                        latency_min = latency
                    latency_count += 1
                    latency_total += latency
                    if latency > latency_max:
                        latency_max = latency
                    bucket = bucket_memo.get(latency)
                    if bucket is None:
                        bucket = latency_bucket(latency)
                        bucket_memo[latency] = bucket
                    seen = buckets.get(bucket)
                    buckets[bucket] = 1 if seen is None else seen + 1
                    if finished > packet_completion:
                        packet_completion = finished
                    cursor += 1
                clock = arrival
                if packet_completion > last_completion:
                    last_completion = packet_completion
                if i + 1 == warmup_boundary:
                    measure_from_ns = (
                        last_completion
                        if last_completion > arrival
                        else arrival
                    )
            issued = latency_count

        # ----- fold the columns back into the live stats objects -----
        packet_stats = self.packet_stats
        packet_stats.arrived = n
        packet_stats.accepted = n
        packet_stats.dropped = rejects
        packet_stats.retried = rejects
        if rejects:
            packet_stats.drop_causes["ptb_overflow"] = rejects
        packet_stats.bytes_processed = int(sizes.sum())
        unique_sids, first_index, tenant_counts = np.unique(
            sids, return_index=True, return_counts=True
        )
        for k in np.argsort(first_index, kind="stable"):
            packet_stats.per_tenant_processed[int(unique_sids[k])] = int(
                tenant_counts[k]
            )

        latency_stats = self.latency_stats
        latency_stats.count = latency_count
        latency_stats.total_ns = latency_total
        latency_stats.min_ns = latency_min
        latency_stats.max_ns = latency_max
        latency_stats.buckets = buckets

        ptb_stats = device.ptb.stats
        ptb_stats.issued = issued
        ptb_stats.rejected_packets = rejects
        ptb_stats.max_occupancy = max_occupancy
        ptb_stats.occupancy_accumulator = occupancy_accumulator
        ptb_stats.total_wait_ns = wait_total

        engine = self.engines[0]
        engine.clock = clock
        engine.last_completion = last_completion

        measure_from_bytes = (
            int(sizes[:warmup_packets].sum()) if warmup_packets else 0
        )
        elapsed = last_completion if last_completion > clock else clock
        return self._build_result(
            elapsed,
            measure_from_ns=measure_from_ns,
            measure_from_bytes=measure_from_bytes,
        )


def simulate_vectorized(
    config: ArchConfig,
    trace: HyperTrace,
    native: bool = False,
    max_packets: Optional[int] = None,
    warmup_packets: int = 0,
    telemetry=None,
    observability=None,
    fault_plan=None,
    checkpoint_every: int = 0,
    checkpoint_path=None,
    checkpoint_hook=None,
    resume_from=None,
) -> SimulationResult:
    """One-call convenience mirroring :func:`repro.sim.simulator.simulate`.

    Accepts the full analytic signature so callers can switch engines
    with one argument; checkpoint/resume and fault plans raise
    :class:`VectorizedUnsupportedError`.
    """
    if resume_from is not None:
        raise VectorizedUnsupportedError(
            "resume is not supported by the vectorized engine "
            "(vectorized runs never write checkpoints); resume with "
            "engine='analytic' or engine='evented'"
        )
    simulator = VectorizedSimulator(
        config,
        trace,
        native=native,
        telemetry=telemetry,
        observability=observability,
        fault_plan=fault_plan,
    )
    return simulator.run(
        max_packets=max_packets,
        warmup_packets=warmup_packets,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        checkpoint_hook=checkpoint_hook,
    )
