"""Event-queue twin of the analytic performance model.

The paper's original performance model is event-driven ("a new event is
scheduled in a queue for a corresponding structure", Section IV-C).  The
main :class:`~repro.sim.simulator.HyperSimulator` in this repository is
*analytic*: because every request's latency is fully determined at issue,
packet arrivals can be replayed in order without an event queue.

:class:`EventDrivenSimulator` re-implements the same semantics on top of
an explicit event queue: each device's packet arrivals chain along its
serial link (one outstanding arrival event per device, as the wire
delivers packets in order), drop-and-retry admissions reschedule, and
prefetch installs fire as their own events.  Equal-time events across
devices dispatch in device-id order — exactly the ``(next_time,
device_id)`` merge the analytic engine performs — so given identical
inputs the two engines must produce *identical* results for any number of
devices; ``tests/test_des.py`` asserts exactly that, which validates the
analytic shortcut.  The event engine is also the natural extension point
for behaviours a closed-form replay cannot express (e.g. time-varying
link rates), so it is a public part of the library, not just a test
fixture.

Both engines drive the same :class:`~repro.sim.engine.DeviceEngine`
components, so "same semantics" is structural, not coincidental: only the
top-level scheduling differs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, List, Optional

from repro.core.config import ArchConfig
from repro.core.results import SimulationResult
from repro.sim.engine import PacketRouter
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import HyperTrace


class EventKind(IntEnum):
    """Event kinds, ordered by dispatch priority at equal timestamps.

    Prefetch installs must be visible to a packet arriving at the same
    instant (the analytic model drains installs with
    ``install_time <= arrival`` first), hence the lower priority value.
    """

    PREFETCH_INSTALL = 0
    PACKET_ARRIVAL = 1


@dataclass(order=True)
class Event:
    """One scheduled event; orders by (time, kind, tiebreak, sequence).

    ``tiebreak`` carries the device id so equal-time arrivals on
    different devices dispatch in device order, mirroring the analytic
    engine's cursor merge; it is 0 throughout a single-device run, which
    reduces to the historical (time, kind, sequence) order.
    """

    time: float
    kind: EventKind
    tiebreak: int
    sequence: int
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A time-ordered event queue with stable tie-breaking."""

    def __init__(self):
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def schedule(
        self, time: float, kind: EventKind, payload: Any = None, tiebreak: int = 0
    ) -> None:
        heapq.heappush(
            self._heap, Event(time, kind, tiebreak, next(self._counter), payload)
        )

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        if not self._heap:
            raise IndexError("peek on an empty event queue")
        return self._heap[0].time

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class EventDrivenSimulator(HyperSimulator):
    """The performance model, driven by an explicit event queue.

    Reuses every structural component of :class:`HyperSimulator` — the
    fabric and its per-device engines (caches, PTB, prefetch unit, request
    processing); only the top-level control flow differs.
    """

    _engine_kind = "event"

    def run(
        self,
        max_packets: Optional[int] = None,
        warmup_packets: int = 0,
        checkpoint_every: int = 0,
        checkpoint_path=None,
        checkpoint_hook=None,
    ) -> SimulationResult:
        trace_packets = self.trace.packets
        total = len(trace_packets)
        if max_packets is not None:
            total = min(total, max_packets)
        if warmup_packets >= total:
            raise ValueError(
                f"warmup ({warmup_packets}) must be shorter than the trace "
                f"({total} packets)"
            )
        router = PacketRouter(trace_packets, self.fabric, limit=max_packets)
        state = _EventLoop(warmup_packets=warmup_packets, queue=EventQueue())
        for engine in self.engines:
            # Each device's link is serial: exactly one arrival per device
            # is outstanding at any time, and accepting a packet schedules
            # that device's next one.
            if engine.fetch_next(router):
                self._schedule_arrival(state.queue, engine)
        return self._run_loop(
            router, state, self._checkpoint_policy(
                checkpoint_every, checkpoint_path, checkpoint_hook
            ),
        )

    def _run_loop(self, router, state, policy=None) -> SimulationResult:
        """Drain the event queue from ``state``; checkpoint-resumable like
        the analytic loop (the queue itself is part of the loop state)."""
        queue = state.queue
        while queue:
            event = queue.pop()
            if event.kind is EventKind.PREFETCH_INSTALL:
                device_id, sid, page, hpa, page_shift = event.payload
                self.engines[device_id].apply_install(
                    event.time, sid, page, hpa, page_shift
                )
                continue
            before = state.processed
            self._dispatch_arrival(
                queue, event.time, self.engines[event.payload], router, state
            )
            # Checkpoint only at packet barriers (a completed dispatch),
            # mirroring the analytic engine's cadence packet for packet.
            if policy is not None and state.processed != before:
                self._checkpoint_barrier(policy, router, state)

        elapsed = max(state.last_completion, state.last_arrival)
        if self.telemetry is not None:
            self.telemetry.finish(elapsed)
        return self._build_result(
            elapsed,
            measure_from_ns=state.measure_from_ns,
            measure_from_bytes=state.measure_from_bytes,
        )

    # ------------------------------------------------------------------
    def _schedule_arrival(self, queue: EventQueue, engine) -> None:
        queue.schedule(
            engine.next_time,
            EventKind.PACKET_ARRIVAL,
            engine.device_id,
            tiebreak=engine.device_id,
        )

    def _dispatch_arrival(self, queue, arrival, engine, router, state):
        if not engine.current_is_retry:
            engine.begin_packet()

        if self.native:
            completion = engine.process_native(arrival)
            self._finish_packet(queue, arrival, completion, engine, router, state)
            return

        if not engine.try_admit(arrival):
            # try_admit advanced the engine's cursor to the retry slot.
            self._schedule_arrival(queue, engine)
            return

        completion = engine.complete_packet(arrival, drain_installs=False)
        # Lift the prefetches this packet issued into their own events.
        for install_time, _seq, sid, page, hpa, page_shift in (
            engine.pop_pending_installs()
        ):
            queue.schedule(
                install_time,
                EventKind.PREFETCH_INSTALL,
                (engine.device_id, sid, page, hpa, page_shift),
                tiebreak=engine.device_id,
            )
        self._finish_packet(queue, arrival, completion, engine, router, state)

    def _finish_packet(self, queue, arrival, completion, engine, router, state):
        state.last_arrival = max(state.last_arrival, arrival)
        state.last_completion = max(state.last_completion, completion)
        state.processed += 1
        if self.telemetry is not None and not self.native:
            engine.sample_telemetry(arrival, engine.current_packet)
        if state.warmup_packets and state.processed == state.warmup_packets:
            state.measure_from_ns = (
                arrival if self.native
                else max(state.last_completion, state.last_arrival)
            )
            state.measure_from_bytes = self.packet_stats.bytes_processed
            for other in self.engines:
                other.measure_from_bytes = other.packet_stats.bytes_processed
        if engine.fetch_next(router):
            self._schedule_arrival(queue, engine)


@dataclass
class _EventLoop:
    """Mutable bookkeeping threaded through the event loop.

    Checkpoint-picklable alongside the simulator — the event queue rides
    in here, so a restored run pops exactly the events the interrupted
    one still had scheduled.
    """

    warmup_packets: int = 0
    queue: EventQueue = field(default_factory=EventQueue)
    last_arrival: float = 0.0
    last_completion: float = 0.0
    processed: int = 0
    measure_from_ns: float = 0.0
    measure_from_bytes: int = 0


def simulate_evented(
    config: ArchConfig,
    trace: HyperTrace,
    native: bool = False,
    max_packets: Optional[int] = None,
    warmup_packets: int = 0,
    telemetry=None,
    observability=None,
    fault_plan=None,
    checkpoint_every: int = 0,
    checkpoint_path=None,
    checkpoint_hook=None,
    resume_from=None,
) -> SimulationResult:
    """One-call convenience mirroring :func:`repro.sim.simulator.simulate`."""
    if resume_from is not None:
        from repro.sim.checkpoint import resume_simulation

        return resume_simulation(
            resume_from,
            expect_engine="event",
            expect_config=config,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            checkpoint_hook=checkpoint_hook,
        )
    simulator = EventDrivenSimulator(
        config,
        trace,
        native=native,
        telemetry=telemetry,
        observability=observability,
        fault_plan=fault_plan,
    )
    return simulator.run(
        max_packets=max_packets,
        warmup_packets=warmup_packets,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        checkpoint_hook=checkpoint_hook,
    )
