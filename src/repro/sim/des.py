"""Event-queue twin of the analytic performance model.

The paper's original performance model is event-driven ("a new event is
scheduled in a queue for a corresponding structure", Section IV-C).  The
main :class:`~repro.sim.simulator.HyperSimulator` in this repository is
*analytic*: because every request's latency is fully determined at issue,
packet arrivals can be replayed in order without an event queue.

:class:`EventDrivenSimulator` re-implements the same semantics on top of
an explicit event queue: packet arrivals chain along the serial link (one
outstanding arrival event at a time, as the wire delivers packets in
order), drop-and-retry admissions reschedule, and prefetch installs fire
as their own events.  Given identical inputs the two engines must produce
*identical* results; ``tests/test_des.py`` asserts exactly that, which
validates the analytic shortcut.  The event engine is also the natural
extension point for behaviours a closed-form replay cannot express (e.g.
time-varying link rates), so it is a public part of the library, not just
a test fixture.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, List, Optional

from repro.core.config import ArchConfig
from repro.core.results import SimulationResult
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import HyperTrace


class EventKind(IntEnum):
    """Event kinds, ordered by dispatch priority at equal timestamps.

    Prefetch installs must be visible to a packet arriving at the same
    instant (the analytic model drains installs with
    ``install_time <= arrival`` first), hence the lower priority value.
    """

    PREFETCH_INSTALL = 0
    PACKET_ARRIVAL = 1


@dataclass(order=True)
class Event:
    """One scheduled event; orders by (time, kind, sequence)."""

    time: float
    kind: EventKind
    sequence: int
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A time-ordered event queue with stable tie-breaking."""

    def __init__(self):
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def schedule(self, time: float, kind: EventKind, payload: Any = None) -> None:
        heapq.heappush(self._heap, Event(time, kind, next(self._counter), payload))

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        if not self._heap:
            raise IndexError("peek on an empty event queue")
        return self._heap[0].time

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class EventDrivenSimulator(HyperSimulator):
    """The performance model, driven by an explicit event queue.

    Reuses every structural component of :class:`HyperSimulator` (caches,
    PTB, prefetch unit, request processing); only the top-level control
    flow differs.
    """

    def run(
        self, max_packets: Optional[int] = None, warmup_packets: int = 0
    ) -> SimulationResult:
        timing = self.config.timing
        bits_per_ns = timing.link_bandwidth_gbps  # Gb/s == bits/ns
        packets = self.trace.packets
        if max_packets is not None:
            packets = packets[:max_packets]
        if warmup_packets >= len(packets):
            raise ValueError(
                f"warmup ({warmup_packets}) must be shorter than the trace "
                f"({len(packets)} packets)"
            )

        def wire_time(packet) -> float:
            if packet.size_bytes == timing.packet_bytes:
                return timing.packet_interarrival_ns
            return packet.size_bytes * 8 / bits_per_ns

        queue = EventQueue()
        state = _RunState()
        if packets:
            # The link is serial: exactly one arrival is outstanding at any
            # time, and accepting packet i schedules packet i+1.
            queue.schedule(
                wire_time(packets[0]),
                EventKind.PACKET_ARRIVAL,
                _Arrival(index=0, is_retry=False),
            )

        while queue:
            event = queue.pop()
            if event.kind is EventKind.PREFETCH_INSTALL:
                sid, page, hpa, page_shift = event.payload
                self._apply_install(event.time, sid, page, hpa, page_shift)
                continue
            self._dispatch_arrival(
                queue, event.time, event.payload, packets, wire_time,
                warmup_packets, state,
            )

        elapsed = max(state.last_completion, state.last_arrival)
        return self._build_result(
            elapsed,
            measure_from_ns=state.measure_from_ns,
            measure_from_bytes=state.measure_from_bytes,
        )

    # ------------------------------------------------------------------
    def _dispatch_arrival(
        self, queue, arrival, marker, packets, wire_time, warmup_packets, state
    ):
        packet = packets[marker.index]
        wire_ns = wire_time(packet)
        if not marker.is_retry:
            self.packet_stats.arrived += 1

        if self.native:
            self.packet_stats.accepted += 1
            self.packet_stats.record_processed(packet)
            self._finish_packet(
                queue, arrival, arrival, marker.index, packets, wire_time,
                warmup_packets, state,
            )
            return

        ptb = self.path.ptb
        if not ptb.can_accept(arrival):
            ptb.reject_packet()
            self.packet_stats.dropped += 1
            self.packet_stats.retried += 1
            free_at = ptb.earliest_free_time(arrival)
            slots = max(1, math.ceil((free_at - arrival) / wire_ns))
            queue.schedule(
                arrival + slots * wire_ns,
                EventKind.PACKET_ARRIVAL,
                _Arrival(index=marker.index, is_retry=True),
            )
            return

        self.packet_stats.accepted += 1
        if packet.invalidations:
            self._invalidate_pages(packet.sid, packet.invalidations)
        if self.path.prefetch_unit is not None:
            self._maybe_prefetch_evented(queue, arrival, packet.sid)
        completion = arrival
        for giova in packet.giovas:
            finished = self._process_request(arrival, packet.sid, giova)
            completion = max(completion, finished)
        self.packet_stats.record_processed(packet)
        self._finish_packet(
            queue, arrival, completion, marker.index, packets, wire_time,
            warmup_packets, state,
        )

    def _finish_packet(
        self, queue, arrival, completion, index, packets, wire_time,
        warmup_packets, state,
    ):
        state.last_arrival = max(state.last_arrival, arrival)
        state.last_completion = max(state.last_completion, completion)
        state.processed += 1
        if self.telemetry is not None:
            self._sample_telemetry(arrival, packets[index])
        if warmup_packets and state.processed == warmup_packets:
            state.measure_from_ns = max(state.last_completion, state.last_arrival)
            state.measure_from_bytes = self.packet_stats.bytes_processed
        next_index = index + 1
        if next_index < len(packets):
            queue.schedule(
                arrival + wire_time(packets[next_index]),
                EventKind.PACKET_ARRIVAL,
                _Arrival(index=next_index, is_retry=False),
            )

    # ------------------------------------------------------------------
    def _maybe_prefetch_evented(self, queue: EventQueue, now: float, sid: int):
        """Run the shared prefetch logic, then lift installs into events."""
        before = len(self._pending_installs)
        self._maybe_prefetch(now, sid)
        if len(self._pending_installs) == before:
            return
        for entry in self._pending_installs:
            install_time, psid, page, hpa, page_shift = entry
            queue.schedule(
                install_time,
                EventKind.PREFETCH_INSTALL,
                (psid, page, hpa, page_shift),
            )
        self._pending_installs.clear()


@dataclass
class _Arrival:
    """Payload of a PACKET_ARRIVAL event."""

    index: int
    is_retry: bool


@dataclass
class _RunState:
    """Mutable bookkeeping threaded through the event loop."""

    last_arrival: float = 0.0
    last_completion: float = 0.0
    processed: int = 0
    measure_from_ns: float = 0.0
    measure_from_bytes: int = 0


def simulate_evented(
    config: ArchConfig,
    trace: HyperTrace,
    native: bool = False,
    max_packets: Optional[int] = None,
    warmup_packets: int = 0,
) -> SimulationResult:
    """One-call convenience mirroring :func:`repro.sim.simulator.simulate`."""
    simulator = EventDrivenSimulator(config, trace, native=native)
    return simulator.run(max_packets=max_packets, warmup_packets=warmup_packets)
