"""Crash-safe checkpoint/restore of in-flight simulation runs.

A :class:`SimulationCheckpoint` snapshots a live simulator at a *packet
barrier* — the instant after one packet fully dispatched and the cursor
advanced.  Everything the run loop will ever touch again is reachable
from three roots, all plain picklable Python data:

* the simulator itself (fabric, caches, PTB heaps, prefetch buffer and
  SID-predictor history, fault-injector RNG, telemetry window, counters),
* the :class:`~repro.sim.engine.PacketRouter` (an index cursor into the
  trace plus per-device overflow queues),
* the loop-state dataclass (``_AnalyticLoop`` or the event twin's
  ``_EventLoop``, which carries the DES event queue).

Pickling the three together in one protocol-5 stream preserves object
identity across the graph (engines referenced from both the simulator
and the loop's ``active`` list restore as the *same* objects), so a
resumed run re-enters ``_run_loop`` with state bit-identical to the
interrupted one — floats round-trip exactly, ``random.Random`` restores
its Mersenne state, heaps and insertion-ordered dicts keep their order.
``tests/test_checkpoint.py`` pins byte-identity of resumed results for
both engines.

Writes are atomic and durable: the stream goes to a same-directory temp
file, is fsync'd, and then ``os.replace``\\ s the target, so a crash
mid-save leaves either the previous snapshot or the new one — never a
torn file.  ``load`` verifies a magic prefix and a format version before
trusting the payload.

The module also owns the cooperative-interrupt flag: a SIGTERM/SIGINT
handler (or the runner's watchdog) calls :func:`request_interrupt`; the
run loop notices at the next packet barrier, flushes a final snapshot
and raises :class:`SimulationInterrupted` carrying the snapshot path.
"""

from __future__ import annotations

import os
import pickle
import signal
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

CHECKPOINT_MAGIC = b"REPRO-CKPT\n"
CHECKPOINT_VERSION = 1

PathLike = Union[str, os.PathLike]


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupt, or from the wrong run."""


def _rebuild_interrupted(message, packets_done, checkpoint_path):
    """Unpickle helper for :class:`SimulationInterrupted` (see __reduce__)."""
    return SimulationInterrupted(
        message, packets_done=packets_done, checkpoint_path=checkpoint_path
    )


class SimulationInterrupted(RuntimeError):
    """Raised at a packet barrier after an interrupt flushed a snapshot.

    Carries where the run stopped and where the snapshot landed so
    callers (the CLI, the runner worker) can report and later resume.
    Defines ``__reduce__`` because the runner ships it across the
    process-pool boundary.
    """

    def __init__(
        self,
        message: str,
        packets_done: int = 0,
        checkpoint_path: Optional[str] = None,
    ):
        super().__init__(message)
        self.packets_done = packets_done
        self.checkpoint_path = checkpoint_path

    def __reduce__(self):
        return (
            _rebuild_interrupted,
            (self.args[0] if self.args else "", self.packets_done,
             self.checkpoint_path),
        )


# ----------------------------------------------------------------------
# Cooperative interrupt flag
# ----------------------------------------------------------------------
_interrupt_requested = False


def request_interrupt() -> None:
    """Ask the running simulation to stop at its next packet barrier."""
    global _interrupt_requested
    _interrupt_requested = True


def clear_interrupt() -> None:
    global _interrupt_requested
    _interrupt_requested = False


def interrupt_requested() -> bool:
    return _interrupt_requested


def install_signal_handlers(signals=(signal.SIGTERM, signal.SIGINT)):
    """Route SIGTERM/SIGINT to :func:`request_interrupt`.

    Returns ``{signum: previous_handler}`` so callers can restore.  The
    handler only sets a flag — all snapshot I/O happens synchronously at
    the next packet barrier, never inside the signal frame.
    """
    previous = {}
    for signum in signals:
        previous[signum] = signal.signal(signum, _signal_handler)
    return previous


def restore_signal_handlers(previous) -> None:
    for signum, handler in previous.items():
        signal.signal(signum, handler)


def _signal_handler(signum, frame):  # pragma: no cover - signal frame
    request_interrupt()


# ----------------------------------------------------------------------
# Policy and snapshot
# ----------------------------------------------------------------------
@dataclass
class CheckpointPolicy:
    """When and where the run loop snapshots.

    ``every`` is in processed packets; 0 disables periodic snapshots but
    (with a ``path``) still flushes on interrupt.  ``hook`` is called as
    ``hook(packets_done, path_str)`` after every successful save — the
    runner uses it to stamp worker heartbeats.
    """

    every: int = 0
    path: Optional[Path] = None
    hook: Optional[Callable[[int, str], None]] = None

    def __post_init__(self):
        if self.every < 0:
            raise CheckpointError(f"checkpoint_every must be >= 0, got {self.every}")
        if self.every > 0 and self.path is None:
            raise CheckpointError("checkpoint_every > 0 requires a checkpoint path")
        if self.path is not None:
            self.path = Path(self.path)

    def due(self, processed: int) -> bool:
        return self.every > 0 and processed > 0 and processed % self.every == 0


@dataclass
class SimulationCheckpoint:
    """One versioned snapshot of a simulation at a packet barrier."""

    engine: str
    packets_done: int
    config: Dict[str, Any]
    state: Dict[str, Any]
    version: int = CHECKPOINT_VERSION

    # -- persistence ---------------------------------------------------
    def save(self, path: PathLike) -> Path:
        """Atomically write the snapshot to ``path`` (tmp + fsync + replace)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": self.version,
            "engine": self.engine,
            "packets_done": self.packets_done,
            "config": self.config,
            "state": self.state,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(CHECKPOINT_MAGIC)
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        _fsync_dir(path.parent)
        return path

    @classmethod
    def load(cls, path: PathLike) -> "SimulationCheckpoint":
        """Read and validate a snapshot written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise CheckpointError(f"checkpoint not found: {path}")
        try:
            with open(path, "rb") as handle:
                magic = handle.read(len(CHECKPOINT_MAGIC))
                if magic != CHECKPOINT_MAGIC:
                    raise CheckpointError(
                        f"{path} is not a simulation checkpoint "
                        f"(bad magic {magic!r})"
                    )
                payload = pickle.load(handle)
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(f"failed to read checkpoint {path}: {exc}") from exc
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has format version {version}; this build "
                f"reads version {CHECKPOINT_VERSION}"
            )
        return cls(
            engine=payload["engine"],
            packets_done=payload["packets_done"],
            config=payload["config"],
            state=payload["state"],
            version=version,
        )

    # -- resumption ----------------------------------------------------
    def resume(
        self,
        checkpoint_every: int = 0,
        checkpoint_path: Optional[PathLike] = None,
        checkpoint_hook: Optional[Callable[[int, str], None]] = None,
    ):
        """Re-enter the run loop from this snapshot and run to completion.

        Continued checkpointing is independent of how the snapshot was
        produced: pass ``checkpoint_every``/``checkpoint_path`` to keep
        snapshotting (e.g. to survive a second crash), or neither to just
        finish the run.
        """
        sim = self.state["sim"]
        router = self.state["router"]
        loop = self.state["loop"]
        policy = sim._checkpoint_policy(
            checkpoint_every, checkpoint_path, checkpoint_hook
        )
        if sim._tracer is not None:
            from repro.obs import events as ev

            sim._tracer.emit(
                ev.CHECKPOINT_RESUME,
                loop.last_completion,
                packets_done=self.packets_done,
            )
        return sim._run_loop(router, loop, policy)


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def resume_simulation(
    path: PathLike,
    expect_engine: Optional[str] = None,
    expect_config=None,
    checkpoint_every: int = 0,
    checkpoint_path: Optional[PathLike] = None,
    checkpoint_hook: Optional[Callable[[int, str], None]] = None,
):
    """Load ``path`` and run the snapshotted simulation to completion.

    ``expect_engine`` / ``expect_config`` cross-check that the caller is
    resuming the run it thinks it is: a snapshot from the other engine or
    from a different architecture raises :class:`CheckpointError` instead
    of silently producing numbers for the wrong experiment.  When
    continued checkpointing is requested (``checkpoint_every`` > 0)
    without an explicit ``checkpoint_path``, snapshots keep going to the
    file being resumed.
    """
    snapshot = SimulationCheckpoint.load(path)
    if expect_engine is not None and snapshot.engine != expect_engine:
        raise CheckpointError(
            f"checkpoint {path} was written by the {snapshot.engine!r} engine; "
            f"cannot resume it as {expect_engine!r}"
        )
    if expect_config is not None:
        from repro.core.config_io import config_to_dict

        expected = config_to_dict(expect_config)
        if expected != snapshot.config:
            mismatched = sorted(
                key for key in set(expected) | set(snapshot.config)
                if expected.get(key) != snapshot.config.get(key)
            )
            raise CheckpointError(
                f"checkpoint {path} was written for a different config "
                f"(differs in: {', '.join(mismatched)})"
            )
    if checkpoint_every > 0 and checkpoint_path is None:
        checkpoint_path = path
    return snapshot.resume(
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        checkpoint_hook=checkpoint_hook,
    )
