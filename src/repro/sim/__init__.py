"""The HyperSIO performance model: analytic trace-driven timing."""

from repro.sim.des import EventDrivenSimulator, EventKind, EventQueue, simulate_evented
from repro.sim.link import IoLink
from repro.sim.oracle import FutureOracle, devtlb_key_sequence, oracle_for_trace
from repro.sim.resources import ResourcePool, UnboundedPool
from repro.sim.simulator import SIMULATE_ENGINES, HyperSimulator, simulate
from repro.sim.telemetry import Telemetry, WindowSample
from repro.sim.vectorized import (
    VectorizedSimulator,
    VectorizedUnsupportedError,
    simulate_vectorized,
)

__all__ = [
    "IoLink",
    "EventDrivenSimulator",
    "EventQueue",
    "EventKind",
    "simulate_evented",
    "FutureOracle",
    "devtlb_key_sequence",
    "oracle_for_trace",
    "ResourcePool",
    "UnboundedPool",
    "HyperSimulator",
    "SIMULATE_ENGINES",
    "simulate",
    "VectorizedSimulator",
    "VectorizedUnsupportedError",
    "simulate_vectorized",
    "Telemetry",
    "WindowSample",
]
