"""Trace records and (de)serialisation.

A *hyper-trace* — the output of the Trace Constructor — is a sequence of
per-packet records, each naming the tenant (SID) and the three gIOVAs its
translations target, together with the tenant metadata (page-table address
spaces) the performance model needs.  Traces can be streamed to and from
JSON-lines files so long constructions can be cached between benchmark runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class PacketRecord:
    """One packet in a hyper-trace.

    ``invalidations`` lists gIOVA page numbers whose translations the
    tenant's driver unmapped *before* this packet (the paper's Section
    IV-D: each 2 MB data page is unmapped when the driver advances to the
    next one).  The performance model flushes those pages from every
    translation structure before processing the packet.
    """

    sid: int
    giovas: Tuple[int, int, int]
    size_bytes: int = 1542
    invalidations: Tuple[int, ...] = ()

    def to_json(self) -> str:
        payload = {"sid": self.sid, "giovas": list(self.giovas),
                   "size": self.size_bytes}
        if self.invalidations:
            payload["inv"] = list(self.invalidations)
        return json.dumps(payload)

    @classmethod
    def from_json(cls, line: str) -> "PacketRecord":
        raw = json.loads(line)
        giovas = raw["giovas"]
        if len(giovas) != 3:
            raise ValueError(f"packet record needs 3 gIOVAs, got {len(giovas)}")
        return cls(
            sid=raw["sid"],
            giovas=tuple(giovas),
            size_bytes=raw.get("size", 1542),
            invalidations=tuple(raw.get("inv", ())),
        )


@dataclass
class TraceStats:
    """Summary statistics of a hyper-trace (powers Table III)."""

    num_tenants: int
    total_packets: int
    total_translations: int
    min_translations_per_tenant: int
    max_translations_per_tenant: int

    def as_row(self) -> Tuple[int, int, int]:
        """(max/tenant, min/tenant, total) — the columns of Table III."""
        return (
            self.max_translations_per_tenant,
            self.min_translations_per_tenant,
            self.total_translations,
        )


def compute_trace_stats(packets: Sequence[PacketRecord]) -> TraceStats:
    """Compute :class:`TraceStats` over an in-memory packet list."""
    per_tenant: dict = {}
    for packet in packets:
        per_tenant[packet.sid] = per_tenant.get(packet.sid, 0) + 3
    if not per_tenant:
        return TraceStats(0, 0, 0, 0, 0)
    counts = list(per_tenant.values())
    return TraceStats(
        num_tenants=len(per_tenant),
        total_packets=len(packets),
        total_translations=sum(counts),
        min_translations_per_tenant=min(counts),
        max_translations_per_tenant=max(counts),
    )


def write_trace(path: Path, packets: Iterable[PacketRecord]) -> int:
    """Write packets to ``path`` as JSON lines; returns the count written."""
    count = 0
    with Path(path).open("w", encoding="utf-8") as handle:
        for packet in packets:
            handle.write(packet.to_json())
            handle.write("\n")
            count += 1
    return count


def read_trace(path: Path) -> Iterator[PacketRecord]:
    """Stream packets back from a JSON-lines trace file."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield PacketRecord.from_json(line)


def load_trace(path: Path) -> List[PacketRecord]:
    """Read a whole trace file into memory."""
    return list(read_trace(path))
