"""Log-collector substitute: per-tenant translation-request logs.

The paper's Log Collector runs up to 24 QEMU-emulated NIC+VM pairs and
records every IOMMU translation.  We cannot ship QEMU, so this module
produces the same *artifact* — a per-tenant log of translation requests
(gIOVA page accesses, including the initialisation-phase pages) — directly
from the synthetic workload models, in batches of at most
:data:`MAX_TENANTS_PER_RUN` tenants per "run" to mirror the collector's
24-slot PCIe root-complex limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.trace.records import PacketRecord
from repro.trace.tenant import BenchmarkProfile, TenantSpec, make_tenant_specs
from repro.trace.workload import TenantWorkload, build_system

#: QEMU's Q35 PCIe root complex supports 24 slots; the paper runs the
#: collector repeatedly with at most this many tenants and splices the logs.
MAX_TENANTS_PER_RUN = 24


@dataclass
class TenantLog:
    """One tenant's recorded translation requests.

    ``init_giovas`` are the group-3 accesses right after NIC init;
    ``packets`` the steady-state stream.  ``requests()`` flattens both into
    the gIOVA sequence an IOMMU would have seen.
    """

    sid: int
    benchmark: str
    init_giovas: List[int]
    packets: List[PacketRecord]

    def requests(self, include_init: bool = True) -> Iterator[int]:
        """Yield every translated gIOVA in log order."""
        if include_init:
            yield from self.init_giovas
        for packet in self.packets:
            yield from packet.giovas

    @property
    def request_count(self) -> int:
        return len(self.init_giovas) + 3 * len(self.packets)


@dataclass
class CollectorRun:
    """One collector invocation: logs for up to 24 tenants."""

    logs: List[TenantLog] = field(default_factory=list)


class LogCollector:
    """Produce per-tenant logs in batched runs of <= 24 tenants."""

    def __init__(self, max_tenants_per_run: int = MAX_TENANTS_PER_RUN):
        if max_tenants_per_run < 1:
            raise ValueError("max_tenants_per_run must be >= 1")
        self.max_tenants_per_run = max_tenants_per_run

    def collect(self, specs: Sequence[TenantSpec]) -> List[CollectorRun]:
        """Record logs for ``specs``, batching as the real collector must."""
        runs: List[CollectorRun] = []
        for start in range(0, len(specs), self.max_tenants_per_run):
            batch = specs[start : start + self.max_tenants_per_run]
            _, workloads = build_system(batch)
            run = CollectorRun(
                logs=[_log_from_workload(workload) for workload in workloads]
            )
            runs.append(run)
        return runs

    def collect_flat(self, specs: Sequence[TenantSpec]) -> List[TenantLog]:
        """All logs across runs, in spec order."""
        logs: List[TenantLog] = []
        for run in self.collect(specs):
            logs.extend(run.logs)
        return logs


def _log_from_workload(workload: TenantWorkload) -> TenantLog:
    return TenantLog(
        sid=workload.spec.sid,
        benchmark=workload.spec.profile.name,
        init_giovas=list(workload.init_requests),
        packets=workload.materialize(),
    )


def collect_single_tenant(
    profile: BenchmarkProfile, packets: int = 5000, seed: int = 0
) -> TenantLog:
    """Record one tenant's log — the input to Figure 8's characterisation."""
    specs = make_tenant_specs(profile, num_tenants=1,
                              packets_per_tenant=packets, seed=seed)
    return LogCollector().collect_flat(specs)[0]
