"""Per-tenant workload generation (the Log Collector substitute).

For each :class:`~repro.trace.tenant.TenantSpec` this module builds:

* the tenant's :class:`~repro.mem.pagetable.AddressSpace` — real guest and
  host page tables with the gIOVA layout of Section IV-D (identical across
  tenants, because identical guest OS + driver versions allocate identical
  gIOVAs; this is the root cause of un-partitioned TLB thrashing);
* the packet stream: a :class:`~repro.device.ring.DescriptorRing` cycles
  2 MB data pages with the observed periodic reuse, optionally disturbed by
  random jumps for the less regular benchmarks.

All randomness is seeded per tenant, so traces are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.device.ring import DescriptorRing, make_default_layout
from repro.mem.address import PAGE_SHIFT_2M, PAGE_SHIFT_4K
from repro.mem.allocator import FrameAllocator
from repro.mem.pagetable import AddressSpace
from repro.mem.walker import TwoDimensionalWalker
from repro.trace.records import PacketRecord
from repro.trace.tenant import TenantSpec

#: gIOVA base of the group-3 (initialisation) pages observed in the paper
#: (the 0xf0000000..0xffffffff window).
INIT_WINDOW_BASE = 0xF000_0000


@dataclass
class TenantWorkload:
    """A tenant's address space plus its generated packet stream."""

    spec: TenantSpec
    space: AddressSpace
    walker: TwoDimensionalWalker
    init_requests: List[int] = field(default_factory=list)
    _ring: DescriptorRing = None  # set in build_tenant_workload
    _rng: random.Random = None

    def packet_stream(self) -> Iterator[PacketRecord]:
        """Yield this tenant's packets in order.

        When the profile sets ``remap_on_advance``, a data-page transition
        unmaps/remaps the page just left and attaches an invalidation event
        to the following packet (the driver behaviour the paper observed).
        """
        profile = self.spec.profile
        ring = self._ring
        num_pages = len(ring.layout.data_page_giovas)
        page_shift = PAGE_SHIFT_2M if profile.huge_data_pages else PAGE_SHIFT_4K
        previous_page = ring.current_data_page
        for _ in range(self.spec.packets):
            if profile.jump_probability and self._rng.random() < profile.jump_probability:
                ring.jump_to_page(self._rng.randrange(num_pages))
            invalidations = ()
            current_page = ring.current_data_page
            if profile.remap_on_advance and current_page != previous_page:
                self.space.remap_io_page(previous_page, page_shift)
                self.walker.invalidate(previous_page)
                invalidations = (previous_page >> 12,)
            previous_page = current_page
            giovas = ring.next_packet_giovas()
            size = profile.packet_bytes
            if (
                profile.small_packet_fraction
                and self._rng.random() < profile.small_packet_fraction
            ):
                size = profile.small_packet_bytes
            yield PacketRecord(
                sid=self.spec.sid,
                giovas=giovas,
                size_bytes=size,
                invalidations=invalidations,
            )

    def materialize(self) -> List[PacketRecord]:
        """Generate the full packet list."""
        return list(self.packet_stream())


class HyperTenantSystem:
    """Everything the performance model needs about the simulated host.

    Holds one host-physical allocator shared by all tenants (page tables of
    different VMs interleave in host memory, as on a real machine), each
    tenant's address space, and the per-tenant 2-D walkers handed to the
    IOMMU.
    """

    def __init__(self, scatter_host_frames: bool = False):
        self.host_allocator = FrameAllocator(base=0x10_0000_0000,
                                             scatter=scatter_host_frames)
        self.workloads: Dict[int, TenantWorkload] = {}

    def add_tenant(self, spec: TenantSpec) -> TenantWorkload:
        """Build and register the workload for ``spec``."""
        if spec.sid in self.workloads:
            raise ValueError(f"tenant SID {spec.sid} already registered")
        workload = build_tenant_workload(spec, self.host_allocator)
        self.workloads[spec.sid] = workload
        return workload

    def walker_for(self, sid: int) -> TwoDimensionalWalker:
        """Walker callback for the IOMMU."""
        return self.workloads[sid].walker

    def remove_tenant(self, sid: int) -> None:
        del self.workloads[sid]

    @property
    def num_tenants(self) -> int:
        return len(self.workloads)

    def sids(self) -> Tuple[int, ...]:
        return tuple(sorted(self.workloads))


def build_tenant_workload(
    spec: TenantSpec, host_allocator: FrameAllocator
) -> TenantWorkload:
    """Construct a tenant: page tables, ring layout, packet generator.

    Every tenant gets the *same* gIOVA layout (ring page at ``0x34800000``,
    2 MB data pages from ``0xbbe00000``, init pages at ``0xf0000000``) but
    its own guest-physical space and its own host frames.
    """
    profile = spec.profile
    # Each tenant's guest-physical space starts at a distinct base so guest
    # frame numbers differ even though gIOVAs match.
    guest_allocator = FrameAllocator(base=0x4000_0000)
    space = AddressSpace(guest_allocator, host_allocator, name=f"sid{spec.sid}")

    layout = make_default_layout(profile.num_data_pages)
    space.map_io_page(layout.ring_page_giova, PAGE_SHIFT_4K)
    space.map_io_page(layout.mailbox_page_giova, PAGE_SHIFT_4K)
    data_page_shift = PAGE_SHIFT_2M if profile.huge_data_pages else PAGE_SHIFT_4K
    for data_page in layout.data_page_giovas:
        space.map_io_page(data_page, data_page_shift)

    init_requests: List[int] = []
    for index in range(profile.init_pages):
        init_giova = INIT_WINDOW_BASE + index * 4096
        space.map_io_page(init_giova, PAGE_SHIFT_4K)
        init_requests.extend([init_giova] * profile.init_accesses_per_page)

    rng = random.Random(spec.seed)
    ring = DescriptorRing(layout, uses_per_page=profile.uses_per_page)
    workload = TenantWorkload(
        spec=spec,
        space=space,
        walker=TwoDimensionalWalker(space),
        init_requests=init_requests,
    )
    workload._ring = ring
    workload._rng = rng
    return workload


def build_system(specs) -> Tuple[HyperTenantSystem, List[TenantWorkload]]:
    """Build a :class:`HyperTenantSystem` holding all ``specs``."""
    system = HyperTenantSystem()
    workloads = [system.add_tenant(spec) for spec in specs]
    return system, workloads
