"""On-disk log format for collector output (HyperSIO-style text logs).

The original HyperSIO Log Collector writes one text log per run, with one
line per IOMMU event.  This module defines a compatible-in-spirit format
so the pipeline's intermediate artifact is a real file that can be
written, inspected, and re-parsed:

```
# hypersio-log v1 benchmark=mediastream sid=3
I 0xf0000000            # init-phase translation request
P 0x34800000 0xbbe00000 0x35000000   # one packet's three requests
```

``write_log`` / ``read_log`` round-trip a
:class:`~repro.trace.collector.TenantLog`; ``write_run`` / ``read_run``
handle a whole collector run directory (one file per tenant, as the
paper's per-NIC logs are).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List

from repro.trace.collector import CollectorRun, TenantLog
from repro.trace.records import PacketRecord

#: Magic first-line prefix for format detection.
MAGIC = "# hypersio-log v1"


class LogFormatError(ValueError):
    """Raised when a log file does not parse."""


def write_log(path: Path, log: TenantLog) -> int:
    """Write one tenant's log; returns the number of event lines."""
    lines = [f"{MAGIC} benchmark={log.benchmark} sid={log.sid}"]
    for giova in log.init_giovas:
        lines.append(f"I {giova:#x}")
    for packet in log.packets:
        ring, data, mailbox = packet.giovas
        lines.append(f"P {ring:#x} {data:#x} {mailbox:#x}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines) - 1


def read_log(path: Path) -> TenantLog:
    """Parse one tenant's log file back into a :class:`TenantLog`."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines or not lines[0].startswith(MAGIC):
        raise LogFormatError(f"{path}: missing '{MAGIC}' header")
    header = _parse_header(lines[0], path)
    init_giovas: List[int] = []
    packets: List[PacketRecord] = []
    for number, line in enumerate(lines[1:], start=2):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        kind = fields[0]
        try:
            values = [int(field, 16) for field in fields[1:]]
        except ValueError as error:
            raise LogFormatError(f"{path}:{number}: bad address: {error}") from None
        if kind == "I":
            if len(values) != 1:
                raise LogFormatError(f"{path}:{number}: I takes one address")
            init_giovas.append(values[0])
        elif kind == "P":
            if len(values) != 3:
                raise LogFormatError(f"{path}:{number}: P takes three addresses")
            if init_giovas is None:
                raise LogFormatError(f"{path}:{number}: packets before header")
            packets.append(
                PacketRecord(sid=header["sid"], giovas=tuple(values))
            )
        else:
            raise LogFormatError(f"{path}:{number}: unknown record kind {kind!r}")
    return TenantLog(
        sid=header["sid"],
        benchmark=header["benchmark"],
        init_giovas=init_giovas,
        packets=packets,
    )


def _parse_header(line: str, path) -> dict:
    header = {"benchmark": None, "sid": None}
    for token in line[len(MAGIC):].split():
        if "=" not in token:
            raise LogFormatError(f"{path}: malformed header token {token!r}")
        key, value = token.split("=", 1)
        if key == "sid":
            header["sid"] = int(value)
        elif key == "benchmark":
            header["benchmark"] = value
    if header["sid"] is None or header["benchmark"] is None:
        raise LogFormatError(f"{path}: header needs benchmark= and sid=")
    return header


def write_run(directory: Path, run: CollectorRun) -> List[Path]:
    """Write every log of a collector run into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for log in run.logs:
        path = directory / f"tenant_{log.sid:04d}.log"
        write_log(path, log)
        paths.append(path)
    return paths


def read_run(directory: Path) -> CollectorRun:
    """Read every ``tenant_*.log`` in ``directory`` (sorted by SID)."""
    directory = Path(directory)
    paths = sorted(directory.glob("tenant_*.log"))
    if not paths:
        raise LogFormatError(f"{directory}: no tenant_*.log files")
    return CollectorRun(logs=[read_log(path) for path in paths])


def logs_equal(a: TenantLog, b: TenantLog) -> bool:
    """Structural equality of two logs (round-trip checks)."""
    return (
        a.sid == b.sid
        and a.benchmark == b.benchmark
        and a.init_giovas == b.init_giovas
        and a.packets == b.packets
    )
