"""Tenant specifications and benchmark profiles.

The paper evaluates three I/O-intensive benchmarks (Table III): *iperf3*
(steady packet stream), *mediastream* and *websearch* (CloudSuite 3).  The
published single-tenant characterisation (Section IV-D) pins down what their
gIOVA streams look like:

* one ring-buffer page translated for every packet (group 1),
* a window of 2 MB data-buffer pages each used ~1500 times sequentially
  before the driver moves on (group 2; 32 pages for mediastream),
* ~70 cold 4 KB pages touched fewer than 100 times at initialisation
  (group 3),
* *active translation set* sizes of 8 / 32 / 36 entries for iperf3 /
  mediastream / websearch (Section V-C),
* per-tenant request-count spreads in Table III.

:class:`BenchmarkProfile` encodes those parameters; :class:`TenantSpec` is
one tenant's concrete instantiation.  Since we do not ship QEMU, these
profiles *are* the workload substitution documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple


@dataclass(frozen=True)
class BenchmarkProfile:
    """Shape parameters of one benchmark's gIOVA stream.

    Attributes
    ----------
    name:
        Benchmark name as used in the paper's figures.
    num_data_pages:
        2 MB data-buffer pages in the driver's window (group 2).  The
        active translation set is ``num_data_pages + 2`` (ring + mailbox).
    uses_per_page:
        Consecutive packets served from one data page before advancing
        (~1500 in the paper's traces; scaled down for short runs).
    min_packet_fraction:
        Ratio of the least-active to the most-active tenant's packet count,
        reproducing Table III's min/max translation spreads.
    jump_probability:
        Per-packet probability of jumping to a random data page instead of
        continuing sequentially (0 = perfectly periodic).
    init_pages / init_accesses_per_page:
        Group-3 cold pages touched right after NIC initialisation.
    huge_data_pages:
        Map data buffers with 2 MB pages (the paper's traces, 19-access
        walks) or 4 KB pages (24-access walks; the page-size ablation).
    packet_bytes / small_packet_bytes / small_packet_fraction:
        Wire sizes.  The paper's evaluation uses fixed 1542 B frames; its
        introduction notes key-value stores send mostly tiny messages
        ("most keys under 60 B, values under 1000 B"), leaving the device
        far less time per translation.  A non-zero
        ``small_packet_fraction`` makes that fraction of packets
        ``small_packet_bytes`` long.
    remap_on_advance:
        Model the driver unmapping each data page when it advances to the
        next one (Section IV-D): the trace carries an invalidation event
        and the gIOVA is remapped onto fresh frames, so cached
        translations for that page become stale.
    """

    name: str
    num_data_pages: int
    uses_per_page: int = 1500
    min_packet_fraction: float = 1.0
    jump_probability: float = 0.0
    init_pages: int = 70
    init_accesses_per_page: int = 4
    huge_data_pages: bool = True
    remap_on_advance: bool = False
    packet_bytes: int = 1542
    small_packet_bytes: int = 150
    small_packet_fraction: float = 0.0

    def __post_init__(self):
        if self.num_data_pages < 1:
            raise ValueError("num_data_pages must be >= 1")
        if not 0.0 < self.min_packet_fraction <= 1.0:
            raise ValueError("min_packet_fraction must be in (0, 1]")
        if not 0.0 <= self.jump_probability <= 1.0:
            raise ValueError("jump_probability must be a probability")
        if not 0.0 <= self.small_packet_fraction <= 1.0:
            raise ValueError("small_packet_fraction must be a probability")
        if self.packet_bytes < 64 or self.small_packet_bytes < 64:
            raise ValueError("packet sizes must be at least a minimal frame")

    @property
    def active_translation_set(self) -> int:
        """Minimum fully-associative DevTLB entries for full utilisation."""
        return self.num_data_pages + 2

    def scaled(self, packets_per_tenant: int) -> "BenchmarkProfile":
        """Adapt ``uses_per_page`` to a shortened trace.

        The paper's 1500-use periods assume ~35k+ packets per tenant.  For
        scaled runs we shrink the period so each tenant still wraps its data
        window at least twice, preserving the periodic reuse structure that
        drives all cache behaviour.
        """
        target = packets_per_tenant // (2 * self.num_data_pages)
        uses = max(4, min(self.uses_per_page, target)) if target else 4
        return replace(self, uses_per_page=uses)


#: iperf3: most regular stream; active translation set of 8 (Section V-C),
#: per-tenant spread 68k..108k translations (Table III).
IPERF3 = BenchmarkProfile(
    name="iperf3",
    num_data_pages=6,
    uses_per_page=1500,
    min_packet_fraction=0.63,
    jump_probability=0.0,
)

#: mediastream: 32-page active window, widest per-tenant spread
#: (5.5k..73k translations), mild irregularity.
MEDIASTREAM = BenchmarkProfile(
    name="mediastream",
    num_data_pages=30,
    uses_per_page=1500,
    min_packet_fraction=0.075,
    jump_probability=0.005,
)

#: websearch: largest active set (36) and least regular access pattern.
WEBSEARCH = BenchmarkProfile(
    name="websearch",
    num_data_pages=34,
    uses_per_page=1500,
    min_packet_fraction=0.40,
    jump_probability=0.02,
)

#: keyvalue: not in the paper's evaluation, but its introduction motivates
#: it — a key-value store sends mostly tiny messages (keys under 60 B,
#: values under 1000 B), so packets arrive far faster than 1542 B frames
#: and the translation subsystem has much less slack per request.
KEYVALUE = BenchmarkProfile(
    name="keyvalue",
    num_data_pages=14,
    uses_per_page=1500,
    min_packet_fraction=0.5,
    jump_probability=0.01,
    packet_bytes=1078,
    small_packet_bytes=150,
    small_packet_fraction=0.6,
)

#: All benchmarks of Table III, by name, plus the key-value extension.
BENCHMARKS: Dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in (IPERF3, MEDIASTREAM, WEBSEARCH, KEYVALUE)
}


def profile_by_name(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile, with a helpful error."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}"
        ) from None


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a SID bound to a benchmark profile and a packet budget."""

    sid: int
    profile: BenchmarkProfile
    packets: int
    seed: int = 0

    def __post_init__(self):
        if self.sid < 0:
            raise ValueError("sid must be non-negative")
        if self.packets < 1:
            raise ValueError("packets must be >= 1")


def make_mixed_specs(
    assignments: "Tuple[Tuple[BenchmarkProfile, int], ...]",
    packets_per_tenant: int,
    seed: int = 0,
) -> Tuple["TenantSpec", ...]:
    """Create a heterogeneous tenant population.

    ``assignments`` is a sequence of ``(profile, count)`` pairs; SIDs are
    assigned densely in order.  Every tenant receives the full
    ``packets_per_tenant`` budget (heterogeneity comes from the profiles,
    e.g. an antagonist with a huge working set next to iperf3 victims in
    the isolation study).
    """
    if packets_per_tenant < 1:
        raise ValueError("packets_per_tenant must be >= 1")
    specs = []
    sid = 0
    for profile, count in assignments:
        if count < 1:
            raise ValueError("each profile needs a positive tenant count")
        scaled = profile.scaled(packets_per_tenant)
        for _ in range(count):
            specs.append(
                TenantSpec(
                    sid=sid,
                    profile=scaled,
                    packets=packets_per_tenant,
                    seed=seed * 1_000_003 + sid,
                )
            )
            sid += 1
    if not specs:
        raise ValueError("assignments produced no tenants")
    return tuple(specs)


def make_tenant_specs(
    profile: BenchmarkProfile,
    num_tenants: int,
    packets_per_tenant: int,
    seed: int = 0,
) -> Tuple[TenantSpec, ...]:
    """Create ``num_tenants`` specs with the paper's per-tenant spread.

    The most active tenant gets ``packets_per_tenant`` packets; the others
    are spaced deterministically down to
    ``min_packet_fraction * packets_per_tenant`` so Table III's min/max
    ratios are reproduced at any scale.
    """
    if num_tenants < 1:
        raise ValueError("num_tenants must be >= 1")
    if packets_per_tenant < 1:
        raise ValueError("packets_per_tenant must be >= 1")
    scaled_profile = profile.scaled(packets_per_tenant)
    specs = []
    low = scaled_profile.min_packet_fraction
    for index in range(num_tenants):
        if num_tenants == 1:
            fraction = 1.0
        else:
            # Deterministic spread: hash the index into [low, 1.0].
            position = (index * 0x9E3779B1 % (1 << 16)) / float(1 << 16)
            fraction = low + (1.0 - low) * position
        if index == 0:
            fraction = 1.0  # pin the maximum so max/tenant is exact
        elif index == 1 and num_tenants > 1:
            fraction = low  # pin the minimum so min/tenant is exact
        packets = max(1, round(packets_per_tenant * fraction))
        specs.append(
            TenantSpec(
                sid=index,
                profile=scaled_profile,
                packets=packets,
                seed=seed * 1_000_003 + index,
            )
        )
    return tuple(specs)
