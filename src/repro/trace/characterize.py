"""Single- and multi-tenant trace characterisation (Figure 8, Section IV-D).

Given tenant logs this module reproduces the paper's analysis:

* **Access-frequency grouping** (Figure 8a): pages cluster into a
  per-packet ring-buffer page, heavily reused 2 MB data-buffer pages, and
  rarely touched initialisation pages.
* **Periodicity** (Figure 8b): data pages are used in long sequential runs
  (~1500 uses) in ring order.
* **Multi-tenant overlap**: independent tenants use the *same* gIOVA page
  addresses (identical OS/driver), measured as the Jaccard overlap of their
  page sets.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.mem.address import PAGE_SHIFT_2M, PAGE_SHIFT_4K, page_number
from repro.trace.collector import TenantLog
from repro.trace.workload import INIT_WINDOW_BASE


@dataclass(frozen=True)
class PageGroup:
    """A frequency group of pages (Figure 8a)."""

    name: str
    pages: Tuple[int, ...]
    total_accesses: int

    @property
    def page_count(self) -> int:
        return len(self.pages)

    @property
    def accesses_per_page(self) -> float:
        return self.total_accesses / len(self.pages) if self.pages else 0.0


@dataclass
class SingleTenantCharacterization:
    """Results of the Figure 8 analysis for one tenant."""

    total_requests: int
    groups: Dict[str, PageGroup]
    #: Lengths of consecutive same-page runs over data pages (Figure 8b).
    sequential_run_lengths: List[int]
    #: True when data pages recur in a fixed cyclic order.
    periodic: bool

    @property
    def mean_run_length(self) -> float:
        runs = self.sequential_run_lengths
        return sum(runs) / len(runs) if runs else 0.0


def classify_page(giova_page_4k: int, ring_page: int, mailbox_page: int) -> str:
    """Assign a 4 KB-granularity page to one of the paper's three groups."""
    if giova_page_4k in (ring_page, mailbox_page):
        return "ring"
    if giova_page_4k >= page_number(INIT_WINDOW_BASE):
        return "init"
    return "data"


def characterize_single_tenant(log: TenantLog) -> SingleTenantCharacterization:
    """Run the Figure 8 analysis on one tenant's log."""
    requests = list(log.requests(include_init=True))
    ring_page = page_number(log.packets[0].giovas[0]) if log.packets else -1
    mailbox_page = page_number(log.packets[0].giovas[2]) if log.packets else -1

    counts: Counter = Counter(page_number(giova) for giova in requests)
    group_pages: Dict[str, List[int]] = {"ring": [], "data": [], "init": []}
    group_accesses: Dict[str, int] = {"ring": 0, "data": 0, "init": 0}
    for page, count in counts.items():
        group = classify_page(page, ring_page, mailbox_page)
        group_pages[group].append(page)
        group_accesses[group] += count

    groups = {
        name: PageGroup(
            name=name,
            pages=tuple(sorted(group_pages[name])),
            total_accesses=group_accesses[name],
        )
        for name in group_pages
    }

    data_page_stream = [
        page_number(packet.giovas[1], PAGE_SHIFT_2M) for packet in log.packets
    ]
    runs = _run_lengths(data_page_stream)
    periodic = _is_periodic(data_page_stream)
    return SingleTenantCharacterization(
        total_requests=len(requests),
        groups=groups,
        sequential_run_lengths=runs,
        periodic=periodic,
    )


def _run_lengths(stream: Sequence[int]) -> List[int]:
    """Lengths of maximal constant runs in ``stream``."""
    runs: List[int] = []
    current = None
    length = 0
    for item in stream:
        if item == current:
            length += 1
        else:
            if current is not None:
                runs.append(length)
            current, length = item, 1
    if current is not None:
        runs.append(length)
    return runs


def _is_periodic(stream: Sequence[int]) -> bool:
    """Check the deduplicated page order repeats cyclically.

    We collapse runs, then test whether each page's successor is constant
    across the whole stream — true for a ring, false for random jumping.
    """
    collapsed: List[int] = []
    for item in stream:
        if not collapsed or collapsed[-1] != item:
            collapsed.append(item)
    if len(collapsed) < 3:
        return True
    successor: Dict[int, int] = {}
    for current, nxt in zip(collapsed, collapsed[1:]):
        if current in successor and successor[current] != nxt:
            return False
        successor[current] = nxt
    return True


@dataclass
class MultiTenantCharacterization:
    """Cross-tenant overlap analysis (Section IV-D, multi-tenant)."""

    num_tenants: int
    #: Jaccard overlap of data-page gIOVA sets, averaged over tenant pairs.
    mean_pairwise_overlap: float
    #: Number of distinct gIOVA 2 MB data pages across all tenants.
    distinct_data_pages: int


def characterize_multi_tenant(logs: Sequence[TenantLog]) -> MultiTenantCharacterization:
    """Measure gIOVA overlap between tenants (expected ~1.0 in this model)."""
    page_sets = []
    for log in logs:
        pages = {page_number(packet.giovas[1], PAGE_SHIFT_2M) for packet in log.packets}
        page_sets.append(pages)
    if len(page_sets) < 2:
        union = page_sets[0] if page_sets else set()
        return MultiTenantCharacterization(
            num_tenants=len(page_sets),
            mean_pairwise_overlap=1.0 if page_sets else 0.0,
            distinct_data_pages=len(union),
        )
    overlaps = []
    for i in range(len(page_sets)):
        for j in range(i + 1, len(page_sets)):
            a, b = page_sets[i], page_sets[j]
            union = a | b
            overlaps.append(len(a & b) / len(union) if union else 0.0)
    all_pages = set().union(*page_sets)
    return MultiTenantCharacterization(
        num_tenants=len(page_sets),
        mean_pairwise_overlap=sum(overlaps) / len(overlaps),
        distinct_data_pages=len(all_pages),
    )
