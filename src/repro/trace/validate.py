"""Sanity validation of constructed hyper-traces.

Trace-driven results are only as good as the trace; this module checks a
:class:`~repro.trace.constructor.HyperTrace` for the invariants the
performance model relies on, returning a structured report rather than
raising on first error (so tooling can show everything at once).

Checks:

* every packet's SID has a registered tenant system;
* every gIOVA walks to a valid hPA in its tenant's address space;
* packet sizes are physically plausible;
* invalidation events reference pages the tenant actually uses;
* recorded trace statistics match the packet list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.mem.pagetable import TranslationFault
from repro.trace.constructor import HyperTrace
from repro.trace.records import compute_trace_stats

#: Smallest frame the link model accepts.
MIN_PACKET_BYTES = 64
#: Jumbo-frame ceiling.
MAX_PACKET_BYTES = 9216


@dataclass
class ValidationReport:
    """Outcome of validating one trace."""

    packets_checked: int
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_invalid(self) -> None:
        """Raise ``ValueError`` summarising all problems, if any."""
        if self.errors:
            summary = "; ".join(self.errors[:5])
            more = f" (+{len(self.errors) - 5} more)" if len(self.errors) > 5 else ""
            raise ValueError(f"invalid trace: {summary}{more}")


def validate_trace(
    trace: HyperTrace, sample_stride: int = 1, max_errors: int = 100
) -> ValidationReport:
    """Validate ``trace``; check every ``sample_stride``-th packet.

    Full translation checks walk real page tables, so very long traces can
    be spot-checked with ``sample_stride > 1``; structural checks (sizes,
    SIDs, stats) always cover every packet.
    """
    if sample_stride < 1:
        raise ValueError("sample_stride must be >= 1")
    report = ValidationReport(packets_checked=len(trace.packets))
    known_sids = set(trace.system.sids())

    def note(message: str) -> bool:
        report.errors.append(message)
        return len(report.errors) >= max_errors

    for index, packet in enumerate(trace.packets):
        if packet.sid not in known_sids:
            if note(f"packet {index}: unknown SID {packet.sid}"):
                return report
            continue
        if not MIN_PACKET_BYTES <= packet.size_bytes <= MAX_PACKET_BYTES:
            if note(
                f"packet {index}: implausible size {packet.size_bytes} B"
            ):
                return report
        if len(packet.giovas) != 3:
            if note(f"packet {index}: {len(packet.giovas)} gIOVAs"):
                return report
        if index % sample_stride:
            continue
        walker = trace.system.walker_for(packet.sid)
        for giova in packet.giovas:
            try:
                walker.walk(giova)
            except TranslationFault as fault:
                if note(f"packet {index}: gIOVA {giova:#x} faults ({fault})"):
                    return report
        space = trace.system.workloads[packet.sid].space
        for page in packet.invalidations:
            try:
                space.guest_table.translate(page << 12)
            except TranslationFault:
                if note(
                    f"packet {index}: invalidation of unmapped page "
                    f"{page:#x}"
                ):
                    return report

    recomputed = compute_trace_stats(trace.packets)
    if recomputed != trace.stats:
        note("trace statistics do not match the packet list")
    return report
