"""The Trace Constructor: splice per-tenant logs into one hyper-trace.

Mirrors HyperSIO's constructor (Section IV-B): given per-tenant packet
streams, it interleaves them into a single trace using one of the paper's
schemes —

* ``RRn``: round-robin with bursts of ``n`` consecutive packets per tenant
  (RR1 and RR4 in the evaluation); models NIC queue arbitration over
  steady, long-lived connections.
* ``RANDn``: a uniformly random tenant is chosen for each burst of ``n``
  packets (RAND1 in the evaluation); models independent request arrivals.

Construction stops as soon as *any* tenant runs out of packets, avoiding
the "edge effect" where only a subset of tenants remains active.
"""

from __future__ import annotations

import itertools
import random
import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.trace.records import PacketRecord, TraceStats, compute_trace_stats
from repro.trace.tenant import BenchmarkProfile, TenantSpec, make_tenant_specs
from repro.trace.workload import HyperTenantSystem, TenantWorkload, build_system

_INTERLEAVING_RE = re.compile(r"^(RR|RAND)(\d+)$", re.IGNORECASE)


@dataclass(frozen=True)
class Interleaving:
    """Parsed interleaving scheme: kind (``RR``/``RAND``) and burst size."""

    kind: str
    burst: int

    def __post_init__(self):
        if self.kind not in ("RR", "RAND"):
            raise ValueError(f"kind must be RR or RAND, got {self.kind!r}")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")

    @classmethod
    def parse(cls, text: str) -> "Interleaving":
        """Parse the paper's notation: ``RR1``, ``RR4``, ``RAND1``, ...

        >>> Interleaving.parse("RR4")
        Interleaving(kind='RR', burst=4)
        """
        match = _INTERLEAVING_RE.match(text.strip())
        if not match:
            raise ValueError(f"cannot parse interleaving {text!r}")
        return cls(kind=match.group(1).upper(), burst=int(match.group(2)))

    def __str__(self) -> str:
        return f"{self.kind}{self.burst}"


@dataclass
class HyperTrace:
    """A constructed hyper-tenant trace plus the system behind it."""

    packets: List[PacketRecord]
    system: HyperTenantSystem
    interleaving: Interleaving
    stats: TraceStats

    @property
    def num_tenants(self) -> int:
        return self.stats.num_tenants


def interleave(
    streams: Sequence[Iterator[PacketRecord]],
    interleaving: Interleaving,
    seed: int = 0,
) -> Iterator[PacketRecord]:
    """Merge per-tenant packet iterators under an interleaving scheme.

    Stops at the first exhausted tenant (edge-effect rule).  For ``RAND``
    the tenant of each burst is drawn from a seeded generator, so traces
    are reproducible.
    """
    if not streams:
        return
    iterators = list(streams)
    rng = random.Random(seed)
    if interleaving.kind == "RR":
        while True:
            for stream in iterators:
                for _ in range(interleaving.burst):
                    try:
                        yield next(stream)
                    except StopIteration:
                        return
    else:  # RAND
        while True:
            stream = rng.choice(iterators)
            for _ in range(interleaving.burst):
                try:
                    yield next(stream)
                except StopIteration:
                    return


class TraceConstructor:
    """Build hyper-traces from tenant specs (the public construction API)."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def construct(
        self,
        specs: Sequence[TenantSpec],
        interleaving: str = "RR1",
        max_packets: Optional[int] = None,
    ) -> HyperTrace:
        """Build tenants and produce an interleaved hyper-trace.

        ``max_packets`` caps the trace length (used to bound simulation
        time while keeping per-tenant packet budgets — and therefore the
        ~1500-use data-page periods of the paper's traces — at full scale).
        """
        scheme = Interleaving.parse(interleaving)
        system, workloads = build_system(specs)
        merged = interleave(
            [workload.packet_stream() for workload in workloads],
            scheme,
            seed=self.seed,
        )
        if max_packets is not None:
            packets = list(itertools.islice(merged, max_packets))
        else:
            packets = list(merged)
        return HyperTrace(
            packets=packets,
            system=system,
            interleaving=scheme,
            stats=compute_trace_stats(packets),
        )


def construct_trace(
    profile: BenchmarkProfile,
    num_tenants: int,
    packets_per_tenant: int,
    interleaving: str = "RR1",
    seed: int = 0,
    max_packets: Optional[int] = None,
) -> HyperTrace:
    """One-call convenience: specs -> workloads -> hyper-trace.

    This is the main entry point used by experiments:

    >>> from repro.trace.tenant import IPERF3
    >>> trace = construct_trace(IPERF3, num_tenants=4, packets_per_tenant=50)
    >>> trace.num_tenants
    4
    """
    specs = make_tenant_specs(profile, num_tenants, packets_per_tenant, seed=seed)
    return TraceConstructor(seed=seed).construct(
        specs, interleaving, max_packets=max_packets
    )
