"""HyperSIO trace pipeline: workloads, log collection, trace construction."""

from repro.trace.characterize import (
    MultiTenantCharacterization,
    PageGroup,
    SingleTenantCharacterization,
    characterize_multi_tenant,
    characterize_single_tenant,
)
from repro.trace.collector import (
    MAX_TENANTS_PER_RUN,
    CollectorRun,
    LogCollector,
    TenantLog,
    collect_single_tenant,
)
from repro.trace.constructor import (
    HyperTrace,
    Interleaving,
    TraceConstructor,
    construct_trace,
    interleave,
)
from repro.trace.records import (
    PacketRecord,
    TraceStats,
    compute_trace_stats,
    load_trace,
    read_trace,
    write_trace,
)
from repro.trace.logformat import (
    LogFormatError,
    logs_equal,
    read_log,
    read_run,
    write_log,
    write_run,
)
from repro.trace.validate import ValidationReport, validate_trace
from repro.trace.tenant import (
    BENCHMARKS,
    IPERF3,
    KEYVALUE,
    MEDIASTREAM,
    WEBSEARCH,
    BenchmarkProfile,
    TenantSpec,
    make_mixed_specs,
    make_tenant_specs,
    profile_by_name,
)
from repro.trace.workload import (
    HyperTenantSystem,
    TenantWorkload,
    build_system,
    build_tenant_workload,
)

__all__ = [
    "PacketRecord",
    "TraceStats",
    "compute_trace_stats",
    "write_trace",
    "read_trace",
    "load_trace",
    "BenchmarkProfile",
    "TenantSpec",
    "make_tenant_specs",
    "make_mixed_specs",
    "profile_by_name",
    "LogFormatError",
    "write_log",
    "read_log",
    "write_run",
    "read_run",
    "logs_equal",
    "ValidationReport",
    "validate_trace",
    "BENCHMARKS",
    "IPERF3",
    "KEYVALUE",
    "MEDIASTREAM",
    "WEBSEARCH",
    "HyperTenantSystem",
    "TenantWorkload",
    "build_system",
    "build_tenant_workload",
    "LogCollector",
    "TenantLog",
    "CollectorRun",
    "MAX_TENANTS_PER_RUN",
    "collect_single_tenant",
    "TraceConstructor",
    "HyperTrace",
    "Interleaving",
    "construct_trace",
    "interleave",
    "characterize_single_tenant",
    "characterize_multi_tenant",
    "SingleTenantCharacterization",
    "MultiTenantCharacterization",
    "PageGroup",
]
