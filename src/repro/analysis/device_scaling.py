"""Device-scaling experiment: N device paths behind one shared chipset.

The paper evaluates one device + chipset pair; a hyper-tenant host puts
several NICs/accelerators behind the same IOMMU.  This driver sweeps the
fabric dimension (``devices.count``) at a fixed tenant population and
reports what the shared chipset does to each device: per-device achieved
bandwidth, the shared IOTLB's hit rate on DevTLB misses, and the mean
time walks queue behind *other devices'* walks in the bounded walker pool
— the cross-device contention a per-device-only analysis cannot see.

Tenants are striped round-robin over devices, so adding devices divides
each DevTLB's working set while multiplying pressure on the shared
chipset; walkers are bounded so the contention has somewhere to show up.

Run it via ``repro-sim experiment device_scaling`` (any ``--scale``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import ExperimentTable
from repro.analysis.scale import DEFAULT, RunScale
from repro.analysis.sweeps import run_point
from repro.core.config import DeviceConfig, hypertrio_config

#: Bounded walker pool used by the sweep; the shared-chipset queueing
#: column is identically zero with unbounded walkers.
WALKERS = 4


def device_scaling(
    scale: Optional[RunScale] = None,
    device_counts: Sequence[int] = (1, 2, 4, 8),
    benchmark: str = "mediastream",
) -> ExperimentTable:
    """Fabric sweep: bandwidth and shared-chipset contention vs devices."""
    scale = scale or DEFAULT
    num_tenants = max(scale.tenant_counts)
    table = ExperimentTable(
        experiment_id="device_scaling",
        title=(
            f"I/O fabric scaling: {benchmark}, {num_tenants} tenants, "
            f"{WALKERS} shared walkers"
        ),
        columns=[
            "devices",
            "aggregate Gb/s",
            "per-device Gb/s (min/max)",
            "devtlb hit %",
            "shared iotlb hit %",
            "walker queue ns/walk",
            "drops",
        ],
    )
    for count in device_counts:
        config = hypertrio_config().with_overrides(
            iommu_walkers=WALKERS,
            devices=DeviceConfig(count=count, sid_map="round_robin"),
        )
        point = run_point(config, benchmark, num_tenants, "RR1", scale)
        result = point.result
        if result.device_results:
            per_device = [
                dev.achieved_bandwidth_gbps for dev in result.device_results
            ]
            per_device_cell = f"{min(per_device):.1f} / {max(per_device):.1f}"
            walker_mean = result.fabric.walker_mean_queue_delay_ns
        else:
            per_device_cell = f"{result.achieved_bandwidth_gbps:.1f}"
            # Single-device results omit fabric aggregates by design
            # (serialisation byte-identity); no cross-device queueing exists.
            walker_mean = "-"
        table.add_row(
            count,
            result.achieved_bandwidth_gbps,
            per_device_cell,
            result.hit_rate("devtlb") * 100.0,
            result.hit_rate("iotlb") * 100.0,
            walker_mean,
            result.packets.dropped,
        )
    table.add_note(
        "Tenants stripe round-robin over devices: each DevTLB serves "
        f"{num_tenants}/N tenants while every miss contends for the one "
        "chipset (shared IOTLB, nested/PTE caches, walker pool)."
    )
    table.add_note(
        "Aggregate bandwidth can exceed one link: each device path has its "
        "own link; the chipset is the only shared resource."
    )
    return table
