"""Run-scale control for experiments and benchmarks.

The paper's traces hold up to 70 M translation requests; a pure-Python
model replays scaled-down traces whose *shape* (page-reuse periods,
per-tenant spreads, interleaving) matches the originals.  A
:class:`RunScale` bundles every scaling knob; presets are selected with the
``REPRO_BENCH_SCALE`` environment variable (``smoke`` / ``default`` /
``full``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple

#: Environment variable selecting a preset for the benchmark harness.
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"


@dataclass(frozen=True)
class RunScale:
    """Scaling knobs shared by all experiment drivers.

    Attributes
    ----------
    tenant_counts:
        Tenant sweep points (the paper uses 4..1024).
    interleavings:
        Inter-tenant orders to evaluate.
    benchmarks:
        Benchmark names to run for non-headline figures (the headline
        Figure 10 always runs all three).
    max_packets:
        Trace-length cap for the performance model.
    packets_per_tenant:
        Per-tenant packet budget *before* the cap; large values keep the
        paper's ~1500-use data-page periods intact (the constructor is
        lazy, so unconsumed budget costs nothing).
    warmup_fraction:
        Fraction of the trace excluded from the bandwidth measurement as
        cold-start transient (the paper measures steady state).
    """

    name: str
    tenant_counts: Tuple[int, ...]
    interleavings: Tuple[str, ...]
    benchmarks: Tuple[str, ...]
    max_packets: int
    packets_per_tenant: int = 200_000
    warmup_fraction: float = 0.25

    def packets_for(self, num_tenants: int) -> int:
        """Trace length for one run: at least ~12 rounds, capped."""
        return min(self.max_packets, max(4000, 16 * num_tenants))

    def warmup_for(self, trace_packets: int) -> int:
        """Warm-up packets excluded from the measurement."""
        return int(trace_packets * self.warmup_fraction)


SMOKE = RunScale(
    name="smoke",
    tenant_counts=(4, 16),
    interleavings=("RR1",),
    benchmarks=("mediastream",),
    max_packets=1500,
)

DEFAULT = RunScale(
    name="default",
    tenant_counts=(4, 64, 1024),
    interleavings=("RR1",),
    benchmarks=("mediastream",),
    max_packets=16_000,
)

FULL = RunScale(
    name="full",
    tenant_counts=(4, 16, 64, 256, 1024),
    interleavings=("RR1", "RR4", "RAND1"),
    benchmarks=("iperf3", "mediastream", "websearch"),
    max_packets=24_000,
)

_PRESETS = {"smoke": SMOKE, "default": DEFAULT, "full": FULL}


def current_scale() -> RunScale:
    """The preset selected by :data:`SCALE_ENV_VAR` (default: ``default``)."""
    name = os.environ.get(SCALE_ENV_VAR, "default").strip().lower()
    try:
        return _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"{SCALE_ENV_VAR}={name!r} is not one of {sorted(_PRESETS)}"
        ) from None
