"""Performance-isolation study (extension of the paper's Section III claim).

The P-DevTLB's stated purpose is that "a low-bandwidth tenant [cannot]
evict translations for high-bandwidth tenants".  The paper evaluates this
indirectly through aggregate bandwidth; this study measures it directly:
a population of well-behaved iperf3 *victims* shares the device with one
*antagonist* whose working set is deliberately enormous (hundreds of data
pages, near-random access).  We compare victim throughput with and
without the antagonist, under the unpartitioned Base DevTLB and the
partitioned HyperTRIO DevTLB.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.analysis.fairness import fairness_report, victim_slowdown
from repro.analysis.report import ExperimentTable
from repro.analysis.scale import DEFAULT, RunScale
from repro.core.config import ArchConfig, base_config, hypertrio_config
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import TraceConstructor
from repro.trace.tenant import IPERF3, BenchmarkProfile, make_mixed_specs

#: The antagonist: a tenant whose driver touches hundreds of 2 MB pages in
#: a near-random order — worst case for any shared translation cache.
ANTAGONIST = BenchmarkProfile(
    name="antagonist",
    num_data_pages=256,
    uses_per_page=4,
    jump_probability=0.5,
    init_pages=0,
)


def _run(
    config: ArchConfig,
    num_victims: int,
    with_antagonist: bool,
    packets: int,
    seed: int = 0,
):
    assignments = [(IPERF3, num_victims)]
    if with_antagonist:
        assignments.append((ANTAGONIST, 1))
    specs = make_mixed_specs(tuple(assignments), packets_per_tenant=200_000,
                             seed=seed)
    trace = TraceConstructor(seed=seed).construct(specs, "RR1",
                                                  max_packets=packets)
    return HyperSimulator(config, trace).run(warmup_packets=packets // 4)


def isolation_study(scale: Optional[RunScale] = None) -> ExperimentTable:
    """Victim slowdown caused by one antagonist, Base vs HyperTRIO.

    Reports, per victim-count: victim throughput retention (1.0 = the
    antagonist had no effect) and Jain's fairness index of the contended
    run, for both designs.
    """
    scale = scale or DEFAULT
    table = ExperimentTable(
        experiment_id="Isolation",
        title="Victim throughput retention with one cache-thrashing antagonist",
        columns=[
            "victims",
            "Base retention",
            "HyperTRIO retention",
            "Base contended util %",
            "HyperTRIO contended util %",
        ],
    )
    counts = (7, 15) if scale.name == "smoke" else (7, 15, 31)
    packets = min(scale.max_packets, 8000)
    for num_victims in counts:
        row = [num_victims]
        utilizations = []
        for config in (base_config(), hypertrio_config()):
            baseline = _run(config, num_victims, False, packets)
            contended = _run(config, num_victims, True, packets)
            retention = victim_slowdown(
                baseline, contended, victim_sids=list(range(num_victims))
            )
            row.append(retention)
            utilizations.append(contended.link_utilization * 100.0)
        table.add_row(*row, *utilizations)
    table.add_note(
        "Retention = victim packet rate with antagonist / without (1.0 = "
        "perfect isolation).  The partitioned design confines the "
        "antagonist to its own DevTLB partition."
    )
    table.add_note(
        "Extension experiment: the paper states the isolation property "
        "(Section III) but does not plot it directly."
    )
    return table


def antagonist_profile(num_data_pages: int = 256,
                       jump_probability: float = 0.5) -> BenchmarkProfile:
    """Build a custom antagonist for user experiments."""
    return dataclasses.replace(
        ANTAGONIST,
        num_data_pages=num_data_pages,
        jump_probability=jump_probability,
    )
