"""Experiment drivers, sweeps, scaling presets, and report rendering."""

from repro.analysis.experiments import (
    ALL_EXPERIMENTS,
    figure4,
    figure5,
    figure8,
    figure9,
    figure10,
    figure11a,
    figure11b,
    figure11c,
    figure12a,
    figure12b,
    figure12c,
    partitioned_only_config,
    table1,
    table2,
    table3,
    table4,
)
from repro.analysis.ascii_plot import AsciiChart, chart_from_columns
from repro.analysis.compare import (
    ResultComparison,
    compare_results,
    comparison_table,
)
from repro.analysis.fairness import (
    FairnessReport,
    fairness_report,
    jains_index,
    victim_slowdown,
)
from repro.analysis.isolation import antagonist_profile, isolation_study
from repro.analysis.replication import ReplicatedPoint, replicate
from repro.analysis.report import ExperimentTable
from repro.analysis.reuse import (
    ReuseProfile,
    devtlb_reuse_profile,
    reuse_distances,
    reuse_profile,
)
from repro.analysis.scale import DEFAULT, FULL, SMOKE, RunScale, current_scale
from repro.analysis.sweeps import (
    SweepPoint,
    cached_trace,
    clear_trace_cache,
    run_point,
    sweep_tenants,
    utilization_by_count,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentTable",
    "AsciiChart",
    "chart_from_columns",
    "FairnessReport",
    "fairness_report",
    "jains_index",
    "victim_slowdown",
    "isolation_study",
    "antagonist_profile",
    "ReuseProfile",
    "reuse_distances",
    "reuse_profile",
    "devtlb_reuse_profile",
    "ResultComparison",
    "compare_results",
    "comparison_table",
    "ReplicatedPoint",
    "replicate",
    "RunScale",
    "SMOKE",
    "DEFAULT",
    "FULL",
    "current_scale",
    "SweepPoint",
    "run_point",
    "sweep_tenants",
    "utilization_by_count",
    "cached_trace",
    "clear_trace_cache",
    "partitioned_only_config",
    "table1",
    "table2",
    "table3",
    "table4",
    "figure4",
    "figure5",
    "figure8",
    "figure9",
    "figure10",
    "figure11a",
    "figure11b",
    "figure11c",
    "figure12a",
    "figure12b",
    "figure12c",
]
