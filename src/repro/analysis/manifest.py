"""Manifest of every reproduced experiment: driver, paper claim, verdict.

This is the single source of truth tying each table/figure driver to what
the paper reports and to this model's known deviations.  The
EXPERIMENTS.md generator renders it; tests check it stays complete and
consistent with the driver registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.analysis import experiments
from repro.analysis.scale import RunScale


@dataclass(frozen=True)
class ExperimentEntry:
    """One reproduced experiment."""

    key: str
    driver: Callable
    #: What the paper's table/figure reports (condensed).
    paper_claim: str
    #: How this model's measurement relates to the claim.
    shape_verdict: str

    def kwargs_for(self, scale: RunScale) -> Dict:
        """Driver keyword arguments appropriate at ``scale``."""
        if self.key == "table3":
            tenants = {"smoke": 16, "default": 256, "full": 1024}[scale.name]
            return {"num_tenants": tenants, "packets_per_tenant": 1200}
        if self.key == "figure8":
            return {"packets": 10_000 if scale.name == "smoke" else 95_000}
        if (
            self.key.startswith("figure")
            or self.key
            in ("device_scaling", "resilience", "service_saturation")
        ):
            return {"scale": scale}
        return {}


MANIFEST: Tuple[ExperimentEntry, ...] = (
    ExperimentEntry(
        "table1", experiments.table1,
        "Three hosts (AMD Ryzen 3900X, Xeon E7-4870, Xeon E3 client) used "
        "for the hardware case studies.",
        "Reference data only; the hosts are replaced by the performance "
        "model.",
    ),
    ExperimentEntry(
        "table2", experiments.table2,
        "PCIe 450 ns one-way, DRAM 50 ns, IOTLB hit 2 ns, 24-access PTW, "
        "1542 B packets, 200 Gb/s link, 512/1024-entry 16-way page caches.",
        "All parameters adopted verbatim; the 24-access walk is walked "
        "over real radix tables rather than charged as a constant.",
    ),
    ExperimentEntry(
        "table3", experiments.table3,
        "iperf3 108,510/68,079 max/min translations per tenant (69.7M "
        "total at 1024 tenants); mediastream 73,657/5,520; websearch "
        "108,513/43,362.",
        "Counts are scaled; the scale-free min/max ratios match the paper "
        "per benchmark.",
    ),
    ExperimentEntry(
        "table4", experiments.table4,
        "Base: PTB 1, unpartitioned 64-entry 8-way LFU DevTLB, 512/1024 "
        "L2/L3 TLBs, no prefetch.  HyperTRIO: PTB 32, 8/32/64 partitions, "
        "8-entry prefetch buffer, 48-access stride, 2 pages/tenant.",
        "Identical except the prefetch stride (36 here vs 48): the "
        "host-tuned just-in-time lead depends on modelled latencies.",
    ),
    ExperimentEntry(
        "figure4", experiments.figure4,
        "PTE miss rate <0.1% below 80 connections rising to 4.3% at 120; "
        "nested page reads rise >400x from 80 to 120 connections.",
        "Monotone rise reproduced; absolute rates are higher because the "
        "modelled page-walk caches saturate before 40 connections.",
    ),
    ExperimentEntry(
        "figure5", experiments.figure5,
        "Native rises to ~9.4 Gb/s and stays flat; VF matches the link up "
        "to ~8 connections then collapses toward ~0.5 Gb/s beyond 16.",
        "Shape reproduced: native saturates, VF peaks early and collapses "
        "well below native.",
    ),
    ExperimentEntry(
        "figure8", experiments.figure8,
        "Three page groups: 1 ring page every packet (~30x hotter than "
        "data pages), 32 x 2 MB data pages used ~1500 times sequentially "
        "in ring order, ~70 cold init pages.",
        "Groups, frequency gap, ~1500-use runs and periodicity all "
        "reproduce ('ring' here includes the per-packet mailbox page).",
    ),
    ExperimentEntry(
        "figure9", experiments.figure9,
        "Full 200 Gb/s up to ~4 connections for a 64-entry 8-way DevTLB, "
        "then eviction-driven collapse; larger DevTLBs delay, not avoid it.",
        "Reproduced: near line rate at 1-4 connections, collapse by "
        "32-64; the 1024-entry variant holds on longer and converges.",
    ),
    ExperimentEntry(
        "figure10", experiments.figure10,
        "Base <=15% of the link beyond 32 tenants; HyperTRIO up to 100% "
        "at 1024 tenants for RR orders and up to 80% for RAND1.",
        "RR shapes reproduce (Base ~1-2%, HyperTRIO 92-100% at 1024).  "
        "Our Base collapses deeper and RAND1 lands near ~40%: both stem "
        "from our costlier unwarmed walk path (see docs/MODEL.md).",
    ),
    ExperimentEntry(
        "figure11a", experiments.figure11a,
        "A 1024-entry DevTLB helps up to ~64 tenants; beyond ~128 both "
        "sizes give the same collapsed utilisation.",
        "Reproduced: the 16x DevTLB wins mid-range and converges at "
        "hyper-tenant scale.",
    ),
    ExperimentEntry(
        "figure11b", experiments.figure11b,
        "LFU outperforms LRU mid-range (up to 2x for iperf3 at 16 "
        "tenants); oracle slightly better; none scale past ~64 tenants.",
        "Ordering (oracle >= LFU >= LRU) and the universal collapse "
        "reproduce.",
    ),
    ExperimentEntry(
        "figure11c", experiments.figure11c,
        "Fully associative + oracle: high utilisation only while tenants "
        "x active-set (8/32/36) fits 64 entries; low beyond ~8 tenants.",
        "Reproduced: full utilisation while the product fits, collapse "
        "beyond.",
    ),
    ExperimentEntry(
        "figure12a", experiments.figure12a,
        "Partitioning keeps utilisation high until tenants share "
        "partitions; beats size/policy changes but insufficient alone.",
        "Reproduced: partitioned >= base everywhere, saturating well "
        "below the link at 256+ tenants.",
    ),
    ExperimentEntry(
        "figure12b", experiments.figure12b,
        "PTB=8 reaches full bandwidth up to 16 tenants; PTB=32 gives "
        "~136 Gb/s (68%) at 1024 tenants.",
        "Monotone PTB benefit and the large factor reproduce; our PTB=32 "
        "plateau sits lower (~40-45%) due to costlier unwarmed walks.",
    ),
    ExperimentEntry(
        "figure12c", experiments.figure12c,
        "Prefetching adds up to ~30 points for websearch at hyper-tenant "
        "scale; the prefetcher supplies ~45% of translations at 1024.",
        "Reproduced and amplified: +45-55 points at 1024 tenants with "
        "~60% of translations prefetch-supplied.",
    ),
    ExperimentEntry(
        "device_scaling", experiments.device_scaling,
        "Not in the paper — an extension: N device paths (DevTLB + PTB + "
        "Prefetch Unit each) behind the paper's one shared chipset, with "
        "tenants striped round-robin over devices.",
        "Per-device bandwidth holds under fabric scaling while "
        "shared-chipset contention (IOTLB hit rate, walker queueing) "
        "grows with device count, as expected for a shared IOMMU.",
    ),
    ExperimentEntry(
        "resilience", experiments.resilience,
        "Not in the paper — an extension: Base vs HyperTRIO under seeded "
        "fault plans (transient translation faults with retry/backoff, "
        "tenant invalidation storms) across fault rates.",
        "HyperTRIO's higher hit rates shelter it: fewer packets reach "
        "the faultable walk path, so bandwidth and tail latency degrade "
        "more slowly than Base as the fault rate rises.",
    ),
    ExperimentEntry(
        "service_saturation", experiments.service_saturation,
        "Not in the paper — an extension: the translation-as-a-service "
        "front end (asyncio TCP, per-tenant admission) under concurrent "
        "trace-replay load generators, swept over client and tenant "
        "counts.",
        "Throughput saturates with client count (one dispatcher "
        "serializes the engine) while client-observed RTT tails grow; "
        "modeled translation percentiles stay flat.  Wall-clock columns "
        "are machine-dependent; only the modeled columns and the shapes "
        "are claims.",
    ),
)


def manifest_by_key() -> Dict[str, ExperimentEntry]:
    """The manifest as a key-indexed dictionary."""
    return {entry.key: entry for entry in MANIFEST}
