"""Per-tenant throughput and fairness metrics.

The paper's partitioning argument is about *performance isolation*: "it
prevents a low-bandwidth tenant from evicting translations for
high-bandwidth tenants."  These helpers quantify that claim from a
:class:`~repro.core.results.SimulationResult`: per-tenant packet
throughput, Jain's fairness index, and slowdown of victims in the
presence of an antagonist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from repro.core.results import SimulationResult


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 is perfectly fair, 1/n is worst.

    >>> jains_index([1.0, 1.0, 1.0])
    1.0
    >>> round(jains_index([1.0, 0.0, 0.0]), 3)
    0.333
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError("jains_index needs at least one value")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0  # everyone equally starved
    return (total * total) / (len(values) * squares)


@dataclass(frozen=True)
class TenantThroughput:
    """One tenant's share of the processed traffic."""

    sid: int
    packets: int
    share: float


@dataclass
class FairnessReport:
    """Fairness analysis of one simulation run."""

    per_tenant: Dict[int, TenantThroughput]
    jain_index: float
    min_share: float
    max_share: float

    @property
    def max_min_ratio(self) -> float:
        """Spread of tenant shares (1.0 = perfectly even)."""
        return self.max_share / self.min_share if self.min_share else float("inf")


def fairness_report(result: SimulationResult) -> FairnessReport:
    """Compute per-tenant shares and Jain's index from a run's result."""
    processed: Mapping[int, int] = result.packets.per_tenant_processed
    if not processed:
        raise ValueError("result contains no processed packets")
    total = sum(processed.values())
    per_tenant = {
        sid: TenantThroughput(sid=sid, packets=count, share=count / total)
        for sid, count in sorted(processed.items())
    }
    shares = [tenant.share for tenant in per_tenant.values()]
    return FairnessReport(
        per_tenant=per_tenant,
        jain_index=jains_index(shares),
        min_share=min(shares),
        max_share=max(shares),
    )


def victim_slowdown(
    baseline: SimulationResult,
    contended: SimulationResult,
    victim_sids: Sequence[int],
) -> float:
    """Mean victim throughput degradation between two runs.

    Compares the victims' per-tenant packet rates (packets per simulated
    nanosecond) between a baseline run and a run with an antagonist.
    Returns the mean ratio ``contended_rate / baseline_rate`` across
    victims — 1.0 means perfect isolation.
    """
    if not victim_sids:
        raise ValueError("need at least one victim SID")
    ratios = []
    for sid in victim_sids:
        base_packets = baseline.packets.per_tenant_processed.get(sid, 0)
        cont_packets = contended.packets.per_tenant_processed.get(sid, 0)
        base_rate = base_packets / baseline.elapsed_ns
        cont_rate = cont_packets / contended.elapsed_ns
        if base_rate == 0:
            raise ValueError(f"victim {sid} processed nothing in the baseline")
        ratios.append(cont_rate / base_rate)
    return sum(ratios) / len(ratios)
