"""Resilience experiment: translation throughput under injected faults.

The paper evaluates HyperTRIO on a healthy host.  This driver extends the
evaluation with the failure modes a hyper-tenant deployment actually sees:
transient translation faults (walker not-present responses that force a
bounded retry-then-drop) and invalidation storms (a tenant's mappings
torn down mid-run, flushing every translation structure that cached
them).  For each fault rate it runs Base and HyperTRIO over the same
seeded :class:`~repro.faults.plan.FaultPlan`, so the two configurations
see byte-identical fault schedules and the comparison isolates the
architecture, not the noise.

The question the table answers: does HyperTRIO's extra translation state
(nested/PTE caches, prefetch) make it *more* fragile under faults and
storms, or does the higher hit rate mean fewer packets ever reach the
faultable walk path?

Run it via ``repro-sim experiment resilience`` (any ``--scale``) or the
parallel runner (``repro-sim run --experiment resilience``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.report import ExperimentTable
from repro.analysis.scale import DEFAULT, RunScale
from repro.analysis.sweeps import run_point
from repro.core.config import base_config, hypertrio_config
from repro.faults.plan import (
    FaultPlan,
    InvalidationStormSpec,
    TranslationFaultSpec,
)

#: Plan seed — fixed so every point of the table is bit-reproducible.
PLAN_SEED = 13

#: Tenants hit by invalidation storms, as fractions of the population and
#: of the estimated run horizon: (sid_fraction, time_fraction).
STORM_SCHEDULE = ((0.0, 0.25), (0.5, 0.50), (0.25, 0.75))


def _fault_plan(
    rate: float, num_tenants: int, horizon_ns: float
) -> Optional[FaultPlan]:
    """The shared plan for one fault-rate row (``None`` for the baseline
    row, so it stays on the zero-cost no-injector path)."""
    if rate <= 0.0:
        return None
    storms = tuple(
        InvalidationStormSpec(
            sid=int(sid_fraction * num_tenants) % num_tenants,
            at_ns=time_fraction * horizon_ns,
        )
        for sid_fraction, time_fraction in STORM_SCHEDULE
    )
    return FaultPlan(
        seed=PLAN_SEED,
        translation_faults=(TranslationFaultSpec(probability=rate),),
        invalidation_storms=storms,
    )


def resilience(
    scale: Optional[RunScale] = None,
    fault_rates: Sequence[float] = (0.0, 0.002, 0.01, 0.05),
    benchmark: str = "mediastream",
) -> ExperimentTable:
    """Bandwidth and drop breakdown vs translation-fault rate."""
    scale = scale or DEFAULT
    num_tenants = max(scale.tenant_counts)
    table = ExperimentTable(
        experiment_id="resilience",
        title=(
            f"resilience under injected faults: {benchmark}, "
            f"{num_tenants} tenants, plan seed {PLAN_SEED}"
        ),
        columns=[
            "fault rate",
            "config",
            "Gb/s",
            "util %",
            "drops",
            "by cause",
            "p99 ns",
            "inval msgs",
        ],
    )
    for rate in fault_rates:
        for config in (base_config(), hypertrio_config()):
            # Horizon estimate: packets arrive back-to-back at line rate,
            # so storms placed at fractions of packets x interarrival land
            # inside the run for either configuration.
            horizon_ns = (
                scale.packets_for(num_tenants)
                * config.timing.packet_interarrival_ns
            )
            plan = _fault_plan(rate, num_tenants, horizon_ns)
            point = run_point(
                config, benchmark, num_tenants, "RR1", scale, fault_plan=plan
            )
            result = point.result
            causes = result.packets.drop_causes
            cause_cell = (
                ", ".join(
                    f"{cause}={causes[cause]}" for cause in sorted(causes)
                )
                or "-"
            )
            table.add_row(
                f"{rate:g}",
                config.name,
                result.achieved_bandwidth_gbps,
                result.link_utilization * 100.0,
                result.packets.dropped,
                cause_cell,
                result.percentiles.get("p99_ns", 0.0),
                result.invalidation_messages,
            )
    table.add_note(
        "Every faulted row replays the same seeded FaultPlan: a global "
        "translation-fault probability plus three invalidation storms at "
        "25/50/75% of the run, so Base and HyperTRIO face identical "
        "schedules."
    )
    table.add_note(
        "Faulted walks retry through the IOMMU with capped exponential "
        "backoff (timing.fault_max_retries / fault_backoff_ns) and drop "
        "when the budget is exhausted; 'by cause' splits the drop counter."
    )
    return table
