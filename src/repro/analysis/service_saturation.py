"""Service saturation sweep: client count x tenant count vs throughput.

Not in the paper — an extension exercising the translation *service*
(PR 6) rather than the offline model: for every (tenants, clients)
point an in-process :class:`~repro.service.server.ServiceServer` is
started on a loopback socket and ``clients`` concurrent
:class:`~repro.service.client.ServiceClient` load generators replay
disjoint round-robin slices of one mediastream trace through it.

Measured per point:

* wall-clock request throughput (requests/s) and total wall time;
* client-observed RTT p50/p99 (pipelined: queueing + service time under
  the send window) — the *service* tail latency;
* the modeled translation p99 from the engine (virtual time) — the
  *model* tail latency, unchanged by client count;
* modeled drops (PTB overflow inside the engine).

Wall-clock columns are machine- and scheduler-dependent: this driver
reproduces *shapes* (single-dispatcher saturation, RTT growth with
concurrency), not absolute numbers.  The modeled columns are
deterministic for a given trace but depend on the global submission
order, which interleaves across clients — so they are only
packet-for-packet comparable with offline simulation at ``clients=1``
(see docs/SERVICE.md).
"""

from __future__ import annotations

import asyncio
import time
from typing import List, Optional, Tuple

from repro.analysis.report import ExperimentTable
from repro.analysis.scale import DEFAULT, RunScale
from repro.core.config import hypertrio_config
from repro.service.client import ServiceClient
from repro.service.server import ServiceServer
from repro.service.engine import ServiceEngine
from repro.trace.constructor import construct_trace
from repro.trace.tenant import profile_by_name

#: (clients axis, tenants axis, total packets) per scale preset.
_SWEEPS = {
    "smoke": ((1, 2), (4,), 400),
    "default": ((1, 2, 4), (8, 32), 1500),
    "full": ((1, 2, 4, 8), (8, 32, 128), 4000),
}


def _percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (empty -> 0.0)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


async def _run_point(
    num_tenants: int, num_clients: int, packets: int, window: int
) -> Tuple[float, int, List[float], float, int]:
    """One sweep point; returns (wall_s, replies, rtts, model_p99, drops)."""
    trace = construct_trace(
        profile_by_name("mediastream"),
        num_tenants=num_tenants,
        packets_per_tenant=DEFAULT.packets_per_tenant,
        max_packets=packets,
    )
    engine = ServiceEngine(hypertrio_config(), trace)
    server = ServiceServer(engine)
    await server.start()
    # Disjoint round-robin slices: together exactly the trace, no overlap.
    chunks = [trace.packets[i::num_clients] for i in range(num_clients)]
    clients = [
        ServiceClient("127.0.0.1", server.port) for _ in range(num_clients)
    ]

    async def drive(client: ServiceClient, chunk) -> int:
        await client.connect()
        try:
            return len(await client.replay(chunk, window=window))
        finally:
            await client.close()

    started = time.monotonic()
    replies = await asyncio.gather(
        *(drive(client, chunk) for client, chunk in zip(clients, chunks))
    )
    wall = time.monotonic() - started
    rtts: List[float] = []
    for client in clients:
        rtts.extend(client.rtts)
    result = engine.peek_result()
    model_p99 = result.percentiles.get("p99_ns", 0.0)
    drops = result.packets.dropped
    await server.shutdown()
    return wall, sum(replies), rtts, model_p99, drops


def service_saturation(scale: Optional[RunScale] = None) -> ExperimentTable:
    """Service throughput and tail latency vs concurrent load generators."""
    scale = scale or DEFAULT
    clients_axis, tenants_axis, packets = _SWEEPS.get(
        scale.name, _SWEEPS["default"]
    )
    table = ExperimentTable(
        experiment_id="Service saturation",
        title="Translation service under concurrent trace replay "
        "(HyperTRIO config, mediastream)",
        columns=[
            "tenants",
            "clients",
            "requests",
            "wall ms",
            "req/s",
            "rtt p50 us",
            "rtt p99 us",
            "model p99 ns",
            "model drops",
        ],
    )
    for num_tenants in tenants_axis:
        for num_clients in clients_axis:
            wall, replies, rtts, model_p99, drops = asyncio.run(
                _run_point(num_tenants, num_clients, packets, window=64)
            )
            table.add_row(
                num_tenants,
                num_clients,
                replies,
                wall * 1e3,
                replies / wall if wall > 0 else 0.0,
                _percentile(rtts, 0.50) * 1e6,
                _percentile(rtts, 0.99) * 1e6,
                model_p99,
                drops,
            )
    table.add_note(
        "Wall-clock columns (wall ms, req/s, RTT percentiles) are machine-"
        "dependent and nondeterministic; only their shapes are meaningful. "
        "The single dispatcher serializes the engine, so req/s saturates "
        "with client count while RTT tails grow."
    )
    table.add_note(
        "Modeled columns depend on the cross-client submission order; "
        "packet-exact offline parity holds only for clients=1 "
        "(docs/SERVICE.md)."
    )
    return table
