"""Parameter-sweep helpers shared by the experiment drivers.

Traces are expensive to construct (page tables for every tenant), so a
small keyed cache shares them between configurations evaluated at the same
sweep point: simulators only read the tenant systems, never mutate them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.scale import RunScale
from repro.core.config import ArchConfig
from repro.core.results import SimulationResult
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import HyperTrace, construct_trace
from repro.trace.tenant import profile_by_name

#: Traces kept alive at once (each 1024-tenant trace is tens of MB).
_TRACE_CACHE_CAPACITY = 8

_trace_cache: "OrderedDict[Tuple, HyperTrace]" = OrderedDict()


def cached_trace(
    benchmark: str,
    num_tenants: int,
    interleaving: str,
    scale: RunScale,
    seed: int = 0,
) -> HyperTrace:
    """Construct (or reuse) the trace for one sweep point."""
    max_packets = scale.packets_for(num_tenants)
    key = (
        benchmark,
        num_tenants,
        interleaving,
        scale.packets_per_tenant,
        max_packets,
        seed,
    )
    trace = _trace_cache.get(key)
    if trace is not None:
        _trace_cache.move_to_end(key)
        return trace
    trace = construct_trace(
        profile_by_name(benchmark),
        num_tenants=num_tenants,
        packets_per_tenant=scale.packets_per_tenant,
        interleaving=interleaving,
        seed=seed,
        max_packets=max_packets,
    )
    _trace_cache[key] = trace
    while len(_trace_cache) > _TRACE_CACHE_CAPACITY:
        _trace_cache.popitem(last=False)
    return trace


def clear_trace_cache() -> None:
    """Drop all cached traces (tests use this to bound memory)."""
    _trace_cache.clear()


@dataclass(frozen=True)
class SweepPoint:
    """One (config, benchmark, tenants, interleaving) evaluation."""

    config_name: str
    benchmark: str
    num_tenants: int
    interleaving: str
    result: SimulationResult

    @property
    def utilization_percent(self) -> float:
        return self.result.link_utilization * 100.0

    @property
    def bandwidth_gbps(self) -> float:
        return self.result.achieved_bandwidth_gbps


def run_point(
    config: ArchConfig,
    benchmark: str,
    num_tenants: int,
    interleaving: str,
    scale: RunScale,
    native: bool = False,
    seed: int = 0,
) -> SweepPoint:
    """Simulate one sweep point at the given scale."""
    trace = cached_trace(benchmark, num_tenants, interleaving, scale, seed=seed)
    warmup = scale.warmup_for(len(trace.packets))
    simulator = HyperSimulator(config, trace, native=native)
    result = simulator.run(warmup_packets=warmup)
    return SweepPoint(
        config_name=config.name,
        benchmark=benchmark,
        num_tenants=num_tenants,
        interleaving=interleaving,
        result=result,
    )


def sweep_tenants(
    configs: Iterable[ArchConfig],
    benchmarks: Iterable[str],
    interleavings: Iterable[str],
    scale: RunScale,
    tenant_counts: Optional[Iterable[int]] = None,
) -> List[SweepPoint]:
    """Full cartesian sweep used by the scalability figures."""
    counts = tuple(tenant_counts) if tenant_counts is not None else scale.tenant_counts
    points: List[SweepPoint] = []
    for benchmark in benchmarks:
        for interleaving in interleavings:
            for count in counts:
                for config in configs:
                    points.append(
                        run_point(config, benchmark, count, interleaving, scale)
                    )
    return points


def utilization_by_count(points: Iterable[SweepPoint]) -> Dict[Tuple, Dict[int, float]]:
    """Group sweep points into series: (config, benchmark, interleaving) ->
    {tenants: utilization%}."""
    series: Dict[Tuple, Dict[int, float]] = {}
    for point in points:
        key = (point.config_name, point.benchmark, point.interleaving)
        series.setdefault(key, {})[point.num_tenants] = point.utilization_percent
    return series
