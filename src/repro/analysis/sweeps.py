"""Parameter-sweep helpers shared by the experiment drivers.

Traces are expensive to construct (page tables for every tenant), so a
small keyed cache shares them between configurations evaluated at the same
sweep point: simulators only read the tenant systems, never mutate them.

The cache is strictly **per process**.  Parallel runs through
:mod:`repro.runner` execute sweep points in worker processes, each of which
keeps its own bounded cache (primed by the pool initializer); the cache in
the orchestrating process is never consulted by workers.  Hit/miss counters
are exposed via :func:`trace_cache_stats` so the runner's telemetry can
report cache effectiveness per worker.

:func:`run_point` additionally supports an *execution hook* (see
:func:`point_hook`): when installed, the hook may answer a sweep point with
a precomputed :class:`~repro.core.results.SimulationResult` instead of
simulating in-process.  The parallel orchestrator uses this to run every
experiment driver unmodified: a planning pass records the points a driver
asks for, the runner executes them in worker processes, and a replay pass
feeds the finished results back through the same hook.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.scale import RunScale
from repro.core.config import ArchConfig
from repro.core.results import SimulationResult
from repro.sim.simulator import simulate
from repro.trace.constructor import HyperTrace, construct_trace
from repro.trace.tenant import profile_by_name

#: Default number of traces kept alive at once per process (each
#: 1024-tenant trace is tens of MB).  The effective capacity can be lowered
#: or raised per process with :func:`set_trace_cache_capacity` — worker
#: pools do this in their initializer so memory use is bounded per worker,
#: not per machine.
_TRACE_CACHE_CAPACITY = 8

_trace_cache: "OrderedDict[Tuple, HyperTrace]" = OrderedDict()
_trace_cache_capacity = _TRACE_CACHE_CAPACITY
_trace_cache_hits = 0
_trace_cache_misses = 0


@dataclass(frozen=True)
class TraceCacheStats:
    """Per-process trace-cache counters (for the runner's telemetry)."""

    hits: int
    misses: int
    size: int
    capacity: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": self.size,
            "capacity": self.capacity,
        }


def trace_cache_stats() -> TraceCacheStats:
    """Current per-process trace-cache counters."""
    return TraceCacheStats(
        hits=_trace_cache_hits,
        misses=_trace_cache_misses,
        size=len(_trace_cache),
        capacity=_trace_cache_capacity,
    )


def reset_trace_cache_stats() -> None:
    """Zero the hit/miss counters (cache contents are kept)."""
    global _trace_cache_hits, _trace_cache_misses
    _trace_cache_hits = 0
    _trace_cache_misses = 0


def set_trace_cache_capacity(capacity: int) -> None:
    """Bound the per-process trace cache to ``capacity`` entries.

    Takes effect immediately: excess entries are evicted oldest-first.
    """
    if capacity < 1:
        raise ValueError("trace cache capacity must be at least 1")
    global _trace_cache_capacity
    _trace_cache_capacity = capacity
    while len(_trace_cache) > _trace_cache_capacity:
        _trace_cache.popitem(last=False)


def cached_trace(
    benchmark: str,
    num_tenants: int,
    interleaving: str,
    scale: RunScale,
    seed: int = 0,
) -> HyperTrace:
    """Construct (or reuse) the trace for one sweep point."""
    global _trace_cache_hits, _trace_cache_misses
    max_packets = scale.packets_for(num_tenants)
    key = (
        benchmark,
        num_tenants,
        interleaving,
        scale.packets_per_tenant,
        max_packets,
        seed,
    )
    trace = _trace_cache.get(key)
    if trace is not None:
        _trace_cache_hits += 1
        _trace_cache.move_to_end(key)
        return trace
    _trace_cache_misses += 1
    trace = construct_trace(
        profile_by_name(benchmark),
        num_tenants=num_tenants,
        packets_per_tenant=scale.packets_per_tenant,
        interleaving=interleaving,
        seed=seed,
        max_packets=max_packets,
    )
    _trace_cache[key] = trace
    while len(_trace_cache) > _trace_cache_capacity:
        _trace_cache.popitem(last=False)
    return trace


def clear_trace_cache() -> None:
    """Drop all cached traces (tests use this to bound memory)."""
    _trace_cache.clear()


# ----------------------------------------------------------------------
# Execution hook (parallel orchestration)
# ----------------------------------------------------------------------

#: A hook receives the full description of one sweep point and either
#: returns a finished :class:`SimulationResult` (which :func:`run_point`
#: wraps and returns without simulating) or ``None`` (point is executed
#: in-process as usual).
PointHook = Callable[..., Optional[SimulationResult]]

_point_hook: Optional[PointHook] = None


@contextmanager
def point_hook(hook: Optional[PointHook]) -> Iterator[None]:
    """Install ``hook`` as the active sweep-point interceptor.

    Used by :mod:`repro.runner.orchestrate` for its plan/replay passes;
    restores the previous hook on exit, so scopes nest safely.
    """
    global _point_hook
    previous = _point_hook
    _point_hook = hook
    try:
        yield
    finally:
        _point_hook = previous


def clear_point_hook() -> None:
    """Unconditionally remove any active hook (worker initializers call
    this so a hook active in the parent at fork time cannot leak in)."""
    global _point_hook
    _point_hook = None


@dataclass(frozen=True)
class SweepPoint:
    """One (config, benchmark, tenants, interleaving) evaluation."""

    config_name: str
    benchmark: str
    num_tenants: int
    interleaving: str
    result: SimulationResult

    @property
    def utilization_percent(self) -> float:
        return self.result.link_utilization * 100.0

    @property
    def bandwidth_gbps(self) -> float:
        return self.result.achieved_bandwidth_gbps


def run_point(
    config: ArchConfig,
    benchmark: str,
    num_tenants: int,
    interleaving: str,
    scale: RunScale,
    native: bool = False,
    seed: int = 0,
    telemetry=None,
    observability=None,
    fault_plan=None,
    trace=None,
    checkpoint_every: int = 0,
    checkpoint_path=None,
    checkpoint_hook=None,
    resume_from=None,
    engine: str = "analytic",
) -> SweepPoint:
    """Simulate one sweep point at the given scale.

    ``telemetry`` and ``observability`` are forwarded to the simulator
    (points answered by an execution hook were simulated elsewhere and
    ignore them).  ``fault_plan`` runs the point under fault injection
    (see :mod:`repro.faults`); it is part of the point's identity for
    orchestration hooks.

    ``engine`` selects the simulator implementation (``analytic`` /
    ``evented`` / ``vectorized``); all engines produce byte-identical
    results where supported, so the choice only affects wall clock —
    but it is still part of the point's identity for orchestration
    hooks and job specs, keeping provenance exact.

    ``trace`` substitutes an externally supplied
    :class:`~repro.trace.constructor.HyperTrace` for the synthesized one
    (the CLI's ``--trace-file`` path); the benchmark/tenant coordinates
    then only label the point.  The ``checkpoint_*`` / ``resume_from``
    knobs plumb straight into :func:`repro.sim.simulator.simulate` —
    ``resume_from`` restores a mid-run snapshot (no trace is synthesized
    at all; the snapshot carries its own state).
    """
    if _point_hook is not None:
        result = _point_hook(
            config=config,
            benchmark=benchmark,
            num_tenants=num_tenants,
            interleaving=interleaving,
            scale=scale,
            native=native,
            seed=seed,
            fault_plan=fault_plan,
            engine=engine,
        )
        if result is not None:
            return SweepPoint(
                config_name=config.name,
                benchmark=benchmark,
                num_tenants=num_tenants,
                interleaving=interleaving,
                result=result,
            )
    if resume_from is not None:
        # The snapshot carries the full trace and loop state; nothing to
        # synthesize.  The config is still cross-checked inside simulate.
        result = simulate(
            config,
            trace=None,
            resume_from=resume_from,
            checkpoint_every=checkpoint_every,
            checkpoint_path=checkpoint_path,
            checkpoint_hook=checkpoint_hook,
            engine=engine,
        )
        return SweepPoint(
            config_name=config.name,
            benchmark=benchmark,
            num_tenants=num_tenants,
            interleaving=interleaving,
            result=result,
        )
    if trace is None:
        trace = cached_trace(benchmark, num_tenants, interleaving, scale, seed=seed)
    warmup = scale.warmup_for(len(trace.packets))
    result = simulate(
        config,
        trace,
        native=native,
        warmup_packets=warmup,
        telemetry=telemetry,
        observability=observability,
        fault_plan=fault_plan,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        checkpoint_hook=checkpoint_hook,
        engine=engine,
    )
    return SweepPoint(
        config_name=config.name,
        benchmark=benchmark,
        num_tenants=num_tenants,
        interleaving=interleaving,
        result=result,
    )


def sweep_tenants(
    configs: Iterable[ArchConfig],
    benchmarks: Iterable[str],
    interleavings: Iterable[str],
    scale: RunScale,
    tenant_counts: Optional[Iterable[int]] = None,
    runner: Optional[object] = None,
) -> List[SweepPoint]:
    """Full cartesian sweep used by the scalability figures.

    With ``runner`` (an :class:`repro.runner.ExperimentRunner`), the sweep
    is submitted as one :class:`~repro.runner.spec.JobSpec` per point and
    executed by the runner's worker pool — memoized, parallel, and
    resumable; the returned points are identical to the sequential path,
    in the same order.
    """
    counts = tuple(tenant_counts) if tenant_counts is not None else scale.tenant_counts
    config_list = tuple(configs)
    benchmark_list = tuple(benchmarks)
    interleaving_list = tuple(interleavings)
    if runner is not None:
        from repro.runner.orchestrate import run_sweep

        return run_sweep(
            runner, config_list, benchmark_list, interleaving_list, scale, counts
        )
    points: List[SweepPoint] = []
    for benchmark in benchmark_list:
        for interleaving in interleaving_list:
            for count in counts:
                for config in config_list:
                    points.append(
                        run_point(config, benchmark, count, interleaving, scale)
                    )
    return points


def utilization_by_count(points: Iterable[SweepPoint]) -> Dict[Tuple, Dict[int, float]]:
    """Group sweep points into series: (config, benchmark, interleaving) ->
    {tenants: utilization%}."""
    series: Dict[Tuple, Dict[int, float]] = {}
    for point in points:
        key = (point.config_name, point.benchmark, point.interleaving)
        series.setdefault(key, {})[point.num_tenants] = point.utilization_percent
    return series
