"""Terminal line charts for experiment series.

The original figures are matplotlib plots; this environment is
terminal-only, so the examples render experiment series as ASCII charts.
The renderer is deliberately simple: a fixed-size character grid, one
marker per series, a left axis with min/max labels, and a legend.

>>> chart = AsciiChart(width=20, height=5, title="demo")
>>> chart.add_series("a", [(1, 0.0), (2, 5.0), (3, 10.0)])
>>> print(chart.render())  # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: Marker characters assigned to series in insertion order.
MARKERS = "ox*+#@%&"


@dataclass
class AsciiChart:
    """A character-grid line chart."""

    width: int = 60
    height: int = 16
    title: str = ""
    x_label: str = ""
    y_label: str = ""
    log_x: bool = False
    _series: "List[Tuple[str, List[Tuple[float, float]]]]" = field(
        default_factory=list
    )

    def add_series(self, name: str, points: Sequence[Tuple[float, float]]) -> None:
        """Add a named series of ``(x, y)`` points."""
        cleaned = [(float(x), float(y)) for x, y in points]
        if not cleaned:
            raise ValueError(f"series {name!r} has no points")
        if len(self._series) >= len(MARKERS):
            raise ValueError("too many series for available markers")
        self._series.append((name, sorted(cleaned)))

    # ------------------------------------------------------------------
    def _x_transform(self, x: float) -> float:
        if not self.log_x:
            return x
        import math

        if x <= 0:
            raise ValueError("log_x charts need positive x values")
        return math.log2(x)

    def _bounds(self):
        xs = [
            self._x_transform(x)
            for _, points in self._series
            for x, _ in points
        ]
        ys = [y for _, points in self._series for _, y in points]
        x_low, x_high = min(xs), max(xs)
        y_low, y_high = min(ys), max(ys)
        if x_high == x_low:
            x_high = x_low + 1.0
        if y_high == y_low:
            y_high = y_low + 1.0
        return x_low, x_high, y_low, y_high

    def render(self) -> str:
        """Render the chart to a multi-line string."""
        if not self._series:
            raise ValueError("nothing to plot")
        x_low, x_high, y_low, y_high = self._bounds()
        grid = [[" "] * self.width for _ in range(self.height)]

        for index, (_, points) in enumerate(self._series):
            marker = MARKERS[index]
            for x, y in points:
                tx = self._x_transform(x)
                column = round(
                    (tx - x_low) / (x_high - x_low) * (self.width - 1)
                )
                row = round((y - y_low) / (y_high - y_low) * (self.height - 1))
                grid[self.height - 1 - row][column] = marker

        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        top_label = f"{y_high:.4g}"
        bottom_label = f"{y_low:.4g}"
        gutter = max(len(top_label), len(bottom_label)) + 1
        for row_index, row in enumerate(grid):
            if row_index == 0:
                label = top_label.rjust(gutter - 1)
            elif row_index == self.height - 1:
                label = bottom_label.rjust(gutter - 1)
            else:
                label = " " * (gutter - 1)
            lines.append(f"{label}|" + "".join(row))
        lines.append(" " * gutter + "-" * self.width)
        x_axis = (
            f"{' ' * gutter}{_format_tick(x_low, self.log_x)}"
            f"{'' :^{max(0, self.width - 12)}}"
            f"{_format_tick(x_high, self.log_x)}"
        )
        lines.append(x_axis)
        if self.x_label:
            lines.append(" " * gutter + self.x_label)
        legend = "   ".join(
            f"{MARKERS[index]} {name}"
            for index, (name, _) in enumerate(self._series)
        )
        lines.append(" " * gutter + legend)
        return "\n".join(lines)


def _format_tick(value: float, log_x: bool) -> str:
    if log_x:
        return f"{2 ** value:.4g}"
    return f"{value:.4g}"


def chart_from_columns(
    title: str,
    xs: Sequence[float],
    named_ys: Dict[str, Sequence[float]],
    log_x: bool = False,
    width: int = 60,
    height: int = 14,
) -> AsciiChart:
    """Convenience: build a chart from an x column and named y columns."""
    chart = AsciiChart(width=width, height=height, title=title, log_x=log_x)
    for name, ys in named_ys.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")
        chart.add_series(name, list(zip(xs, ys)))
    return chart
