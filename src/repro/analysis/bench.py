"""Pinned benchmark matrix: ``repro-sim bench`` -> ``BENCH_<n>.json``.

The matrix is deliberately small and *pinned* (fixed benchmark, tenant
count, packet budget, seed) so successive runs are comparable: the
analytic engine's packets/s for the Base and HyperTRIO configs (plus a
phase-profiled HyperTRIO row carrying the per-phase host-time
breakdown), the service front end's end-to-end requests/s over a
loopback replay (plus a chaos twin of that row riding a seeded
reconnect storm through a :class:`~repro.faults.netchaos.ChaosProxy`,
whose delta prices the connection-supervision machinery under churn),
the runner's job throughput, the checkpointing
overhead of a supervised run, the distributed queue's coordination cost
(raw ``claims_per_s`` plus a 2-worker end-to-end drain through one
shared queue and result store), and a vectorized-vs-analytic pair on a
paper-scale 1024-tenant trace whose vectorized row carries
``speedup_vs_analytic`` and a ``parity`` flag (byte-identical results).

The ``--analytic-packets`` budget applies uniformly to every
analytic-engine row (config comparison, profiled, runner, and
checkpointed); the service and vectorized rows have their own budgets.
Each row records the exact packet count it ran, and the ``matrix``
block documents every per-row budget, so two bench files are comparable
at a glance.

Each run writes ``BENCH_<n>.json`` at the repository root with ``n`` one
past the highest existing file, and reports the throughput delta against
the previous file when one exists.  Index selection and the write happen
under an exclusive ``.bench.lock`` flock, so two concurrent ``bench``
runs in the same ``--root`` get distinct files instead of clobbering one
``BENCH_<n>.json``.  Wall-clock numbers are machine-dependent; the files
exist to track *relative* drift on one machine (e.g. in CI,
``scripts/bench_gate.py`` flags a grossly slower run against the
committed baseline).
"""

from __future__ import annotations

import asyncio
import fcntl
import json
import os
import platform
import re
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import ArchConfig, TlbConfig, base_config, hypertrio_config
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import HyperTrace, construct_trace
from repro.trace.tenant import profile_by_name

#: Schema tag written into every bench file.
BENCH_SCHEMA = "repro-bench/1"

#: The pinned matrix (benchmark, tenants, seed are part of the contract).
PINNED_BENCHMARK = "mediastream"
PINNED_TENANTS = 16
PINNED_SEED = 0
#: Packet budgets: analytic engine vs (slower, per-request) service path.
ANALYTIC_PACKETS = 6000
SERVICE_PACKETS = 2500
#: Sequential jobs timed for the runner job-throughput row.
RUNNER_JOBS = 4
#: Connections severed by the chaos-replay row's reconnect storm.
CHAOS_STORM_CONNECTIONS = 3
#: Stub rows claimed back-to-back for the queue's ``claims_per_s``, and
#: the worker threads draining the queue row's end-to-end sweep.
QUEUE_CLAIM_JOBS = 512
QUEUE_WORKERS = 2
#: The vectorized-vs-analytic pair runs at paper scale — 1024 tenants of
#: the regular iperf3 stream under a Base-geometry config with LRU TLBs
#: — where the vectorized engine's block-cycle leap dominates.
VECTOR_BENCHMARK = "iperf3"
VECTOR_TENANTS = 1024
VECTOR_PACKETS = 102_400

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


@contextmanager
def _bench_lock(root: Path):
    """Exclusive flock held across index selection *and* the write.

    Without it two concurrent ``bench`` runs both compute the same
    ``next_bench_path`` and the second silently overwrites the first.
    """
    path = root / ".bench.lock"
    with path.open("a") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def _pinned_trace(packets: int) -> HyperTrace:
    return construct_trace(
        profile_by_name(PINNED_BENCHMARK),
        num_tenants=PINNED_TENANTS,
        packets_per_tenant=200_000,
        seed=PINNED_SEED,
        max_packets=packets,
    )


def _simulator_for(engine: str, config: ArchConfig, trace: HyperTrace):
    """Instantiate the requested engine's simulator (shared constructor)."""
    if engine == "evented":
        from repro.sim.des import EventDrivenSimulator

        return EventDrivenSimulator(config, trace)
    if engine == "vectorized":
        from repro.sim.vectorized import VectorizedSimulator

        return VectorizedSimulator(config, trace)
    if engine == "analytic":
        return HyperSimulator(config, trace)
    raise ValueError(f"unknown bench engine {engine!r}")


def _bench_analytic(
    config: ArchConfig, packets: int, engine: str = "analytic"
) -> Dict[str, Any]:
    """Time one offline simulation; traces are never reused across runs.

    ``engine`` re-times the config-comparison rows under a different
    simulator implementation (results are byte-identical, so only the
    wall clock moves); the row's ``engine`` field records the choice so
    ``scripts/bench_gate.py`` never compares across engines.
    """
    trace = _pinned_trace(packets)
    simulator = _simulator_for(engine, config, trace)
    started = time.perf_counter()
    result = simulator.run(warmup_packets=0)
    wall = time.perf_counter() - started
    n = len(trace.packets)
    return {
        "engine": engine,
        "config": config.name,
        "packets": n,
        "wall_s": wall,
        "packets_per_s": n / wall if wall > 0 else 0.0,
        "link_utilization": result.link_utilization,
        "packets_dropped": result.packets.dropped,
    }


def _bench_service(packets: int) -> Dict[str, Any]:
    """Time a full loopback replay through the service front end."""
    from repro.service.client import ServiceClient
    from repro.service.engine import ServiceEngine
    from repro.service.server import ServiceServer

    trace = _pinned_trace(packets)

    async def _run() -> Tuple[float, int]:
        engine = ServiceEngine(hypertrio_config(), trace)
        server = ServiceServer(engine)
        await server.start()
        client = ServiceClient("127.0.0.1", server.port)
        await client.connect()
        started = time.perf_counter()
        outcomes = await client.replay(trace.packets, window=64)
        wall = time.perf_counter() - started
        await client.close()
        await server.shutdown()
        return wall, len(outcomes)

    wall, replies = asyncio.run(_run())
    return {
        "engine": "service",
        "config": "HyperTRIO",
        "packets": replies,
        "wall_s": wall,
        "packets_per_s": replies / wall if wall > 0 else 0.0,
    }


def _bench_chaos_replay(packets: int) -> Dict[str, Any]:
    """The service replay riding a reconnect storm: resilience overhead.

    Same pinned trace and budget as the plain service row, but the wire
    passes through a seeded :class:`ChaosProxy` that severs the
    connection ``CHAOS_STORM_CONNECTIONS`` times mid-run while a
    sessioned client (circuit breaker, request deadlines, resume-replay)
    rides the churn.  The row carries the reconnect/resend counts and a
    ``parity`` flag asserting the flushed ``SimulationResult`` stayed
    byte-identical to the offline run, so the delta against the plain
    service row prices the supervision machinery under faults.
    """
    import random

    from repro.faults.netchaos import (
        ChaosProxy,
        NetworkFaultPlan,
        ReconnectStormSpec,
    )
    from repro.runner.serialize import result_to_dict
    from repro.service.client import CircuitBreaker, ServiceClient
    from repro.service.engine import ServiceEngine
    from repro.service.server import ServiceServer

    golden = HyperSimulator(hypertrio_config(), _pinned_trace(packets)).run(
        warmup_packets=0
    )
    # result_to_dict keys per-tenant maps by int; the wire copy has been
    # through JSON (string keys).  Round-trip the golden so sort_keys
    # orders both sides identically.
    golden_json = json.dumps(
        json.loads(json.dumps(result_to_dict(golden))), sort_keys=True
    )
    plan = NetworkFaultPlan(
        seed=PINNED_SEED,
        reconnect_storms=(
            ReconnectStormSpec(
                connections=CHAOS_STORM_CONNECTIONS,
                after_frames=8,
                jitter_frames=16,
            ),
        ),
    )
    trace = _pinned_trace(packets)

    async def _run():
        engine = ServiceEngine(hypertrio_config(), trace)
        server = ServiceServer(engine)
        await server.start()
        proxy = ChaosProxy("127.0.0.1", server.port, plan)
        await proxy.start()
        client = ServiceClient(
            "127.0.0.1",
            proxy.port,
            session=True,
            request_timeout=2.0,
            breaker=CircuitBreaker(failure_threshold=8),
            rng=random.Random(PINNED_SEED),
        )
        try:
            await client.connect()
            started = time.perf_counter()
            outcomes = await client.replay(trace.packets, window=64)
            wall = time.perf_counter() - started
            flush = await client.flush()
            resends = server.conn_counters["resends_served"]
            return (
                wall, len(outcomes), flush["result"],
                client.reconnects, resends,
            )
        finally:
            await client.close()
            await proxy.aclose()
            await server.shutdown()

    wall, replies, wire_result, reconnects, resends = asyncio.run(_run())
    return {
        "engine": "service",
        "config": "HyperTRIO/chaos-storm",
        "packets": replies,
        "wall_s": wall,
        "packets_per_s": replies / wall if wall > 0 else 0.0,
        "reconnects": reconnects,
        "resends_served": resends,
        "parity": json.dumps(wire_result, sort_keys=True) == golden_json,
    }


def _bench_profiled(packets: int) -> Dict[str, Any]:
    """The analytic hot path with phase profiling on.

    The per-phase breakdown (lookup / walk / ptb host time) rides into
    the bench document, and the throughput delta against the plain
    HyperTRIO row shows what profiling itself costs when enabled.
    """
    from repro.obs import Observability

    trace = _pinned_trace(packets)
    simulator = HyperSimulator(
        hypertrio_config(),
        trace,
        observability=Observability.profiling(spans=False, metrics=False),
    )
    started = time.perf_counter()
    result = simulator.run(warmup_packets=0)
    wall = time.perf_counter() - started
    n = len(trace.packets)
    return {
        "engine": "analytic",
        "config": "HyperTRIO/profiled",
        "packets": n,
        "wall_s": wall,
        "packets_per_s": n / wall if wall > 0 else 0.0,
        "phases": result.phase_profile,
    }


def _bench_runner(jobs: int, packets: int) -> Dict[str, Any]:
    """Time sequential runner jobs end to end (spec -> ``execute_job``).

    Covers the runner's per-job fixed costs — spec resolution, trace
    construction/caching, result serialisation — that no analytic row
    sees.  Jobs after the first hit the worker's trace cache, exactly as
    they do inside a real run.
    """
    from repro.analysis.scale import RunScale
    from repro.runner.spec import JobSpec
    from repro.runner.worker import execute_job

    scale = RunScale(
        name="bench",
        tenant_counts=(PINNED_TENANTS,),
        interleavings=("RR1",),
        benchmarks=(PINNED_BENCHMARK,),
        max_packets=packets,
    )
    spec = JobSpec.from_point(
        hypertrio_config(),
        PINNED_BENCHMARK,
        PINNED_TENANTS,
        "RR1",
        scale,
        seed=PINNED_SEED,
    )
    started = time.perf_counter()
    done = 0
    for _ in range(jobs):
        payload = execute_job(spec)
        done += payload["result"]["packets"]["arrived"]
    wall = time.perf_counter() - started
    return {
        "engine": "runner",
        "config": "HyperTRIO",
        "packets": done,
        "wall_s": wall,
        "packets_per_s": done / wall if wall > 0 else 0.0,
        "jobs": jobs,
        "jobs_per_s": jobs / wall if wall > 0 else 0.0,
    }


def _bench_checkpoint(packets: int) -> Dict[str, Any]:
    """Checkpointed vs plain run of one point: snapshot overhead.

    Both runs execute back to back on fresh traces, so the reported
    ``checkpoint_overhead_pct`` is the cost of the periodic snapshots
    alone, not machine drift between bench invocations.
    """
    trace = _pinned_trace(packets)
    simulator = HyperSimulator(hypertrio_config(), trace)
    started = time.perf_counter()
    simulator.run(warmup_packets=0)
    plain = time.perf_counter() - started

    every = max(1, packets // 4)
    trace = _pinned_trace(packets)
    simulator = HyperSimulator(hypertrio_config(), trace)
    handle, path = tempfile.mkstemp(suffix=".ckpt")
    os.close(handle)
    try:
        started = time.perf_counter()
        simulator.run(
            warmup_packets=0,
            checkpoint_every=every,
            checkpoint_path=Path(path),
        )
        wall = time.perf_counter() - started
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass
    n = len(trace.packets)
    return {
        "engine": "analytic",
        "config": "HyperTRIO/checkpointed",
        "packets": n,
        "wall_s": wall,
        "packets_per_s": n / wall if wall > 0 else 0.0,
        "checkpoint_every": every,
        "checkpoint_overhead_pct": (
            (wall - plain) / plain * 100.0 if plain > 0 else 0.0
        ),
    }


def _bench_queue(jobs: int, packets: int) -> Dict[str, Any]:
    """The distributed queue's coordination cost, in two measurements.

    First the raw claim path: ``QUEUE_CLAIM_JOBS`` stub rows claimed
    back-to-back from one connection (each claim is a full
    ``BEGIN IMMEDIATE`` transaction with its audit row), reported as
    ``claims_per_s``.  Then end to end: ``QUEUE_WORKERS`` worker threads
    — each with its own queue connection, runner, and store instance —
    cooperatively drain a real ``jobs``-point sweep through one shared
    queue and ``results.jsonl``, which is the gated throughput number
    (same packet budget as the runner row, so the delta against it is
    the queue's coordination overhead).
    """
    import threading

    from repro.analysis.scale import RunScale
    from repro.runner import (
        ExperimentQueue,
        ExperimentRunner,
        ResultStore,
        RunnerOptions,
        work_queue,
    )
    from repro.runner.spec import JobSpec

    with tempfile.TemporaryDirectory() as tmp:
        claim_queue = ExperimentQueue(
            Path(tmp) / "claims.db", worker_id="bench-claims"
        )
        claim_queue.enqueue_specs([
            JobSpec(
                config={"name": "Stub", "index": index},
                benchmark="stub",
                num_tenants=1,
                interleaving="RR1",
                max_packets=1,
                seed=index,
            )
            for index in range(QUEUE_CLAIM_JOBS)
        ])
        started = time.perf_counter()
        claimed = 0
        while claim_queue.claim() is not None:
            claimed += 1
        claim_wall = time.perf_counter() - started
        claim_queue.close()

        scale = RunScale(
            name="bench-queue",
            tenant_counts=(PINNED_TENANTS,),
            interleavings=("RR1",),
            benchmarks=(PINNED_BENCHMARK,),
            max_packets=packets,
        )
        sweep = [
            JobSpec.from_point(
                hypertrio_config(),
                PINNED_BENCHMARK,
                PINNED_TENANTS,
                "RR1",
                scale,
                seed=seed,
            )
            for seed in range(jobs)
        ]
        queue_path = Path(tmp) / "queue.db"
        with ExperimentQueue(queue_path, worker_id="bench-seed") as seeder:
            seeder.enqueue_specs(sweep)

        def drain(name: str) -> None:
            queue = ExperimentQueue(queue_path, worker_id=name, lease_s=60)
            runner = ExperimentRunner(
                store=ResultStore(Path(tmp) / "runs", "bench"),
                options=RunnerOptions(jobs=1),
            )
            try:
                work_queue(queue, runner, poll_s=0.01)
            finally:
                queue.close()

        threads = [
            threading.Thread(target=drain, args=(f"bench-w{index}",))
            for index in range(QUEUE_WORKERS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        store = ResultStore(Path(tmp) / "runs", "bench")
        done = sum(
            result.result["packets"]["arrived"]
            for result in store.iter_completed()
        )
    return {
        "engine": "queue",
        "config": "HyperTRIO",
        "packets": done,
        "wall_s": wall,
        "packets_per_s": done / wall if wall > 0 else 0.0,
        "jobs": jobs,
        "jobs_per_s": jobs / wall if wall > 0 else 0.0,
        "workers": QUEUE_WORKERS,
        "claim_jobs": claimed,
        "claims_per_s": claimed / claim_wall if claim_wall > 0 else 0.0,
    }


def _vector_config() -> ArchConfig:
    """Base geometry with LRU policies in every TLB level.

    LRU (rather than Base's LFU) keeps the pinned pair representative of
    the simplest eligible config while still exercising the vectorized
    engine's block-cycle leap; the label carries the variant.
    """

    def lru(tlb: TlbConfig) -> TlbConfig:
        return TlbConfig(
            num_entries=tlb.num_entries,
            ways=tlb.ways,
            num_partitions=tlb.num_partitions,
            policy="lru",
        )

    config = base_config()
    return config.with_overrides(
        name="Base-LRU",
        devtlb=lru(config.devtlb),
        l2_tlb=lru(config.l2_tlb),
        l3_tlb=lru(config.l3_tlb),
    )


def _vector_trace(packets: int) -> HyperTrace:
    return construct_trace(
        profile_by_name(VECTOR_BENCHMARK),
        num_tenants=VECTOR_TENANTS,
        packets_per_tenant=200_000,
        interleaving="RR1",
        seed=PINNED_SEED,
        max_packets=packets,
    )


def _bench_vectorized(packets: int) -> List[Dict[str, Any]]:
    """The vectorized engine vs its analytic twin on one paper-scale trace.

    Returns two rows sharing a config label: the analytic baseline and
    the vectorized run, the latter carrying ``speedup_vs_analytic`` and a
    ``parity`` flag asserting the two produced byte-identical serialized
    results (a live guard on the engine's core contract, not just a test
    fixture).
    """
    from repro.runner.serialize import result_to_dict
    from repro.sim.vectorized import VectorizedSimulator

    config = _vector_config()
    label = f"{config.name}/{VECTOR_TENANTS}t"

    trace = _vector_trace(packets)
    simulator = HyperSimulator(config, trace)
    started = time.perf_counter()
    analytic_result = simulator.run(warmup_packets=0)
    analytic_wall = time.perf_counter() - started
    n = len(trace.packets)

    trace = _vector_trace(packets)
    vector_sim = VectorizedSimulator(config, trace)
    started = time.perf_counter()
    vector_result = vector_sim.run(warmup_packets=0)
    vector_wall = time.perf_counter() - started

    parity = result_to_dict(analytic_result) == result_to_dict(vector_result)
    analytic_rate = n / analytic_wall if analytic_wall > 0 else 0.0
    vector_rate = n / vector_wall if vector_wall > 0 else 0.0
    return [
        {
            "engine": "analytic",
            "config": label,
            "packets": n,
            "wall_s": analytic_wall,
            "packets_per_s": analytic_rate,
            "link_utilization": analytic_result.link_utilization,
            "packets_dropped": analytic_result.packets.dropped,
        },
        {
            "engine": "vectorized",
            "config": label,
            "packets": n,
            "wall_s": vector_wall,
            "packets_per_s": vector_rate,
            "link_utilization": vector_result.link_utilization,
            "packets_dropped": vector_result.packets.dropped,
            "speedup_vs_analytic": (
                vector_rate / analytic_rate if analytic_rate > 0 else 0.0
            ),
            "parity": parity,
            "batch": dict(vector_sim.batch_stats),
        },
    ]


def existing_bench_paths(root: Path) -> List[Path]:
    """All ``BENCH_<n>.json`` files under ``root``, ordered by ``n``."""
    found = []
    for path in root.iterdir():
        match = _BENCH_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return [path for _, path in sorted(found)]


def next_bench_path(root: Path) -> Path:
    """The next free ``BENCH_<n>.json`` (``BENCH_1.json`` on first run)."""
    existing = existing_bench_paths(root)
    if not existing:
        return root / "BENCH_1.json"
    last = int(_BENCH_RE.match(existing[-1].name).group(1))
    return root / f"BENCH_{last + 1}.json"


def run_bench(
    root: Path,
    analytic_packets: int = ANALYTIC_PACKETS,
    service_packets: int = SERVICE_PACKETS,
    vector_packets: int = VECTOR_PACKETS,
    output: Optional[Path] = None,
    engine: str = "analytic",
) -> Tuple[Path, Dict[str, Any], List[str]]:
    """Run the pinned matrix; returns (path, document, report lines).

    ``analytic_packets`` applies uniformly to every analytic-engine row
    (config comparison, profiled, runner, checkpointed); the service and
    vectorized rows run their own pinned budgets.  ``engine`` re-times
    the two config-comparison rows under a different simulator
    implementation (see :func:`_bench_analytic`).
    """
    rows = [
        _bench_analytic(base_config(), analytic_packets, engine),
        _bench_analytic(hypertrio_config(), analytic_packets, engine),
        _bench_profiled(analytic_packets),
        _bench_service(service_packets),
        _bench_chaos_replay(service_packets),
        _bench_runner(RUNNER_JOBS, analytic_packets),
        _bench_checkpoint(analytic_packets),
        _bench_queue(RUNNER_JOBS, analytic_packets),
        *_bench_vectorized(vector_packets),
    ]
    document: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "matrix": {
            "benchmark": PINNED_BENCHMARK,
            "tenants": PINNED_TENANTS,
            "seed": PINNED_SEED,
            "engine": engine,
            "analytic_packets": analytic_packets,
            "service_packets": service_packets,
            "chaos_packets": service_packets,
            "chaos_storm_connections": CHAOS_STORM_CONNECTIONS,
            "runner_packets": analytic_packets,
            "checkpoint_packets": analytic_packets,
            "runner_jobs": RUNNER_JOBS,
            "queue_packets": analytic_packets,
            "queue_jobs": RUNNER_JOBS,
            "queue_workers": QUEUE_WORKERS,
            "queue_claim_jobs": QUEUE_CLAIM_JOBS,
            "vector_benchmark": VECTOR_BENCHMARK,
            "vector_tenants": VECTOR_TENANTS,
            "vector_packets": vector_packets,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "results": rows,
    }
    with _bench_lock(root):
        previous = existing_bench_paths(root)
        path = Path(output) if output is not None else next_bench_path(root)
        path.write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )

    lines = [f"wrote {path}"]
    for row in rows:
        lines.append(
            f"  {row['engine']:>8} {row['config']:<22} "
            f"{row['packets']:>6} pkts in {row['wall_s']:.3f} s "
            f"({row['packets_per_s']:.0f} pkts/s)"
        )
        if row.get("phases"):
            from repro.obs.phases import format_phase_profile

            lines.append(f"           phases: {format_phase_profile(row['phases'])}")
        if "jobs_per_s" in row:
            lines.append(
                f"           {row['jobs']} jobs ({row['jobs_per_s']:.2f} jobs/s)"
            )
        if "claims_per_s" in row:
            lines.append(
                f"           {row['claim_jobs']} raw claims "
                f"({row['claims_per_s']:.0f} claims/s), "
                f"{row['workers']} workers end-to-end"
            )
        if "reconnects" in row:
            lines.append(
                f"           storm: {row['reconnects']} reconnects, "
                f"{row['resends_served']} resends served, "
                f"parity={'ok' if row['parity'] else 'FAILED'}"
            )
        if "checkpoint_overhead_pct" in row:
            lines.append(
                f"           checkpoint every {row['checkpoint_every']} pkts: "
                f"{row['checkpoint_overhead_pct']:+.1f}% wall"
            )
        if "speedup_vs_analytic" in row:
            lines.append(
                f"           {row['speedup_vs_analytic']:.1f}x vs analytic, "
                f"parity={'ok' if row['parity'] else 'FAILED'}"
            )
    if previous and previous[-1] != path:
        lines.extend(_delta_lines(previous[-1], rows))
    return path, document, lines


def _delta_lines(previous_path: Path, rows: List[Dict[str, Any]]) -> List[str]:
    """Throughput deltas vs the previous bench file (best-effort)."""
    try:
        old = json.loads(previous_path.read_text(encoding="utf-8"))
        old_rows = {
            (row["engine"], row["config"]): row["packets_per_s"]
            for row in old.get("results", [])
        }
    except (OSError, ValueError, KeyError, TypeError):
        return [f"  (could not read {previous_path.name} for deltas)"]
    lines = [f"  delta vs {previous_path.name}:"]
    for row in rows:
        before = old_rows.get((row["engine"], row["config"]))
        if not before:
            lines.append(f"    {row['engine']}/{row['config']}: (new)")
            continue
        change = (row["packets_per_s"] - before) / before * 100.0
        lines.append(
            f"    {row['engine']}/{row['config']}: {change:+.1f}% pkts/s"
        )
    return lines
