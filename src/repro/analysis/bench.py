"""Pinned benchmark matrix: ``repro-sim bench`` -> ``BENCH_<n>.json``.

The matrix is deliberately small and *pinned* (fixed benchmark, tenant
count, packet budget, seed) so successive runs are comparable: the
analytic engine's packets/s for the Base and HyperTRIO configs, plus the
service front end's end-to-end requests/s over a loopback replay.

Each run writes ``BENCH_<n>.json`` at the repository root with ``n`` one
past the highest existing file, and reports the throughput delta against
the previous file when one exists.  Wall-clock numbers are machine-
dependent; the files exist to track *relative* drift on one machine
(e.g. in CI, a grossly slower run flags a regression in the hot loop).
"""

from __future__ import annotations

import asyncio
import json
import platform
import re
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import ArchConfig, base_config, hypertrio_config
from repro.sim.simulator import HyperSimulator
from repro.trace.constructor import HyperTrace, construct_trace
from repro.trace.tenant import profile_by_name

#: Schema tag written into every bench file.
BENCH_SCHEMA = "repro-bench/1"

#: The pinned matrix (benchmark, tenants, seed are part of the contract).
PINNED_BENCHMARK = "mediastream"
PINNED_TENANTS = 16
PINNED_SEED = 0
#: Packet budgets: analytic engine vs (slower, per-request) service path.
ANALYTIC_PACKETS = 6000
SERVICE_PACKETS = 2500

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def _pinned_trace(packets: int) -> HyperTrace:
    return construct_trace(
        profile_by_name(PINNED_BENCHMARK),
        num_tenants=PINNED_TENANTS,
        packets_per_tenant=200_000,
        seed=PINNED_SEED,
        max_packets=packets,
    )


def _bench_analytic(config: ArchConfig, packets: int) -> Dict[str, Any]:
    """Time one offline simulation; traces are never reused across runs."""
    trace = _pinned_trace(packets)
    simulator = HyperSimulator(config, trace)
    started = time.perf_counter()
    result = simulator.run(warmup_packets=0)
    wall = time.perf_counter() - started
    n = len(trace.packets)
    return {
        "engine": "analytic",
        "config": config.name,
        "packets": n,
        "wall_s": wall,
        "packets_per_s": n / wall if wall > 0 else 0.0,
        "link_utilization": result.link_utilization,
        "packets_dropped": result.packets.dropped,
    }


def _bench_service(packets: int) -> Dict[str, Any]:
    """Time a full loopback replay through the service front end."""
    from repro.service.client import ServiceClient
    from repro.service.engine import ServiceEngine
    from repro.service.server import ServiceServer

    trace = _pinned_trace(packets)

    async def _run() -> Tuple[float, int]:
        engine = ServiceEngine(hypertrio_config(), trace)
        server = ServiceServer(engine)
        await server.start()
        client = ServiceClient("127.0.0.1", server.port)
        await client.connect()
        started = time.perf_counter()
        outcomes = await client.replay(trace.packets, window=64)
        wall = time.perf_counter() - started
        await client.close()
        await server.shutdown()
        return wall, len(outcomes)

    wall, replies = asyncio.run(_run())
    return {
        "engine": "service",
        "config": "HyperTRIO",
        "packets": replies,
        "wall_s": wall,
        "packets_per_s": replies / wall if wall > 0 else 0.0,
    }


def existing_bench_paths(root: Path) -> List[Path]:
    """All ``BENCH_<n>.json`` files under ``root``, ordered by ``n``."""
    found = []
    for path in root.iterdir():
        match = _BENCH_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return [path for _, path in sorted(found)]


def next_bench_path(root: Path) -> Path:
    """The next free ``BENCH_<n>.json`` (``BENCH_1.json`` on first run)."""
    existing = existing_bench_paths(root)
    if not existing:
        return root / "BENCH_1.json"
    last = int(_BENCH_RE.match(existing[-1].name).group(1))
    return root / f"BENCH_{last + 1}.json"


def run_bench(
    root: Path,
    analytic_packets: int = ANALYTIC_PACKETS,
    service_packets: int = SERVICE_PACKETS,
    output: Optional[Path] = None,
) -> Tuple[Path, Dict[str, Any], List[str]]:
    """Run the pinned matrix; returns (path, document, report lines)."""
    rows = [
        _bench_analytic(base_config(), analytic_packets),
        _bench_analytic(hypertrio_config(), analytic_packets),
        _bench_service(service_packets),
    ]
    document: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "matrix": {
            "benchmark": PINNED_BENCHMARK,
            "tenants": PINNED_TENANTS,
            "seed": PINNED_SEED,
            "analytic_packets": analytic_packets,
            "service_packets": service_packets,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "results": rows,
    }
    previous = existing_bench_paths(root)
    path = Path(output) if output is not None else next_bench_path(root)
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    lines = [f"wrote {path}"]
    for row in rows:
        lines.append(
            f"  {row['engine']:>8} {row['config']:<9} "
            f"{row['packets']:>6} pkts in {row['wall_s']:.3f} s "
            f"({row['packets_per_s']:.0f} pkts/s)"
        )
    if previous and previous[-1] != path:
        lines.extend(_delta_lines(previous[-1], rows))
    return path, document, lines


def _delta_lines(previous_path: Path, rows: List[Dict[str, Any]]) -> List[str]:
    """Throughput deltas vs the previous bench file (best-effort)."""
    try:
        old = json.loads(previous_path.read_text(encoding="utf-8"))
        old_rows = {
            (row["engine"], row["config"]): row["packets_per_s"]
            for row in old.get("results", [])
        }
    except (OSError, ValueError, KeyError, TypeError):
        return [f"  (could not read {previous_path.name} for deltas)"]
    lines = [f"  delta vs {previous_path.name}:"]
    for row in rows:
        before = old_rows.get((row["engine"], row["config"]))
        if not before:
            lines.append(f"    {row['engine']}/{row['config']}: (new)")
            continue
        change = (row["packets_per_s"] - before) / before * 100.0
        lines.append(
            f"    {row['engine']}/{row['config']}: {change:+.1f}% pkts/s"
        )
    return lines
