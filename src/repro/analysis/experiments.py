"""Experiment drivers: one function per table and figure of the paper.

Each driver regenerates the rows/series of its table or figure using the
performance model, at a :class:`~repro.analysis.scale.RunScale` chosen by
the caller (benchmarks use :func:`~repro.analysis.scale.current_scale`).
Absolute numbers differ from the paper (scaled traces, modelled latencies);
the drivers exist to reproduce *shapes*: who wins, by what rough factor,
and where the crossovers fall.  EXPERIMENTS.md records paper-vs-measured
for every driver.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.device_scaling import device_scaling
from repro.analysis.report import ExperimentTable
from repro.analysis.resilience import resilience
from repro.analysis.scale import DEFAULT, RunScale
from repro.analysis.service_saturation import service_saturation
from repro.analysis.sweeps import cached_trace, run_point
from repro.core.config import (
    ArchConfig,
    PrefetchConfig,
    TimingParams,
    TlbConfig,
    base_config,
    case_study_timing,
    hypertrio_config,
)
from repro.trace.collector import collect_single_tenant
from repro.trace.characterize import characterize_single_tenant
from repro.trace.constructor import construct_trace
from repro.trace.records import compute_trace_stats
from repro.trace.tenant import (
    BENCHMARKS,
    MEDIASTREAM,
    make_tenant_specs,
    profile_by_name,
)

# ----------------------------------------------------------------------
# Table I: case-study host parameters (documentation)
# ----------------------------------------------------------------------

#: The paper's Table I, kept as data so the Figure 4/5 drivers can cite the
#: systems they model.
TABLE1_SYSTEMS: Tuple[Dict[str, str], ...] = (
    {
        "host": "Server Host 1",
        "cpu": "AMD Ryzen 9 3900X, 1 socket, 24 threads",
        "chipset": "x570",
        "memory": "64 GB, 400 MB/VM",
        "role": "Figure 4 (IOMMU performance counters)",
    },
    {
        "host": "Server Host 2",
        "cpu": "Xeon E7-4870, 4 sockets, 80 threads",
        "chipset": "Intel 7500",
        "memory": "256 GB, 2 GB/VM",
        "role": "Figure 5 (native vs VF bandwidth)",
    },
    {
        "host": "Client Host",
        "cpu": "Xeon E3-1231 v3, 1 socket, 8 threads",
        "chipset": "Intel C224",
        "memory": "16 GB",
        "role": "iperf3 clients",
    },
)


def table1() -> ExperimentTable:
    """Table I: the case-study hosts (reference data, nothing to measure)."""
    table = ExperimentTable(
        experiment_id="Table I",
        title="System parameters for the SR-IOV NIC case study",
        columns=["host", "cpu", "chipset", "memory", "modelled by"],
    )
    for system in TABLE1_SYSTEMS:
        table.add_row(
            system["host"], system["cpu"], system["chipset"], system["memory"],
            system["role"],
        )
    table.add_note(
        "Hardware hosts are replaced by the performance model; Figures 4-5 "
        "reproduce their modelled analogues (see DESIGN.md substitutions)."
    )
    return table


# ----------------------------------------------------------------------
# Table II: performance-model parameters
# ----------------------------------------------------------------------

def table2() -> ExperimentTable:
    """Table II: parameters used by the performance simulator."""
    timing = TimingParams()
    table = ExperimentTable(
        experiment_id="Table II",
        title="System parameters used by the performance simulator",
        columns=["parameter", "paper", "this model"],
    )
    table.add_row("One-way PCIe latency", "450 ns", f"{timing.pcie_one_way_ns:.0f} ns")
    table.add_row("DRAM latency", "50 ns", f"{timing.dram_latency_ns:.0f} ns")
    table.add_row("IOTLB hit", "2 ns", f"{timing.iotlb_hit_ns:.0f} ns")
    table.add_row("# memory accesses during PTW", "24", "24 (walked, 4 KB)")
    table.add_row("Packet size at I/O link", "1542 B", f"{timing.packet_bytes} B")
    table.add_row(
        "I/O link bandwidth", "200 Gb/s", f"{timing.link_bandwidth_gbps:.0f} Gb/s"
    )
    table.add_row("L2 Page Cache", "512 entries, 16-way", "512 entries, 16-way")
    table.add_row("L3 Page Cache", "1024 entries, 16-way", "1024 entries, 16-way")
    table.add_row(
        "Packet inter-arrival", "~62 ns", f"{timing.packet_interarrival_ns:.2f} ns"
    )
    return table


# ----------------------------------------------------------------------
# Table IV: architectural configurations
# ----------------------------------------------------------------------

def table4() -> ExperimentTable:
    """Table IV: Base vs HyperTRIO architectural parameters."""
    base = base_config()
    hyper = hypertrio_config()
    table = ExperimentTable(
        experiment_id="Table IV",
        title="Architectural parameters of evaluated configurations",
        columns=["parameter", "Base", "HyperTRIO"],
    )
    table.add_row("PTB entries", base.ptb_entries, hyper.ptb_entries)
    table.add_row(
        "DevTLB",
        _describe_tlb(base.devtlb),
        _describe_tlb(hyper.devtlb),
    )
    table.add_row("L2TLB", _describe_tlb(base.l2_tlb), _describe_tlb(hyper.l2_tlb))
    table.add_row("L3TLB", _describe_tlb(base.l3_tlb), _describe_tlb(hyper.l3_tlb))
    table.add_row(
        "Prefetching",
        "no",
        (
            f"{hyper.prefetch.buffer_entries}-entry buffer, "
            f"{hyper.prefetch.history_length}-access stride, "
            f"{hyper.prefetch.pages_per_tenant} pages history/tenant"
        ),
    )
    table.add_note(
        "Paper's Table IV uses a 48-access prefetch stride; the stride is a "
        "host-tuned just-in-time knob and this model's optimum is 36 "
        "(bench_ablation_prefetch sweeps it)."
    )
    return table


def _describe_tlb(tlb: TlbConfig) -> str:
    return (
        f"{tlb.num_entries} entries, {tlb.ways}-way, {tlb.policy.upper()}, "
        f"{tlb.num_partitions} partition(s)"
    )


# ----------------------------------------------------------------------
# Figure 4: IOMMU TLB PTE miss rate vs connection count (AMD case study)
# ----------------------------------------------------------------------

def figure4(scale: Optional[RunScale] = None) -> ExperimentTable:
    """Figure 4: page-walk-cache miss rate rises past ~80 connections.

    Models the AMD host: a 10 Gb/s link shared by iperf3 tenants and an
    unpartitioned translation path.  The paper's counters report IOMMU TLB
    PTE hits/misses (our PTE cache) and nested page reads (our DRAM
    page-table reads); both are tabulated per connection count.
    """
    scale = scale or DEFAULT
    config = base_config(timing=case_study_timing())
    table = ExperimentTable(
        experiment_id="Figure 4",
        title="IOMMU TLB PTE miss rate vs parallel iperf3 connections (10 Gb/s)",
        columns=[
            "connections",
            "pte miss rate %",
            "nested page reads",
            "reads per packet",
        ],
    )
    counts = (40, 60, 80, 100, 120) if scale.name != "smoke" else (8, 16)
    for count in counts:
        point = run_point(config, "iperf3", count, "RR1", scale)
        result = point.result
        packets = max(1, result.packets.accepted)
        table.add_row(
            count,
            result.miss_rate("pte_cache") * 100.0,
            result.dram.page_table_reads,
            result.dram.page_table_reads / packets,
        )
    table.add_note(
        "Paper: <0.1% below 80 connections, up to 4.3% at 120, and a >400x "
        "rise in nested page reads from 80 to 120 connections."
    )
    return table


# ----------------------------------------------------------------------
# Figure 5: native vs virtualized cumulative bandwidth (Intel case study)
# ----------------------------------------------------------------------

#: Per-connection CPU-bound caps measured in the paper (Gb/s).
NATIVE_PER_CONNECTION_CAP = 8.7
VF_PER_CONNECTION_CAP = 6.7
USEFUL_10G_BANDWIDTH = 9.49


def figure5(scale: Optional[RunScale] = None) -> ExperimentTable:
    """Figure 5: cumulative bandwidth, host-native vs VF, 10 Gb/s link.

    Native connections bypass translation entirely (bounded by the
    per-connection CPU cap); VF connections translate through a shared
    DevTLB and collapse once the tenant count thrashes it.
    """
    scale = scale or DEFAULT
    timing = case_study_timing()
    config = base_config(timing=timing)
    table = ExperimentTable(
        experiment_id="Figure 5",
        title="Cumulative I/O bandwidth vs concurrent connections (10 Gb/s)",
        columns=["connections", "native Gb/s", "VF Gb/s"],
    )
    counts = (1, 2, 4, 8, 12, 16, 24, 32) if scale.name != "smoke" else (1, 4)
    for count in counts:
        offered = min(timing.link_bandwidth_gbps * (USEFUL_10G_BANDWIDTH / 10.0),
                      count * NATIVE_PER_CONNECTION_CAP)
        native_gbps = offered  # no translation bottleneck on the host path
        vf_offered = min(
            timing.link_bandwidth_gbps * (USEFUL_10G_BANDWIDTH / 10.0),
            count * VF_PER_CONNECTION_CAP,
        )
        point = run_point(config, "iperf3", count, "RR1", scale)
        # Achieved bandwidth includes framing; derate to useful bandwidth.
        achieved_useful = (
            point.result.achieved_bandwidth_gbps * USEFUL_10G_BANDWIDTH / 10.0
        )
        vf_gbps = min(vf_offered, achieved_useful)
        table.add_row(count, native_gbps, vf_gbps)
    table.add_note(
        "Paper: native rises to ~9.4 Gb/s and stays there; VF matches the "
        "link up to ~8 connections, then collapses to ~0.5 Gb/s beyond 16."
    )
    return table


# ----------------------------------------------------------------------
# Figure 8: single-tenant characterisation
# ----------------------------------------------------------------------

def figure8(packets: int = 95_000) -> ExperimentTable:
    """Figure 8: page access frequency groups and periodicity.

    Runs the mediastream workload for one tenant through the log-collector
    substitute and reproduces the three frequency groups (8a) and the
    periodic, ~1500-use sequential data-page pattern (8b).  The single
    tenant is run without the small irregularity used in multi-tenant
    mediastream traces — the paper's single-tenant trace is what that
    irregularity is calibrated against.
    """
    profile = dataclasses.replace(MEDIASTREAM, jump_probability=0.0)
    log = collect_single_tenant(profile, packets=packets)
    characterization = characterize_single_tenant(log)
    table = ExperimentTable(
        experiment_id="Figure 8",
        title="Single-tenant I/O virtual page access characterisation",
        columns=["group", "pages", "total accesses", "accesses/page"],
    )
    for name in ("ring", "data", "init"):
        group = characterization.groups[name]
        table.add_row(
            name, group.page_count, group.total_accesses, group.accesses_per_page
        )
    table.add_note(
        f"Data-page access pattern periodic: {characterization.periodic}; "
        f"mean sequential run length "
        f"{characterization.mean_run_length:.0f} uses/page "
        "(paper: ~1500, periodic ring order)."
    )
    table.add_note(
        "Paper groups: 1 ring page (every packet), 32 x 2 MB data pages, "
        "~70 cold init pages.  'ring' here includes the mailbox page, which "
        "is likewise touched every packet."
    )
    return table


# ----------------------------------------------------------------------
# Figure 9: motivation — bandwidth vs tenant count for DevTLB configs
# ----------------------------------------------------------------------

def figure9(scale: Optional[RunScale] = None) -> ExperimentTable:
    """Figure 9: modeled bandwidth collapses as tenants thrash the DevTLB."""
    scale = scale or DEFAULT
    table = ExperimentTable(
        experiment_id="Figure 9",
        title="Modeled I/O bandwidth vs concurrent connections (200 Gb/s)",
        columns=["tenants", "64-entry 8-way Gb/s", "1024-entry 8-way Gb/s"],
    )
    small = base_config()
    large = base_config().with_overrides(
        devtlb=TlbConfig(num_entries=1024, ways=8, policy="lfu")
    )
    counts = (1, 2, 4, 8, 16, 32, 64) if scale.name != "smoke" else (2, 8)
    for count in counts:
        small_point = run_point(small, "mediastream", count, "RR1", scale)
        large_point = run_point(large, "mediastream", count, "RR1", scale)
        table.add_row(
            count,
            small_point.bandwidth_gbps,
            large_point.bandwidth_gbps,
        )
    table.add_note(
        "Paper: full link up to ~4 connections for the 64-entry DevTLB, "
        "then eviction-driven collapse, mirroring the Figure 5 measurement."
    )
    return table


# ----------------------------------------------------------------------
# Table III: translation-request counts per benchmark
# ----------------------------------------------------------------------

def table3(
    num_tenants: int = 256, packets_per_tenant: int = 1200
) -> ExperimentTable:
    """Table III: min/max/total translation requests per benchmark.

    The paper's counts come from 1024-tenant traces with up to 108k
    translations per tenant; we generate scaled traces with the same
    per-tenant *spread* (min/max ratio) and report both the raw counts and
    the ratios, which are the scale-free quantities.
    """
    table = ExperimentTable(
        experiment_id="Table III",
        title="Translation requests per benchmark (scaled trace)",
        columns=[
            "benchmark",
            "max/tenant",
            "min/tenant",
            "total",
            "min/max ratio",
            "paper min/max ratio",
        ],
    )
    paper_ratios = {
        "iperf3": 68_079 / 108_510,
        "mediastream": 5_520 / 73_657,
        "websearch": 43_362 / 108_513,
    }
    for name in sorted(paper_ratios):
        # Table III reports the per-tenant request counts of the collected
        # logs (what the constructor reads), not of the interleaved trace —
        # RR interleaving equalises per-tenant counts in the trace itself.
        specs = make_tenant_specs(
            profile_by_name(name), num_tenants, packets_per_tenant
        )
        translations = [3 * spec.packets for spec in specs]
        ratio = min(translations) / max(translations)
        table.add_row(
            name,
            max(translations),
            min(translations),
            sum(translations),
            ratio,
            paper_ratios[name],
        )
    table.add_note(
        "Counts are scaled (paper: 1024 tenants, up to 108,513 translations "
        "per tenant, 69.7M total for iperf3); min/max ratios are matched."
    )
    table.add_note(
        "The interleaver stops at the first exhausted tenant (edge-effect "
        "rule), so totals reflect the least-active tenant, as in the paper."
    )
    return table


# ----------------------------------------------------------------------
# Figure 10: headline scalability, Base vs HyperTRIO
# ----------------------------------------------------------------------

def figure10(scale: Optional[RunScale] = None) -> ExperimentTable:
    """Figure 10: I/O bandwidth scalability of Base vs HyperTRIO."""
    scale = scale or DEFAULT
    table = ExperimentTable(
        experiment_id="Figure 10",
        title="Scalability of I/O bandwidth for HyperTRIO and Base designs",
        columns=[
            "benchmark",
            "interleaving",
            "tenants",
            "Base Gb/s",
            "HyperTRIO Gb/s",
            "Base util %",
            "HyperTRIO util %",
        ],
    )
    base = base_config()
    hyper = hypertrio_config()
    for benchmark in ("iperf3", "mediastream", "websearch"):
        for interleaving in scale.interleavings:
            for count in scale.tenant_counts:
                base_point = run_point(base, benchmark, count, interleaving, scale)
                hyper_point = run_point(hyper, benchmark, count, interleaving, scale)
                table.add_row(
                    benchmark,
                    interleaving,
                    count,
                    base_point.bandwidth_gbps,
                    hyper_point.bandwidth_gbps,
                    base_point.utilization_percent,
                    hyper_point.utilization_percent,
                )
    table.add_note(
        "Paper: Base is capped at 12-30 Gb/s (<=15%) beyond 32 tenants; "
        "HyperTRIO sustains up to 100% at 1024 tenants for RR orders and "
        "up to 80% for RAND1."
    )
    return table


# ----------------------------------------------------------------------
# Figure 11a: scaling the DevTLB
# ----------------------------------------------------------------------

def figure11a(scale: Optional[RunScale] = None) -> ExperimentTable:
    """Figure 11a: a bigger DevTLB does not fix hyper-tenant scaling."""
    scale = scale or DEFAULT
    table = ExperimentTable(
        experiment_id="Figure 11a",
        title="Base design with 64- vs 1024-entry 8-way DevTLB",
        columns=["benchmark", "tenants", "64-entry util %", "1024-entry util %"],
    )
    small = base_config()
    large = base_config().with_overrides(
        devtlb=TlbConfig(num_entries=1024, ways=8, policy="lfu")
    )
    for benchmark in scale.benchmarks:
        for count in scale.tenant_counts:
            small_point = run_point(small, benchmark, count, "RR1", scale)
            large_point = run_point(large, benchmark, count, "RR1", scale)
            table.add_row(
                benchmark,
                count,
                small_point.utilization_percent,
                large_point.utilization_percent,
            )
    table.add_note(
        "Paper: 1024 entries help up to ~64 tenants; beyond 128 tenants "
        "both sizes give the same (collapsed) utilisation."
    )
    return table


# ----------------------------------------------------------------------
# Figure 11b: replacement policies
# ----------------------------------------------------------------------

def figure11b(scale: Optional[RunScale] = None) -> ExperimentTable:
    """Figure 11b: LRU vs LFU vs Belady oracle on the Base DevTLB."""
    scale = scale or DEFAULT
    table = ExperimentTable(
        experiment_id="Figure 11b",
        title="Base-design DevTLB replacement policies",
        columns=["benchmark", "tenants", "LRU util %", "LFU util %", "oracle util %"],
    )
    for benchmark in scale.benchmarks:
        for count in scale.tenant_counts:
            utilizations = []
            for policy in ("lru", "lfu", "oracle"):
                config = base_config().with_overrides(
                    devtlb=TlbConfig(num_entries=64, ways=8, policy=policy)
                )
                point = run_point(config, benchmark, count, "RR1", scale)
                utilizations.append(point.utilization_percent)
            table.add_row(benchmark, count, *utilizations)
    table.add_note(
        "Paper: LFU >= LRU in the mid-tenant regime (up to 2x for iperf3 at "
        "16 tenants); even the oracle cannot scale past ~64 tenants."
    )
    return table


# ----------------------------------------------------------------------
# Figure 11c: fully associative DevTLB with oracle replacement
# ----------------------------------------------------------------------

def figure11c(scale: Optional[RunScale] = None) -> ExperimentTable:
    """Figure 11c: even an ideal fully-associative DevTLB cannot scale."""
    scale = scale or DEFAULT
    table = ExperimentTable(
        experiment_id="Figure 11c",
        title="Fully associative 64-entry DevTLB with oracle replacement",
        columns=["benchmark", "tenants", "util %", "active set/tenant"],
    )
    for benchmark in scale.benchmarks:
        profile = profile_by_name(benchmark)
        for count in scale.tenant_counts:
            config = base_config().with_overrides(
                devtlb=TlbConfig(
                    num_entries=64, ways=64, policy="oracle", fully_associative=True
                )
            )
            point = run_point(config, benchmark, count, "RR1", scale)
            table.add_row(
                benchmark,
                count,
                point.utilization_percent,
                profile.active_translation_set,
            )
    table.add_note(
        "Paper: once tenants x active-set exceeds the entry count, every "
        "request misses; >8 tenants already produce low utilisation."
    )
    return table


# ----------------------------------------------------------------------
# Figure 12a: partitioning only
# ----------------------------------------------------------------------

def partitioned_only_config() -> ArchConfig:
    """HyperTRIO's partitioning without PTB or prefetching (Figure 12a)."""
    hyper = hypertrio_config()
    return hyper.with_overrides(
        name="P-DevTLB",
        ptb_entries=1,
        prefetch=PrefetchConfig(enabled=False),
    )


def figure12a(scale: Optional[RunScale] = None) -> ExperimentTable:
    """Figure 12a: effect of partitioning the DevTLB and L[2-3] TLBs."""
    scale = scale or DEFAULT
    table = ExperimentTable(
        experiment_id="Figure 12a",
        title="Partitioned DevTLB + translation caches (no PTB, no prefetch)",
        columns=["benchmark", "tenants", "Base util %", "partitioned util %"],
    )
    base = base_config()
    partitioned = partitioned_only_config()
    for benchmark in scale.benchmarks:
        for count in scale.tenant_counts:
            base_point = run_point(base, benchmark, count, "RR1", scale)
            part_point = run_point(partitioned, benchmark, count, "RR1", scale)
            table.add_row(
                benchmark,
                count,
                base_point.utilization_percent,
                part_point.utilization_percent,
            )
    table.add_note(
        "Paper: utilisation stays high until multiple tenants share a "
        "partition; partitioning beats bigger/associativity/policy changes "
        "but does not alone solve hyper-tenant scaling."
    )
    return table


# ----------------------------------------------------------------------
# Figure 12b: Pending Translation Buffer sizes
# ----------------------------------------------------------------------

def figure12b(scale: Optional[RunScale] = None) -> ExperimentTable:
    """Figure 12b: PTB size sweep on top of the partitioned design."""
    scale = scale or DEFAULT
    table = ExperimentTable(
        experiment_id="Figure 12b",
        title="Effect of PTB size (partitioned design, no prefetch)",
        columns=["benchmark", "tenants", "PTB=1 util %", "PTB=8 util %",
                 "PTB=32 util %"],
    )
    for benchmark in scale.benchmarks:
        for count in scale.tenant_counts:
            utilizations = []
            for entries in (1, 8, 32):
                config = partitioned_only_config().with_overrides(
                    name=f"PTB{entries}", ptb_entries=entries
                )
                point = run_point(config, benchmark, count, "RR1", scale)
                utilizations.append(point.utilization_percent)
            table.add_row(benchmark, count, *utilizations)
    table.add_note(
        "Paper: 8 entries reach full bandwidth up to 16 tenants; 32 entries "
        "give ~136 Gb/s aggregated at 1024 tenants (68% of link)."
    )
    return table


# ----------------------------------------------------------------------
# Figure 12c: prefetching contribution
# ----------------------------------------------------------------------

def figure12c(scale: Optional[RunScale] = None) -> ExperimentTable:
    """Figure 12c: translation prefetching on top of PTB + partitioning."""
    scale = scale or DEFAULT
    table = ExperimentTable(
        experiment_id="Figure 12c",
        title="Prefetching contribution (vs partitioned + PTB32)",
        columns=[
            "benchmark",
            "tenants",
            "no-prefetch util %",
            "prefetch util %",
            "prefetch-supplied %",
        ],
    )
    without = partitioned_only_config().with_overrides(
        name="PTB32+Part", ptb_entries=32
    )
    with_prefetch = hypertrio_config()
    for benchmark in scale.benchmarks:
        for count in scale.tenant_counts:
            off_point = run_point(without, benchmark, count, "RR1", scale)
            on_point = run_point(with_prefetch, benchmark, count, "RR1", scale)
            table.add_row(
                benchmark,
                count,
                off_point.utilization_percent,
                on_point.utilization_percent,
                on_point.result.prefetch_supplied_fraction * 100.0,
            )
    table.add_note(
        "Paper: up to +30% link utilisation for websearch in hyper-tenant "
        "setups; the prefetcher supplies ~45% of translations at 1024 "
        "tenants."
    )
    return table


#: Every driver, keyed by its paper anchor (benchmarks iterate this).
#: ``device_scaling`` extends the paper with the multi-device fabric axis
#: (see :mod:`repro.analysis.device_scaling`); ``resilience`` extends it
#: with fault injection (see :mod:`repro.analysis.resilience`).
ALL_EXPERIMENTS = {
    "device_scaling": device_scaling,
    "resilience": resilience,
    "service_saturation": service_saturation,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "figure4": figure4,
    "figure5": figure5,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11a": figure11a,
    "figure11b": figure11b,
    "figure11c": figure11c,
    "figure12a": figure12a,
    "figure12b": figure12b,
    "figure12c": figure12c,
}


def run_driver(
    name: str,
    scale: Optional[RunScale] = None,
    runner: Optional[object] = None,
    queue: Optional[object] = None,
    on_event: Optional[object] = None,
) -> ExperimentTable:
    """Run one registered driver by name, sequentially or orchestrated.

    ``scale`` is forwarded only to drivers that take it (the tables and
    Figure 8 scale themselves).  With ``runner`` (an
    :class:`repro.runner.ExperimentRunner`), every sweep point the driver
    needs is submitted as a job through the runner — parallel, memoized
    against the runner's store, and resumable — and the returned table is
    identical to the sequential one.  With ``queue`` (an
    :class:`repro.runner.ExperimentQueue`; requires ``runner``), the plan
    is instead drained cooperatively with every other worker sharing the
    queue, and the return value becomes a ``(table, stats)`` pair — see
    :func:`repro.runner.orchestrate.run_experiment_queue`.  Raises
    :class:`KeyError` for an unregistered name.
    """
    import inspect

    try:
        driver = ALL_EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(ALL_EXPERIMENTS)}"
        ) from None
    kwargs = {}
    if scale is not None and "scale" in inspect.signature(driver).parameters:
        kwargs["scale"] = scale
    if runner is None:
        return driver(**kwargs)
    if queue is not None:
        from repro.runner.orchestrate import run_experiment_queue

        return run_experiment_queue(
            driver, runner, queue, kwargs, on_event=on_event
        )
    from repro.runner.orchestrate import run_experiment

    return run_experiment(driver, runner, kwargs)


