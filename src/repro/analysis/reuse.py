"""Reuse-distance analysis of translation-request streams.

The paper's whole argument hangs on reuse distances: a tenant's hot pages
recur immediately *within* its burst but only after ``~3 x num_tenants``
intervening requests *across* tenants, so any shared cache smaller than
``tenants x active-set`` thrashes regardless of policy ("long reuse
distance of the same page belonging to a single tenant", Section V-C).

:func:`reuse_distances` computes the classic LRU stack distances of a
DevTLB key stream; :func:`reuse_profile` summarises them into the numbers
that predict hit rates (a cache of ``C`` entries under LRU hits exactly
the accesses with stack distance < ``C``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.trace.records import PacketRecord


def reuse_distances(keys: Iterable[Hashable]) -> List[Optional[int]]:
    """LRU stack distance of each access (``None`` for first touches).

    Distance 0 means the key was the most recently used; an LRU cache of
    ``C`` lines hits exactly the accesses with distance < ``C``.

    The implementation keeps the LRU stack as a list (most recent first);
    for the stream lengths used in analysis (tens of thousands of
    accesses over hundreds of distinct keys) this is fast enough and
    obviously correct.

    >>> reuse_distances(["a", "b", "a", "a", "b"])
    [None, None, 1, 0, 1]
    """
    stack: List[Hashable] = []
    distances: List[Optional[int]] = []
    positions: Dict[Hashable, int] = {}
    for key in keys:
        if key in positions:
            index = stack.index(key)
            distances.append(index)
            del stack[index]
        else:
            distances.append(None)
        stack.insert(0, key)
        positions = {k: i for i, k in enumerate(stack)}  # refresh map
    return distances


def _fast_reuse_distances(keys: Sequence[Hashable]) -> List[Optional[int]]:
    """O(n log n)-ish distance computation via last-access timestamps.

    Counts *distinct* keys touched since the previous access using a
    Fenwick tree over access timestamps — the standard stack-distance
    algorithm, used when streams are long.
    """
    keys = list(keys)
    n = len(keys)
    tree = [0] * (n + 1)

    def update(i: int, delta: int) -> None:
        i += 1
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def query(i: int) -> int:
        i += 1
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    last_seen: Dict[Hashable, int] = {}
    distances: List[Optional[int]] = []
    for now, key in enumerate(keys):
        previous = last_seen.get(key)
        if previous is None:
            distances.append(None)
        else:
            distances.append(query(now - 1) - query(previous))
            update(previous, -1)
        update(now, 1)
        last_seen[key] = now
    return distances


@dataclass
class ReuseProfile:
    """Summary of a key stream's reuse behaviour."""

    accesses: int
    distinct_keys: int
    first_touches: int
    median_distance: Optional[float]
    #: Fraction of accesses with stack distance < the given capacities.
    hit_rate_at: Dict[int, float]

    def predicted_lru_hit_rate(self, capacity: int) -> float:
        """Predicted fully-associative LRU hit rate at ``capacity``."""
        try:
            return self.hit_rate_at[capacity]
        except KeyError:
            raise KeyError(
                f"capacity {capacity} was not requested; available: "
                f"{sorted(self.hit_rate_at)}"
            ) from None


def reuse_profile(
    keys: Sequence[Hashable],
    capacities: Tuple[int, ...] = (8, 64, 512, 1024),
) -> ReuseProfile:
    """Compute a :class:`ReuseProfile` for a key stream."""
    keys = list(keys)
    if not keys:
        raise ValueError("cannot profile an empty stream")
    distances = _fast_reuse_distances(keys)
    finite = sorted(d for d in distances if d is not None)
    histogram: Counter = Counter(finite)
    hit_rate_at = {}
    for capacity in capacities:
        hits = sum(count for distance, count in histogram.items()
                   if distance < capacity)
        hit_rate_at[capacity] = hits / len(keys)
    median = None
    if finite:
        middle = len(finite) // 2
        if len(finite) % 2:
            median = float(finite[middle])
        else:
            median = (finite[middle - 1] + finite[middle]) / 2.0
    return ReuseProfile(
        accesses=len(keys),
        distinct_keys=len(set(keys)),
        first_touches=distances.count(None),
        median_distance=median,
        hit_rate_at=hit_rate_at,
    )


def devtlb_reuse_profile(
    packets: Iterable[PacketRecord],
    capacities: Tuple[int, ...] = (8, 64, 512, 1024),
) -> ReuseProfile:
    """Reuse profile of a hyper-trace's DevTLB key stream."""
    keys = [
        (packet.sid, giova >> 12)
        for packet in packets
        for giova in packet.giovas
    ]
    return reuse_profile(keys, capacities)
