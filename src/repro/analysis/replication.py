"""Multi-seed replication of sweep points.

Synthetic workloads carry seeded randomness (per-tenant irregularity,
RAND interleaving, packet-size sampling), so a single run is one draw.
:func:`replicate` runs the same sweep point across several seeds and
summarises the spread, which is what a results section should report for
any stochastic configuration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.scale import RunScale
from repro.analysis.sweeps import SweepPoint, run_point
from repro.core.config import ArchConfig


@dataclass(frozen=True)
class ReplicatedPoint:
    """Summary of one sweep point across seeds."""

    config_name: str
    benchmark: str
    num_tenants: int
    interleaving: str
    seeds: Tuple[int, ...]
    utilizations: Tuple[float, ...]

    @property
    def mean_utilization(self) -> float:
        return sum(self.utilizations) / len(self.utilizations)

    @property
    def std_utilization(self) -> float:
        if len(self.utilizations) < 2:
            return 0.0
        mean = self.mean_utilization
        variance = sum((u - mean) ** 2 for u in self.utilizations) / (
            len(self.utilizations) - 1
        )
        return math.sqrt(variance)

    @property
    def min_utilization(self) -> float:
        return min(self.utilizations)

    @property
    def max_utilization(self) -> float:
        return max(self.utilizations)

    def describe(self) -> str:
        return (
            f"{self.config_name} {self.benchmark} {self.num_tenants} "
            f"tenants {self.interleaving}: "
            f"{self.mean_utilization * 100:.1f}% "
            f"+/- {self.std_utilization * 100:.1f} "
            f"(n={len(self.seeds)})"
        )


def replicate(
    config: ArchConfig,
    benchmark: str,
    num_tenants: int,
    interleaving: str,
    scale: RunScale,
    seeds: Sequence[int] = (0, 1, 2),
) -> ReplicatedPoint:
    """Run one sweep point once per seed and summarise utilisation."""
    if not seeds:
        raise ValueError("need at least one seed")
    points: List[SweepPoint] = [
        run_point(config, benchmark, num_tenants, interleaving, scale, seed=seed)
        for seed in seeds
    ]
    return ReplicatedPoint(
        config_name=config.name,
        benchmark=benchmark,
        num_tenants=num_tenants,
        interleaving=interleaving,
        seeds=tuple(seeds),
        utilizations=tuple(point.result.link_utilization for point in points),
    )
