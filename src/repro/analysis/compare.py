"""Structured comparison of simulation results.

Most of the paper's figures are pairwise comparisons (Base vs HyperTRIO,
with vs without one mechanism).  :func:`compare_results` produces the
comparison as data — speedup, utilisation delta, per-structure hit-rate
deltas — and :func:`comparison_table` renders it, so examples and ad-hoc
studies don't reimplement the arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.report import ExperimentTable
from repro.core.results import SimulationResult


@dataclass(frozen=True)
class ResultComparison:
    """Pairwise comparison of two runs of the *same* trace."""

    baseline_name: str
    candidate_name: str
    bandwidth_speedup: float
    utilization_delta: float
    drop_delta: int
    mean_latency_ratio: float
    hit_rate_deltas: Dict[str, float]

    @property
    def candidate_wins(self) -> bool:
        return self.bandwidth_speedup > 1.0


def compare_results(
    baseline: SimulationResult, candidate: SimulationResult
) -> ResultComparison:
    """Compare ``candidate`` against ``baseline``.

    Both results should come from the same trace (same benchmark, tenant
    count, and interleaving); a mismatch raises ``ValueError`` because the
    derived ratios would be meaningless.
    """
    for attribute in ("benchmark", "num_tenants", "interleaving"):
        if getattr(baseline, attribute) != getattr(candidate, attribute):
            raise ValueError(
                f"results are not comparable: {attribute} differs "
                f"({getattr(baseline, attribute)!r} vs "
                f"{getattr(candidate, attribute)!r})"
            )
    speedup = (
        candidate.achieved_bandwidth_gbps / baseline.achieved_bandwidth_gbps
        if baseline.achieved_bandwidth_gbps
        else float("inf")
    )
    latency_ratio = (
        candidate.latency.mean_ns / baseline.latency.mean_ns
        if baseline.latency.mean_ns
        else float("inf")
    )
    shared = set(baseline.cache_stats) & set(candidate.cache_stats)
    deltas = {
        name: candidate.cache_stats[name].hit_rate
        - baseline.cache_stats[name].hit_rate
        for name in sorted(shared)
    }
    return ResultComparison(
        baseline_name=baseline.config_name,
        candidate_name=candidate.config_name,
        bandwidth_speedup=speedup,
        utilization_delta=candidate.link_utilization - baseline.link_utilization,
        drop_delta=candidate.packets.dropped - baseline.packets.dropped,
        mean_latency_ratio=latency_ratio,
        hit_rate_deltas=deltas,
    )


def comparison_table(
    comparison: ResultComparison, title: Optional[str] = None
) -> ExperimentTable:
    """Render a :class:`ResultComparison` as an :class:`ExperimentTable`."""
    table = ExperimentTable(
        experiment_id="Comparison",
        title=title
        or f"{comparison.candidate_name} vs {comparison.baseline_name}",
        columns=["metric", "value"],
    )
    table.add_row("bandwidth speedup", f"{comparison.bandwidth_speedup:.2f}x")
    table.add_row(
        "utilisation delta", f"{comparison.utilization_delta * 100:+.1f} pts"
    )
    table.add_row("drops delta", comparison.drop_delta)
    table.add_row(
        "mean latency ratio", f"{comparison.mean_latency_ratio:.2f}x"
    )
    for name, delta in comparison.hit_rate_deltas.items():
        table.add_row(f"{name} hit-rate delta", f"{delta * 100:+.1f} pts")
    return table
