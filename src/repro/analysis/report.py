"""Plain-text tables for experiment output.

Every experiment driver returns an :class:`ExperimentTable`; benchmarks
print its :meth:`render` output, and EXPERIMENTS.md embeds its
:meth:`to_markdown` form.  Values may be numbers or strings; numbers are
formatted compactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


@dataclass
class ExperimentTable:
    """A titled table of experiment rows.

    Attributes
    ----------
    experiment_id:
        Paper anchor, e.g. ``"Figure 10"`` or ``"Table III"``.
    title:
        One-line description.
    columns:
        Column headers.
    rows:
        Row values, one sequence per row, aligned with ``columns``.
    notes:
        Free-form caveats (scaling, substitutions, expected shape).
    """

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.experiment_id}: row has {len(values)} cells, "
                f"expected {len(self.columns)}"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        """All values of one named column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII rendering for terminal output."""
        cells = [[_format_cell(value) for value in row] for row in self.rows]
        widths = [
            max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
            for i, header in enumerate(self.columns)
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        header = " | ".join(h.ljust(w) for h, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering for EXPERIMENTS.md."""
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_format_cell(v) for v in row) + " |")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"*{note}*")
        return "\n".join(lines)
