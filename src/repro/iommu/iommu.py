"""The chipset-side translation subsystem (IOMMU).

Models steps 6-8 of the paper's Figure 3: a request that missed the DevTLB
arrives over PCIe with an untranslated gIOVA.  The IOMMU checks its IOTLB;
on a miss it performs the two-dimensional page-table walk, consulting two
walk-acceleration structures:

* the **nested TLB** (the L3TLB of Table IV) caches guest-physical to
  host-physical page translations, so the entire 4-access host walk of a
  guest page-table node (or of the final data page) is skipped on a hit —
  this is the paper's "L[1-4]TLBs ... store translations from guest physical
  to host physical addresses";
* the **PTE cache** (the L2TLB of Table IV) caches individual page-table
  entries by physical address.  Because the five host walks of one
  two-dimensional walk revisit the same upper-level host entries, and a
  tenant's guest upper-level entries repeat across packets, this cache is
  what turns the cold 24-access walk into the few-access warm walk real
  page-walk caches deliver.

The output of :meth:`Iommu.translate` is a :class:`TranslationOutcome`
carrying both the result and the latency spent *inside* the chipset; PCIe
traversal is charged by the device/simulator layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cache.base import TranslationCache
from repro.cache.partitioned import PartitionedCache
from repro.cache.setassoc import SetAssociativeCache
from repro.iommu.context import ContextCache
from repro.mem.address import page_number
from repro.mem.dram import MainMemory
from repro.mem.walker import TwoDimensionalWalk, TwoDimensionalWalker


@dataclass(frozen=True)
class TranslationOutcome:
    """Result of one IOMMU translation.

    Attributes
    ----------
    hpa:
        Host-physical page base of the translated gIOVA.
    page_shift:
        Size of the mapping (12 for 4 KB, 21 for 2 MB).
    latency_ns:
        Time spent in the IOMMU (IOTLB lookup, walk, DRAM accesses).
    iotlb_hit:
        Whether the chipset IOTLB supplied the translation directly.
    memory_accesses:
        DRAM reads performed by the walk (0 on an IOTLB hit).
    nested_hits / nested_misses:
        Nested-TLB outcomes for the walk's host-walk phases.
    """

    hpa: int
    page_shift: int
    latency_ns: float
    iotlb_hit: bool
    memory_accesses: int
    nested_hits: int
    nested_misses: int


@dataclass
class IommuTimings:
    """Latency parameters for the chipset (Table II)."""

    iotlb_hit_ns: float = 2.0
    cache_hit_ns: float = 2.0


class Iommu:
    """IOMMU with an IOTLB, a nested TLB, a PTE cache, and a 2-D walker.

    Parameters
    ----------
    iotlb:
        Chipset cache keyed by ``(sid, giova_page)`` holding final
        translations.
    nested_tlb:
        Nested-translation cache keyed by ``(sid, gpa_page)``.
    pte_cache:
        Page-table-entry cache keyed by ``(sid, entry_hpa)``.
    walker_for_sid:
        Callable returning the :class:`TwoDimensionalWalker` of a tenant.
    memory:
        DRAM model charged for every page-table entry read.
    """

    def __init__(
        self,
        iotlb: TranslationCache,
        nested_tlb: TranslationCache,
        pte_cache: TranslationCache,
        walker_for_sid: Callable[[int], TwoDimensionalWalker],
        memory: MainMemory,
        context_cache: Optional[ContextCache] = None,
        timings: Optional[IommuTimings] = None,
    ):
        self.iotlb = iotlb
        self.nested_tlb = nested_tlb
        self.pte_cache = pte_cache
        self._walker_for_sid = walker_for_sid
        self.memory = memory
        self.context_cache = context_cache
        self.timings = timings or IommuTimings()
        self.walks_performed = 0
        #: Callables invoked with the SID on every tenant-wide flush, so
        #: device-side state that caches chipset answers (in-flight
        #: prefetch installs in particular) can drop it too instead of
        #: re-installing a stale translation after the unmap.
        self._invalidation_listeners = []

    # ------------------------------------------------------------------
    def translate(self, sid: int, giova: int) -> TranslationOutcome:
        """Translate ``giova`` for tenant ``sid`` through the full hierarchy."""
        latency = 0.0
        if self.context_cache is not None:
            resolution = self.context_cache.resolve(sid)
            if not resolution.hit:
                latency += self.memory.read("pte")

        iotlb_key = (sid, page_number(giova))
        latency += self.timings.iotlb_hit_ns
        cached = self.iotlb.lookup(iotlb_key)
        if cached is not None:
            hpa, page_shift = cached
            return TranslationOutcome(
                hpa=hpa,
                page_shift=page_shift,
                latency_ns=latency,
                iotlb_hit=True,
                memory_accesses=0,
                nested_hits=0,
                nested_misses=0,
            )

        walk = self._walker_for_sid(sid).walk(giova)
        walk_latency, accesses, nested_hits, nested_misses = self._charge_walk(
            sid, walk
        )
        latency += walk_latency
        self.walks_performed += 1
        self.iotlb.insert(iotlb_key, (walk.hpa, walk.page_shift))
        return TranslationOutcome(
            hpa=walk.hpa,
            page_shift=walk.page_shift,
            latency_ns=latency,
            iotlb_hit=False,
            memory_accesses=accesses,
            nested_hits=nested_hits,
            nested_misses=nested_misses,
        )

    # ------------------------------------------------------------------
    def _charge_walk(self, sid: int, walk: TwoDimensionalWalk):
        """Charge latency for a 2-D walk given the walk caches' contents."""
        timings = self.timings
        memory = self.memory
        latency = 0.0
        accesses = 0
        nested_hits = 0
        nested_misses = 0
        for phase in walk.phases:
            nested_key = (sid, phase.gpa_page)
            if self.nested_tlb.lookup(nested_key) is not None:
                nested_hits += 1
                latency += timings.cache_hit_ns
            else:
                nested_misses += 1
                # Host walk of this guest-physical page: each host PTE read
                # first tries the PTE cache.
                for step in phase.host_steps:
                    pte_key = (sid, step.entry_address)
                    if self.pte_cache.lookup(pte_key) is not None:
                        latency += timings.cache_hit_ns
                    else:
                        latency += memory.read("pte")
                        accesses += 1
                        self.pte_cache.insert(pte_key, True)
                self.nested_tlb.insert(nested_key, True)
            if phase.guest_entry_hpa is not None:
                # Reading the guest page-table entry itself (also cacheable:
                # a tenant's upper guest entries repeat across packets).
                guest_key = (sid, phase.guest_entry_hpa)
                if self.pte_cache.lookup(guest_key) is not None:
                    latency += timings.cache_hit_ns
                else:
                    latency += memory.read("pte")
                    accesses += 1
                    self.pte_cache.insert(guest_key, True)
        return latency, accesses, nested_hits, nested_misses

    # ------------------------------------------------------------------
    def add_invalidation_listener(self, listener: Callable[[int], None]) -> None:
        """Register ``listener(sid)`` to run on every tenant-wide flush."""
        self._invalidation_listeners.append(listener)

    def invalidate_tenant(self, sid: int) -> None:
        """Flush all cached state for ``sid`` (unmap/teardown path)."""
        for cache in (self.iotlb, self.nested_tlb, self.pte_cache):
            stale = [key for key in _iter_keys(cache) if key[0] == sid]
            for key in stale:
                cache.invalidate(key)
        for listener in self._invalidation_listeners:
            listener(sid)


def _iter_keys(cache: TranslationCache):
    """Best-effort key iteration for the cache types used here."""
    if isinstance(cache, (SetAssociativeCache, PartitionedCache)):
        return list(cache.keys())
    raise TypeError(f"cannot iterate keys of {type(cache).__name__}")
