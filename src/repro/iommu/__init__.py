"""Chipset translation subsystem: context cache, IOTLB, nested TLBs, walker."""

from repro.iommu.context import ContextCache, ContextEntry, ContextResolution, SourceId
from repro.iommu.iommu import Iommu, IommuTimings, TranslationOutcome

__all__ = [
    "ContextCache",
    "ContextEntry",
    "ContextResolution",
    "SourceId",
    "Iommu",
    "IommuTimings",
    "TranslationOutcome",
]
