"""Context cache: Source ID to context-entry resolution.

Step 1-2 of the paper's Figure 3: the device identifies the PCIe
Bus/Device/Function (BDF, here condensed into an integer Source ID) of a
request and looks up the Context Cache for the Context Entry, which carries
the Device ID (DID) and the root pointer of the second-level page table.

In a hyper-tenant system the context table itself lives in memory, so a
context-cache miss costs a memory access.  The cache is small and SIDs are
extremely reusable, so the paper does not sweep it; we model it for
completeness and account its (rare) miss traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cache.setassoc import SetAssociativeCache


@dataclass(frozen=True)
class SourceId:
    """A PCIe BDF triplet condensed to the integer used for tagging.

    The paper uses "SID" for the Bus/Device/Function of the requesting
    virtual function.  ``value`` is what flows through caches and the
    partitioning logic; bus/device/function are kept for display.
    """

    bus: int
    device: int
    function: int

    def __post_init__(self):
        if not 0 <= self.bus <= 0xFF:
            raise ValueError(f"bus {self.bus} out of range")
        if not 0 <= self.device <= 0x1F:
            raise ValueError(f"device {self.device} out of range")
        if not 0 <= self.function <= 0x7:
            raise ValueError(f"function {self.function} out of range")

    @property
    def value(self) -> int:
        """16-bit encoded BDF (bus[15:8] | device[7:3] | function[2:0])."""
        return (self.bus << 8) | (self.device << 3) | self.function

    @classmethod
    def from_index(cls, index: int) -> "SourceId":
        """Build the SID for the ``index``-th virtual function of a device.

        VFs are dense: function bits first, then device, then bus — the
        layout SR-IOV uses when a device exposes many VFs.
        """
        if index < 0 or index > 0xFFFF:
            raise ValueError(f"VF index {index} out of range")
        return cls(bus=(index >> 8) & 0xFF, device=(index >> 3) & 0x1F,
                   function=index & 0x7)


@dataclass(frozen=True)
class ContextEntry:
    """What the context table stores per SID."""

    did: int
    root_table_hpa: int


def _sid_indexer(key: int, num_sets: int) -> int:
    """SIDs are dense small integers, so plain modulo spreads them evenly.

    Module-level (not a lambda) so the cache stays picklable for
    simulation checkpoints.
    """
    return key % num_sets


class ContextCache:
    """Cache of SID -> :class:`ContextEntry` lookups.

    ``register`` installs the backing-table truth (what the hypervisor wrote
    to memory); ``resolve`` performs a cached lookup and reports whether it
    would have cost a memory access.
    """

    def __init__(self, num_entries: int = 64, ways: int = 4, policy: str = "lru"):
        self._table: Dict[int, ContextEntry] = {}
        self._cache = SetAssociativeCache(
            num_entries=num_entries, ways=ways, policy=policy, name="context-cache",
            indexer=_sid_indexer,
        )

    def register(self, sid: int, entry: ContextEntry) -> None:
        """Install the context entry for ``sid`` in the in-memory table."""
        self._table[sid] = entry

    def resolve(self, sid: int) -> "ContextResolution":
        """Look up ``sid``; a miss reads the context table from memory."""
        cached = self._cache.lookup(sid)
        if cached is not None:
            return ContextResolution(entry=cached, hit=True)
        entry = self._table.get(sid)
        if entry is None:
            raise KeyError(f"SID {sid:#x} has no registered context entry")
        self._cache.insert(sid, entry)
        return ContextResolution(entry=entry, hit=False)

    @property
    def stats(self):
        return self._cache.stats

    def __len__(self) -> int:
        return len(self._cache)


@dataclass(frozen=True)
class ContextResolution:
    """Result of a context-cache access."""

    entry: ContextEntry
    hit: bool
