"""Two-dimensional (nested) page-table walker.

Implements the walk in the paper's Figure 2: translating one gIOVA through a
4-level guest table requires reading four guest page-table entries, and the
guest-physical address of *each* guest node must first be translated through
the host table (a 4-access host walk), plus a final host walk for the data
page itself.  That yields the 24 memory accesses for 4 KB mappings quoted in
Table II, and 19 accesses when the guest mapping is a 2 MB huge page (the
guest walk terminates one level earlier).

The walker is purely functional: it returns the complete structure of the
walk (which accesses would be performed, and which of them can be skipped by
a nested-TLB hit).  The IOMMU timing model decides which accesses actually
reach DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.mem.address import PAGE_SHIFT_4K, page_base
from repro.mem.pagetable import AddressSpace, TranslationFault, WalkStep


@dataclass
class WalkerStats:
    """Walk-structure memoisation accounting (observability).

    ``memo_hits`` are walks answered from the per-page memo;
    ``walks_computed`` enumerated the page tables from scratch.  A low
    hit rate on a hot walker means the tenant's working set outruns the
    memo — exactly the case where walk latency dominates the run.
    """

    memo_hits: int = 0
    walks_computed: int = 0
    invalidations: int = 0

    @property
    def memo_hit_rate(self) -> float:
        total = self.memo_hits + self.walks_computed
        return self.memo_hits / total if total else 0.0


@dataclass(frozen=True)
class NestedWalkPhase:
    """One guest level of a two-dimensional walk.

    Attributes
    ----------
    guest_level:
        The guest page-table level whose entry this phase reads (4..1), or
        0 for the final host walk of the data page.
    gpa_page:
        Guest-physical page that the host walk of this phase translates
        (page base of the guest node, or of the data page for the final
        phase).  A hit in a nested TLB for this page skips ``host_steps``.
    host_steps:
        The host page-table entries read to translate ``gpa_page``.
    guest_entry_hpa:
        Host-physical address of the guest page-table entry read after the
        host walk, or ``None`` for the final phase (the data access itself
        is not part of translation).
    """

    guest_level: int
    gpa_page: int
    host_steps: Tuple[WalkStep, ...]
    guest_entry_hpa: int

    @property
    def access_count(self) -> int:
        """Memory accesses in this phase when nothing is cached."""
        extra = 1 if self.guest_entry_hpa is not None else 0
        return len(self.host_steps) + extra


@dataclass(frozen=True)
class TwoDimensionalWalk:
    """Complete result of translating one gIOVA.

    ``phases`` holds one :class:`NestedWalkPhase` per guest level plus the
    final host walk; ``hpa`` is the resulting host-physical address of the
    page base and ``page_shift`` its size.
    """

    giova: int
    hpa: int
    page_shift: int
    phases: Tuple[NestedWalkPhase, ...]

    @property
    def total_memory_accesses(self) -> int:
        """Accesses with cold caches (24 for 4 KB pages, 19 for 2 MB)."""
        return sum(phase.access_count for phase in self.phases)


class TwoDimensionalWalker:
    """Walks a tenant :class:`~repro.mem.pagetable.AddressSpace`.

    Walk structures are memoised per 4 KB gIOVA page: the access sequence
    of a walk is a pure function of the (static during a run) page tables,
    and the performance model replays the same pages millions of times.
    Call :meth:`invalidate` after changing mappings.
    """

    def __init__(self, space: AddressSpace):
        self._space = space
        self._memo = {}
        self.stats = WalkerStats()

    def walk(self, giova: int) -> TwoDimensionalWalk:
        """Translate ``giova`` and enumerate every access of the 2-D walk.

        Raises :class:`~repro.mem.pagetable.TranslationFault` when either
        dimension has no mapping.
        """
        page = giova >> 12
        cached = self._memo.get(page)
        if cached is None:
            cached = self._walk_uncached(page << 12)
            self._memo[page] = cached
            self.stats.walks_computed += 1
        else:
            self.stats.memo_hits += 1
        return cached

    def invalidate(self, giova: int = None) -> None:
        """Drop memoised walks (all of them, or one page's)."""
        self.stats.invalidations += 1
        if giova is None:
            self._memo.clear()
        else:
            self._memo.pop(giova >> 12, None)

    def _walk_uncached(self, giova: int) -> TwoDimensionalWalk:
        phases = []
        node = self._space.guest_table.root
        # Walk the guest table level by level; each node read needs a host
        # walk of the node's guest-physical address first.
        guest_frame = None
        guest_page_shift = PAGE_SHIFT_4K
        level = node.level
        from repro.mem.address import level_index  # local import to keep hot path tight

        while True:
            index = level_index(giova, level)
            entry_gpa = node.entry_address(index)
            gpa_page = page_base(entry_gpa)
            host_frame, _, host_steps = self._host_walk(entry_gpa, giova, level)
            entry_hpa = host_frame + (entry_gpa - gpa_page)
            phases.append(
                NestedWalkPhase(
                    guest_level=level,
                    gpa_page=gpa_page,
                    host_steps=host_steps,
                    guest_entry_hpa=entry_hpa,
                )
            )
            guest_entry = node.entries.get(index)
            if guest_entry is None:
                raise TranslationFault(giova, level, self._space.guest_table.name)
            if guest_entry.is_leaf:
                guest_frame = guest_entry.frame
                guest_page_shift = guest_entry.page_shift
                break
            node = guest_entry.child
            level -= 1

        # Final host walk: translate the data page's guest-physical address.
        data_gpa = guest_frame + (giova & ((1 << guest_page_shift) - 1))
        data_gpa_page = page_base(data_gpa)
        host_frame, _, host_steps = self._host_walk(data_gpa, giova, 0)
        phases.append(
            NestedWalkPhase(
                guest_level=0,
                gpa_page=data_gpa_page,
                host_steps=host_steps,
                guest_entry_hpa=None,
            )
        )
        hpa = host_frame + (data_gpa - data_gpa_page)
        return TwoDimensionalWalk(
            giova=giova,
            hpa=page_base(hpa),
            page_shift=guest_page_shift,
            phases=tuple(phases),
        )

    def _host_walk(self, gpa: int, giova: int, guest_level: int):
        """Host-walk ``gpa``; lazily back page-table node frames."""
        try:
            return self._space.host_table.walk(gpa)
        except TranslationFault:
            # Guest page-table node frames are allocated from guest-physical
            # space and backed by the host on first touch, exactly as a
            # hypervisor populates EPT mappings on demand.
            self._space.ensure_backed(gpa)
            return self._space.host_table.walk(gpa)
