"""Physical frame allocation for the modelled host and guests.

Page tables built by :mod:`repro.mem.pagetable` need physical addresses for
their nodes and leaf frames.  The allocator hands out frame addresses from a
bump pointer, optionally scattering them with a deterministic permutation so
that page-table nodes of different tenants do not land in trivially
sequential addresses (real hosts allocate from a shared buddy allocator, so
different VMs' frames interleave).
"""

from __future__ import annotations

from repro.mem.address import PAGE_SHIFT_4K, PAGE_SIZE_4K


class FrameAllocator:
    """Bump allocator of physical page frames.

    Parameters
    ----------
    base:
        First physical address handed out.  Must be 4 KB aligned.
    scatter:
        When true, frame addresses are permuted with a multiplicative hash
        within a large window so consecutive allocations are not consecutive
        in physical memory.  The permutation is deterministic, so traces and
        page tables are reproducible.
    """

    #: Window (in frames) within which scattered allocations are permuted.
    _SCATTER_WINDOW_BITS = 24

    def __init__(self, base: int = 0x1_0000_0000, scatter: bool = False):
        if base % PAGE_SIZE_4K != 0:
            raise ValueError(f"base {base:#x} is not 4 KiB aligned")
        self._base_frame = base >> PAGE_SHIFT_4K
        self._next = 0
        self._scatter = scatter

    @property
    def frames_allocated(self) -> int:
        """Number of 4 KB frames handed out so far."""
        return self._next

    def allocate(self, count: int = 1) -> int:
        """Allocate ``count`` contiguous 4 KB frames; return the base address.

        With ``scatter`` enabled only single-frame allocations are permuted;
        multi-frame allocations stay contiguous (matching huge-page backing).
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        index = self._next
        self._next += count
        if self._scatter and count == 1:
            index = self._permute(index)
        return (self._base_frame + index) << PAGE_SHIFT_4K

    def allocate_node(self) -> int:
        """Allocate one frame to hold a page-table node."""
        return self.allocate(1)

    def allocate_huge(self) -> int:
        """Allocate a 2 MB-aligned run of frames backing one huge page."""
        frames_per_huge = 512
        # Align the bump pointer so the returned address is 2 MB aligned.
        remainder = self._next % frames_per_huge
        if remainder:
            self._next += frames_per_huge - remainder
        return self.allocate(frames_per_huge)

    def _permute(self, index: int) -> int:
        """Deterministically permute ``index`` within the scatter window.

        Uses a Feistel-free odd-multiplier permutation: multiplication by an
        odd constant modulo a power of two is a bijection.
        """
        window = 1 << self._SCATTER_WINDOW_BITS
        low = index % window
        high = index - low
        return high + (low * 0x9E3779B1 % window)
