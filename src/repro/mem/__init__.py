"""Memory substrate: addresses, frame allocation, page tables, 2-D walker.

These are the structures underneath the IOMMU: real radix page tables for
the guest (gIOVA -> gPA) and host (gPA -> hPA) dimensions, and a
two-dimensional walker that enumerates the exact memory accesses of a nested
walk (24 for 4 KB mappings, 19 for 2 MB mappings).
"""

from repro.mem.address import (
    PAGE_SHIFT_2M,
    PAGE_SHIFT_4K,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    PAGE_TABLE_LEVELS,
    level_indices,
    page_base,
    page_number,
    page_offset,
)
from repro.mem.allocator import FrameAllocator
from repro.mem.dram import DramStats, MainMemory
from repro.mem.pagetable import (
    AddressSpace,
    PageTable,
    PageTableEntry,
    PageTableNode,
    TranslationFault,
    WalkStep,
)
from repro.mem.walker import NestedWalkPhase, TwoDimensionalWalk, TwoDimensionalWalker

__all__ = [
    "PAGE_SHIFT_2M",
    "PAGE_SHIFT_4K",
    "PAGE_SIZE_2M",
    "PAGE_SIZE_4K",
    "PAGE_TABLE_LEVELS",
    "level_indices",
    "page_base",
    "page_number",
    "page_offset",
    "FrameAllocator",
    "MainMemory",
    "DramStats",
    "AddressSpace",
    "PageTable",
    "PageTableEntry",
    "PageTableNode",
    "TranslationFault",
    "WalkStep",
    "TwoDimensionalWalker",
    "TwoDimensionalWalk",
    "NestedWalkPhase",
]
