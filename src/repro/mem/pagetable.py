"""Radix page tables for the first-level (guest) and second-level (host) walks.

The paper's translation of a gIOVA is a *two-dimensional* page-table walk
(Figure 2): the guest page table maps gIOVA to guest-physical addresses, but
every guest page-table node is itself addressed by a guest-physical address
that must be translated through the host page table before it can be read.

This module builds real 4-level radix trees.  Nodes are allocated physical
frames from a :class:`~repro.mem.allocator.FrameAllocator`, so every
page-table entry the walker reads has a concrete physical address — the unit
the page-walk caches operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.mem.address import (
    ENTRIES_PER_NODE,
    PAGE_SHIFT_2M,
    PAGE_SHIFT_4K,
    PAGE_TABLE_LEVELS,
    level_index,
    page_base,
)
from repro.mem.allocator import FrameAllocator


class TranslationFault(Exception):
    """Raised when a walk reaches an address with no mapping."""

    def __init__(self, address: int, level: int, space: str):
        super().__init__(
            f"no {space} mapping for address {address:#x} at level {level}"
        )
        self.address = address
        self.level = level
        self.space = space


@dataclass
class PageTableNode:
    """One 4 KB radix node.

    ``physical_address`` is the frame holding the node; ``entries`` maps a
    9-bit index either to a child node or to a leaf mapping.
    """

    level: int
    physical_address: int
    entries: Dict[int, "PageTableEntry"] = field(default_factory=dict)

    def entry_address(self, index: int) -> int:
        """Physical address of the 8-byte entry at ``index`` in this node."""
        if not 0 <= index < ENTRIES_PER_NODE:
            raise ValueError(f"index {index} out of range")
        return self.physical_address + index * 8


@dataclass
class PageTableEntry:
    """A single entry: either a pointer to a child node or a leaf frame."""

    child: Optional[PageTableNode] = None
    frame: Optional[int] = None
    page_shift: int = PAGE_SHIFT_4K

    @property
    def is_leaf(self) -> bool:
        return self.frame is not None


@dataclass(frozen=True)
class WalkStep:
    """One memory access performed during a one-dimensional walk.

    Attributes
    ----------
    level:
        Table level of the node being read (4 = root ... 1 = last).
    entry_address:
        Physical address of the page-table entry read by this step.
    """

    level: int
    entry_address: int


class PageTable:
    """A 4-level radix page table mapping one address space onto frames.

    Used both as the guest I/O page table (gIOVA -> gPA) and as the host
    (nested / second-level) page table (gPA -> hPA).
    """

    def __init__(self, allocator: FrameAllocator, name: str = "pt"):
        self._allocator = allocator
        self.name = name
        self.root = PageTableNode(
            level=PAGE_TABLE_LEVELS, physical_address=allocator.allocate_node()
        )
        self._mappings: Dict[int, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def map_page(self, virtual: int, frame: int, page_shift: int = PAGE_SHIFT_4K) -> None:
        """Map the page containing ``virtual`` onto ``frame``.

        ``page_shift`` selects the leaf level: 12 maps a 4 KB page at level 1,
        21 maps a 2 MB huge page at level 2 (the layout the paper observed
        for tenant data buffers).
        """
        if page_shift == PAGE_SHIFT_4K:
            leaf_level = 1
        elif page_shift == PAGE_SHIFT_2M:
            leaf_level = 2
        else:
            raise ValueError(f"unsupported page shift {page_shift}")
        if frame % (1 << page_shift) != 0:
            raise ValueError(
                f"frame {frame:#x} not aligned for page shift {page_shift}"
            )
        virtual_base = page_base(virtual, page_shift)
        node = self.root
        for level in range(PAGE_TABLE_LEVELS, leaf_level, -1):
            index = level_index(virtual_base, level)
            entry = node.entries.get(index)
            if entry is None:
                child = PageTableNode(
                    level=level - 1,
                    physical_address=self._allocator.allocate_node(),
                )
                entry = PageTableEntry(child=child)
                node.entries[index] = entry
            elif entry.is_leaf:
                raise ValueError(
                    f"{self.name}: {virtual_base:#x} overlaps an existing "
                    f"huge-page mapping at level {level}"
                )
            node = entry.child  # type: ignore[assignment]
        leaf_index = level_index(virtual_base, leaf_level)
        existing = node.entries.get(leaf_index)
        if existing is not None:
            raise ValueError(
                f"{self.name}: page {virtual_base:#x} is already mapped"
            )
        node.entries[leaf_index] = PageTableEntry(frame=frame, page_shift=page_shift)
        self._mappings[virtual_base] = (frame, page_shift)

    def unmap_page(self, virtual: int, page_shift: int = PAGE_SHIFT_4K) -> None:
        """Remove the mapping for the page containing ``virtual``.

        Intermediate nodes are retained (as real kernels usually do for I/O
        page tables); only the leaf entry is cleared.
        """
        leaf_level = 1 if page_shift == PAGE_SHIFT_4K else 2
        virtual_base = page_base(virtual, page_shift)
        node = self.root
        for level in range(PAGE_TABLE_LEVELS, leaf_level, -1):
            entry = node.entries.get(level_index(virtual_base, level))
            if entry is None or entry.child is None:
                raise TranslationFault(virtual, level, self.name)
            node = entry.child
        index = level_index(virtual_base, leaf_level)
        if index not in node.entries:
            raise TranslationFault(virtual, leaf_level, self.name)
        del node.entries[index]
        del self._mappings[virtual_base]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def translate(self, virtual: int) -> int:
        """Translate ``virtual`` to a physical address (no timing)."""
        frame, page_shift, _ = self._walk(virtual)
        offset = virtual & ((1 << page_shift) - 1)
        return frame + offset

    def walk(self, virtual: int) -> Tuple[int, int, Tuple[WalkStep, ...]]:
        """Translate ``virtual`` and return the memory accesses performed.

        Returns ``(frame, page_shift, steps)`` where ``steps`` lists one
        :class:`WalkStep` per page-table entry read, root first.
        """
        return self._walk(virtual)

    def _walk(self, virtual: int) -> Tuple[int, int, Tuple[WalkStep, ...]]:
        node = self.root
        steps = []
        for level in range(PAGE_TABLE_LEVELS, 0, -1):
            index = level_index(virtual, level)
            steps.append(WalkStep(level=level, entry_address=node.entry_address(index)))
            entry = node.entries.get(index)
            if entry is None:
                raise TranslationFault(virtual, level, self.name)
            if entry.is_leaf:
                return entry.frame, entry.page_shift, tuple(steps)  # type: ignore[return-value]
            node = entry.child  # type: ignore[assignment]
        raise TranslationFault(virtual, 0, self.name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def mappings(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(virtual_page_base, frame, page_shift)`` for every mapping."""
        for virtual_base, (frame, page_shift) in sorted(self._mappings.items()):
            yield virtual_base, frame, page_shift

    @property
    def mapped_page_count(self) -> int:
        """Number of leaf mappings currently installed."""
        return len(self._mappings)

    def node_count(self) -> int:
        """Total number of radix nodes in the table (including the root)."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            for entry in node.entries.values():
                if entry.child is not None:
                    stack.append(entry.child)
        return count


class AddressSpace:
    """A tenant's pair of page tables plus direct gIOVA -> hPA translation.

    ``guest_table`` maps gIOVA to gPA (built by the tenant OS), and
    ``host_table`` maps gPA to hPA (built by the hypervisor).  The helper
    :meth:`map_io_page` installs both halves of a mapping at once, which is
    what the trace generator uses when synthesising a tenant.
    """

    def __init__(
        self,
        guest_allocator: FrameAllocator,
        host_allocator: FrameAllocator,
        name: str = "tenant",
    ):
        self.name = name
        self._guest_allocator = guest_allocator
        self.guest_table = PageTable(host_allocator_adapter(guest_allocator), f"{name}/guest")
        self.host_table = PageTable(host_allocator, f"{name}/host")

    def map_io_page(self, giova: int, page_shift: int = PAGE_SHIFT_4K) -> int:
        """Create a full two-level mapping for the page holding ``giova``.

        Allocates a guest frame and maps gIOVA -> gPA in the guest table.
        Host backing (gPA -> hPA, always 4 KB host pages in this model,
        matching the 24-access walk count in Table II) is installed lazily,
        on first touch, exactly as a hypervisor populates second-level
        mappings on demand: only the guest-physical pages a walk actually
        visits ever get host frames.  Returns the hPA backing the first
        4 KB of the page.
        """
        if page_shift == PAGE_SHIFT_4K:
            guest_frame = self._guest_allocator.allocate(1)
        else:
            guest_frame = self._guest_allocator.allocate_huge()
        self.guest_table.map_page(giova, guest_frame, page_shift)
        return self.ensure_backed(guest_frame)

    def remap_io_page(self, giova: int, page_shift: int = PAGE_SHIFT_4K) -> int:
        """Unmap and re-map the page holding ``giova`` onto fresh frames.

        Models a driver unmap/map cycle: the gIOVA stays the same but its
        guest frame (and therefore its host backing) changes, so every
        cached translation of the page is stale afterwards.  Returns the
        new hPA of the page base.
        """
        self.guest_table.unmap_page(giova, page_shift)
        return self.map_io_page(giova, page_shift)

    def ensure_backed(self, gpa: int) -> int:
        """Ensure ``gpa`` is mapped in the host table; return its hPA."""
        try:
            return self.host_table.translate(gpa)
        except TranslationFault:
            host_frame = self.host_table._allocator.allocate(1)
            self.host_table.map_page(gpa, host_frame)
            return host_frame + (gpa & 0xFFF)

    def translate(self, giova: int) -> int:
        """Functionally translate gIOVA -> hPA through both tables.

        Backs the final guest-physical page on demand, mirroring the lazy
        host-mapping behaviour of :meth:`map_io_page`.
        """
        gpa = self.guest_table.translate(giova)
        return self.ensure_backed(gpa)


def host_allocator_adapter(guest_allocator: FrameAllocator) -> FrameAllocator:
    """Return the allocator used for guest page-table *node* frames.

    Guest page-table nodes live in guest-physical memory.  Using the guest
    allocator directly keeps node gPAs inside the tenant's own guest-physical
    space so they can be backed by the host table on demand.
    """
    return guest_allocator
