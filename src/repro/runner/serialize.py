"""(De)serialisation of simulation results for the on-disk result store.

:class:`~repro.core.results.SimulationResult` is a tree of plain
dataclasses, so serialising is ``dataclasses.asdict``; deserialising
rebuilds each component explicitly so that schema drift fails loudly
instead of resurrecting half-filled records.  The only JSON wrinkle is
that integer-keyed dicts (``PacketStats.per_tenant_processed``, the
latency histogram's buckets) are stringified by JSON — keys are converted
back on load.

Round-tripping is exact: ``json`` serialises floats via ``repr``, which
Python guarantees to round-trip, so a restored result compares equal
(``==``) to the original.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from repro.analysis.scale import RunScale
from repro.cache.base import CacheStats
from repro.core.ptb import PtbStats
from repro.core.results import (
    DeviceResult,
    FabricStats,
    RequestLatencyStats,
    SimulationResult,
)
from repro.device.packet import PacketStats
from repro.mem.dram import DramStats


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Serialise a :class:`SimulationResult` to JSON-compatible data.

    The multi-device fields are omitted at their defaults (no per-device
    breakdowns, no fabric aggregates), so single-device serialisations
    stay byte-identical to the pre-fabric format — the same documents
    hash, cache, and diff the same.  ``drop_causes`` follows the same
    rule: without fault injection every drop is a PTB overflow, so the
    breakdown is omitted whenever it carries no information beyond
    ``dropped`` (and reconstructed on load).
    """
    document = dataclasses.asdict(result)
    _strip_trivial_drop_causes(document["packets"])
    for entry in document.get("device_results") or []:
        _strip_trivial_drop_causes(entry["packets"])
    if not document.get("device_results"):
        document.pop("device_results", None)
    if document.get("fabric") is None:
        document.pop("fabric", None)
    if not document.get("phase_profile"):
        document.pop("phase_profile", None)
    return document


def _strip_trivial_drop_causes(packets_raw: Dict[str, Any]) -> None:
    """Drop a ``drop_causes`` breakdown that only restates ``dropped``."""
    causes = packets_raw.get("drop_causes")
    if causes is not None and (
        not causes or causes == {"ptb_overflow": packets_raw["dropped"]}
    ):
        del packets_raw["drop_causes"]


def _packets_from_dict(packets_raw: Dict[str, Any]) -> PacketStats:
    """Rebuild :class:`PacketStats`, restoring an omitted breakdown."""
    packets_raw = dict(packets_raw)
    packets_raw["per_tenant_processed"] = {
        int(sid): count
        for sid, count in (packets_raw.get("per_tenant_processed") or {}).items()
    }
    if "drop_causes" not in packets_raw and packets_raw.get("dropped"):
        packets_raw["drop_causes"] = {"ptb_overflow": packets_raw["dropped"]}
    return PacketStats(**packets_raw)


def _device_result_from_dict(raw: Dict[str, Any]) -> DeviceResult:
    latency_raw = dict(raw["latency"])
    latency_raw["buckets"] = {
        int(bucket): count
        for bucket, count in (latency_raw.get("buckets") or {}).items()
    }
    latency_raw.setdefault("min_ns", 0.0)
    return DeviceResult(
        device_id=raw["device_id"],
        packets=_packets_from_dict(raw["packets"]),
        latency=RequestLatencyStats(**latency_raw),
        ptb=PtbStats(**raw["ptb"]),
        elapsed_ns=raw["elapsed_ns"],
        achieved_bandwidth_gbps=raw["achieved_bandwidth_gbps"],
        cache_stats={
            name: CacheStats(**stats)
            for name, stats in (raw.get("cache_stats") or {}).items()
        },
        iotlb_hits=raw.get("iotlb_hits", 0),
        iotlb_misses=raw.get("iotlb_misses", 0),
        walker_queue_delay_ns=raw.get("walker_queue_delay_ns", 0.0),
        invalidation_messages=raw.get("invalidation_messages", 0),
    )


def result_from_dict(raw: Dict[str, Any]) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_dict` data."""
    latency_raw = dict(raw["latency"])
    latency_raw["buckets"] = {
        int(bucket): count
        for bucket, count in (latency_raw.get("buckets") or {}).items()
    }
    latency_raw.setdefault("min_ns", 0.0)
    return SimulationResult(
        config_name=raw["config_name"],
        benchmark=raw["benchmark"],
        num_tenants=raw["num_tenants"],
        interleaving=raw["interleaving"],
        link_bandwidth_gbps=raw["link_bandwidth_gbps"],
        elapsed_ns=raw["elapsed_ns"],
        achieved_bandwidth_gbps=raw["achieved_bandwidth_gbps"],
        packets=_packets_from_dict(raw["packets"]),
        latency=RequestLatencyStats(**latency_raw),
        ptb=PtbStats(**raw["ptb"]),
        dram=DramStats(**raw["dram"]),
        cache_stats={
            name: CacheStats(**stats)
            for name, stats in (raw.get("cache_stats") or {}).items()
        },
        prefetch_buffer_hit_rate=raw.get("prefetch_buffer_hit_rate", 0.0),
        prefetch_requests=raw.get("prefetch_requests", 0),
        prefetch_supplied=raw.get("prefetch_supplied", 0),
        invalidation_messages=raw.get("invalidation_messages", 0),
        percentiles=raw.get("percentiles") or {},
        device_results=[
            _device_result_from_dict(entry)
            for entry in (raw.get("device_results") or [])
        ],
        fabric=(
            FabricStats(**raw["fabric"]) if raw.get("fabric") is not None else None
        ),
        phase_profile=raw.get("phase_profile") or {},
    )


def scale_to_dict(scale: RunScale) -> Dict[str, Any]:
    """Serialise a :class:`RunScale` (tuples become lists)."""
    return dataclasses.asdict(scale)


def scale_from_dict(raw: Dict[str, Any]) -> RunScale:
    """Rebuild a :class:`RunScale` from :func:`scale_to_dict` data."""
    return RunScale(
        name=raw["name"],
        tenant_counts=tuple(raw["tenant_counts"]),
        interleavings=tuple(raw["interleavings"]),
        benchmarks=tuple(raw["benchmarks"]),
        max_packets=raw["max_packets"],
        packets_per_tenant=raw.get("packets_per_tenant", 200_000),
        warmup_fraction=raw.get("warmup_fraction", 0.25),
    )
