"""Bridge between experiment drivers and the parallel runner.

Experiment drivers (:mod:`repro.analysis.experiments`) are plain functions
that interleave :func:`~repro.analysis.sweeps.run_point` calls with table
construction.  Rather than rewriting every driver into an enumerate-then-
tabulate shape, the orchestrator runs each driver twice through the sweep
execution hook (:func:`repro.analysis.sweeps.point_hook`):

1. **Planning pass** — the hook records a deduplicated
   :class:`~repro.runner.spec.JobSpec` for every point the driver asks
   for and answers with a zeroed placeholder result, so the driver
   completes instantly without simulating.  Drivers enumerate their
   points deterministically (loops over scale presets), so the plan is
   exact.
2. **Execution** — the runner executes the plan in worker processes,
   memoized against the result store.
3. **Replay pass** — the driver runs again; this time the hook answers
   each point from the finished results, so the produced table is
   bit-identical to the sequential driver's.

A driver that never calls ``run_point`` (e.g. ``table2``) yields an empty
plan, in which case the planning pass's table is already the real output
and is returned directly — nothing runs twice.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import sweeps
from repro.analysis.scale import RunScale
from repro.analysis.sweeps import SweepPoint
from repro.cache.base import CacheStats
from repro.core.config import ArchConfig
from repro.core.results import RequestLatencyStats, SimulationResult
from repro.core.ptb import PtbStats
from repro.device.packet import PacketStats
from repro.mem.dram import DramStats
from repro.runner.serialize import result_from_dict
from repro.runner.spec import JobSpec


class _AnyCacheStats(dict):
    """cache_stats stand-in that answers every lookup with zero counters
    (planning-pass tables may probe arbitrary structures)."""

    def __missing__(self, key: str) -> CacheStats:
        return CacheStats()


def _placeholder_result(
    config: ArchConfig, benchmark: str, num_tenants: int, interleaving: str
) -> SimulationResult:
    """A zeroed result for the planning pass (the table it produces is
    discarded unless the plan turns out to be empty)."""
    return SimulationResult(
        config_name=config.name,
        benchmark=benchmark,
        num_tenants=num_tenants,
        interleaving=interleaving,
        link_bandwidth_gbps=config.timing.link_bandwidth_gbps,
        elapsed_ns=0.0,
        achieved_bandwidth_gbps=0.0,
        packets=PacketStats(),
        latency=RequestLatencyStats(),
        ptb=PtbStats(),
        dram=DramStats(),
        cache_stats=_AnyCacheStats(),
    )


def plan_driver(
    driver: Callable[..., Any], kwargs: Optional[Dict[str, Any]] = None
) -> Tuple[List[JobSpec], Any]:
    """Enumerate the sweep points ``driver(**kwargs)`` would execute.

    Returns the deduplicated specs in first-use order plus whatever the
    driver returned under placeholder results (only meaningful when the
    plan is empty).
    """
    kwargs = dict(kwargs or {})
    specs: List[JobSpec] = []
    seen: Set[str] = set()

    def hook(
        *,
        config: ArchConfig,
        benchmark: str,
        num_tenants: int,
        interleaving: str,
        scale: RunScale,
        native: bool,
        seed: int,
        fault_plan=None,
        engine: str = "analytic",
    ) -> SimulationResult:
        spec = JobSpec.from_point(
            config, benchmark, num_tenants, interleaving, scale,
            seed=seed, native=native, fault_plan=fault_plan, engine=engine,
        )
        if spec.spec_hash not in seen:
            seen.add(spec.spec_hash)
            specs.append(spec)
        return _placeholder_result(config, benchmark, num_tenants, interleaving)

    with sweeps.point_hook(hook):
        table = driver(**kwargs)
    return specs, table


def run_experiment(
    driver: Callable[..., Any],
    runner: "ExperimentRunner",
    kwargs: Optional[Dict[str, Any]] = None,
) -> Any:
    """Produce ``driver(**kwargs)``'s table with points run by ``runner``.

    Raises :class:`~repro.runner.scheduler.RunFailedError` if any point
    fails after retries.
    """
    kwargs = dict(kwargs or {})
    specs, planning_table = plan_driver(driver, kwargs)
    if not specs:
        return planning_table
    results = runner.run_or_raise(specs)
    memo = {
        record.spec_hash: result_from_dict(record.result) for record in results
    }

    def hook(
        *,
        config: ArchConfig,
        benchmark: str,
        num_tenants: int,
        interleaving: str,
        scale: RunScale,
        native: bool,
        seed: int,
        fault_plan=None,
        engine: str = "analytic",
    ) -> Optional[SimulationResult]:
        spec = JobSpec.from_point(
            config, benchmark, num_tenants, interleaving, scale,
            seed=seed, native=native, fault_plan=fault_plan, engine=engine,
        )
        # A miss (nondeterministic driver) falls back to in-process
        # simulation inside run_point — correct, just not parallel.
        return memo.get(spec.spec_hash)

    with sweeps.point_hook(hook):
        return driver(**kwargs)


def run_experiment_queue(
    driver: Callable[..., Any],
    runner: "ExperimentRunner",
    queue: "ExperimentQueue",
    kwargs: Optional[Dict[str, Any]] = None,
    poll_s: float = 0.25,
    on_event: Optional[Callable[[str], None]] = None,
) -> Tuple[Optional[Any], Optional["QueueWorkStats"]]:
    """Cooperative variant of :func:`run_experiment` over a shared queue.

    Plans the driver, idempotently enqueues the plan (every cooperating
    worker does the same — dedup by spec hash makes it safe and lets any
    worker rebuild a deleted queue), marks points already in this
    worker's store ``done`` (the rebuild-from-store path), then drains
    the queue via :func:`~repro.runner.queue.work_queue` — pulling jobs
    other workers haven't claimed, taking over expired leases, answering
    store hits without executing.

    Returns ``(table, stats)``.  The table is rendered from this
    worker's store, which absorbs other workers' records via
    :meth:`~repro.runner.store.ResultStore.refresh` when the run
    directory is shared; if some results live only on another machine
    (separate stores), the table is ``None`` and the caller reports the
    queue summary instead.
    """
    from repro.runner.queue import work_queue

    kwargs = dict(kwargs or {})
    specs, planning_table = plan_driver(driver, kwargs)
    if not specs:
        return planning_table, None
    queue.enqueue_specs(specs)
    store = runner.store
    if store is not None:
        store.refresh()
        queue.complete_memoized(
            [s.spec_hash for s in specs if store.get(s.spec_hash) is not None]
        )
    stats = work_queue(queue, runner, poll_s=poll_s, on_event=on_event)
    if store is None:
        return None, stats
    store.refresh()
    memo: Dict[str, SimulationResult] = {}
    for spec in specs:
        record = store.get(spec.spec_hash)
        if record is None or record.result is None:
            return None, stats  # finished elsewhere; no local replay
        memo[spec.spec_hash] = result_from_dict(record.result)

    def hook(
        *,
        config: ArchConfig,
        benchmark: str,
        num_tenants: int,
        interleaving: str,
        scale: RunScale,
        native: bool,
        seed: int,
        fault_plan=None,
        engine: str = "analytic",
    ) -> Optional[SimulationResult]:
        spec = JobSpec.from_point(
            config, benchmark, num_tenants, interleaving, scale,
            seed=seed, native=native, fault_plan=fault_plan, engine=engine,
        )
        return memo.get(spec.spec_hash)

    with sweeps.point_hook(hook):
        return driver(**kwargs), stats


def run_sweep(
    runner: "ExperimentRunner",
    configs: Sequence[ArchConfig],
    benchmarks: Sequence[str],
    interleavings: Sequence[str],
    scale: RunScale,
    tenant_counts: Sequence[int],
) -> List[SweepPoint]:
    """Parallel, memoized equivalent of the sequential ``sweep_tenants``
    loop — same nesting order, point-for-point identical results."""
    specs: List[JobSpec] = []
    for benchmark in benchmarks:
        for interleaving in interleavings:
            for count in tenant_counts:
                for config in configs:
                    specs.append(
                        JobSpec.from_point(config, benchmark, count, interleaving, scale)
                    )
    results = runner.run_or_raise(specs)
    return [
        SweepPoint(
            config_name=spec.config["name"],
            benchmark=spec.benchmark,
            num_tenants=spec.num_tenants,
            interleaving=spec.interleaving,
            result=result_from_dict(record.result),
        )
        for spec, record in zip(specs, results)
    ]
