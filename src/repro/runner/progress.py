"""Progress and telemetry reporting for orchestrated runs.

The reporter is fed by the scheduler as jobs finish and prints terse,
single-line updates (throttled) plus a final summary with per-worker
throughput and aggregated trace-cache counters.  It is disabled by
default so library callers stay silent; the CLI enables it on stderr.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, TextIO

from repro.runner.spec import JobResult, JobSpec


@dataclass
class _WorkerStats:
    jobs: int = 0
    busy_s: float = 0.0
    trace_cache: Optional[Dict[str, int]] = None

    @property
    def throughput(self) -> float:
        return self.jobs / self.busy_s if self.busy_s > 0 else 0.0


class ProgressReporter:
    """Counts done/failed/cached jobs, estimates ETA, tracks workers."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        enabled: bool = True,
        min_interval_s: float = 0.5,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.min_interval_s = min_interval_s
        self.total = 0
        self.cached = 0
        self.done = 0
        self.failed = 0
        self.interrupted = 0
        self.retried = 0
        self._started_at = 0.0
        self._last_print = 0.0
        self._workers: Dict[Any, _WorkerStats] = {}

    # ------------------------------------------------------------------
    def _emit(self, message: str, force: bool = False) -> None:
        if not self.enabled:
            return
        now = time.monotonic()
        if not force and now - self._last_print < self.min_interval_s:
            return
        self._last_print = now
        print(message, file=self.stream)

    # ------------------------------------------------------------------
    def start(self, total: int, cached: int) -> None:
        self.total = total
        self.cached = cached
        self.done = 0
        self.failed = 0
        self.interrupted = 0
        self.retried = 0
        self._started_at = time.monotonic()
        self._workers.clear()
        pending = total - cached
        self._emit(
            f"[runner] {total} jobs: {cached} cached, {pending} to execute",
            force=True,
        )

    def job_done(self, result: JobResult) -> None:
        self.done += 1
        worker = self._workers.setdefault(result.worker_pid, _WorkerStats())
        worker.jobs += 1
        worker.busy_s += result.duration_s
        if result.trace_cache:
            # Cumulative per-process counters: keep the latest snapshot.
            worker.trace_cache = dict(result.trace_cache)
        self._emit(self._progress_line())

    def job_failed(self, result: JobResult) -> None:
        self.failed += 1
        cause = f" [{result.exit_cause}]" if result.exit_cause else ""
        self._emit(
            f"[runner] job {result.spec_hash} FAILED after "
            f"{result.attempts} attempt(s){cause}: {result.error}",
            force=True,
        )

    def job_interrupted(self, result: JobResult) -> None:
        """An interrupted job — distinct from a failure: it left a
        checkpoint behind and a resumed run continues it mid-simulation."""
        self.interrupted += 1
        self._emit(
            f"[runner] job {result.spec_hash} interrupted "
            f"(checkpoint kept; 'run --resume' continues it)",
            force=True,
        )

    def job_retry(self, spec: JobSpec, attempt: int, delay_s: float) -> None:
        self.retried += 1
        self._emit(
            f"[runner] retrying {spec.spec_hash} ({spec.label}) "
            f"after attempt {attempt}, backoff {delay_s:.2f}s",
            force=True,
        )

    def event(self, message: str) -> None:
        self._emit(f"[runner] {message}", force=True)

    # ------------------------------------------------------------------
    def _progress_line(self) -> str:
        finished = self.done + self.failed
        pending_total = self.total - self.cached
        elapsed = max(1e-9, time.monotonic() - self._started_at)
        rate = finished / elapsed
        remaining = max(0, pending_total - finished)
        eta = remaining / rate if rate > 0 else float("inf")
        eta_text = f"{eta:.0f}s" if eta != float("inf") else "?"
        return (
            f"[runner] {finished}/{pending_total} executed "
            f"({self.failed} failed, {self.cached} cached) | "
            f"{rate:.2f} jobs/s | ETA {eta_text} | "
            f"workers {len(self._workers)}"
        )

    def aggregated_trace_cache(self) -> Dict[str, int]:
        """Sum of each worker's final trace-cache counters."""
        totals = {"hits": 0, "misses": 0}
        for worker in self._workers.values():
            if worker.trace_cache:
                totals["hits"] += worker.trace_cache.get("hits", 0)
                totals["misses"] += worker.trace_cache.get("misses", 0)
        return totals

    def finish(self, stats: Any) -> None:
        """Final summary; ``stats`` is the runner's ``RunStats``."""
        if not self.enabled:
            return
        cache = self.aggregated_trace_cache()
        interrupted = getattr(stats, "interrupted", 0)
        interrupted_text = (
            f"{interrupted} interrupted, " if interrupted else ""
        )
        lines = [
            f"[runner] finished: {stats.executed} executed, "
            f"{stats.cached} cached, {stats.failed} failed, "
            f"{interrupted_text}"
            f"{stats.retried} retries in {stats.wall_clock_s:.1f}s"
        ]
        if cache["hits"] or cache["misses"]:
            lines.append(
                f"[runner] worker trace caches: {cache['hits']} hits, "
                f"{cache['misses']} misses"
            )
        for pid, worker in sorted(
            (p, w) for p, w in self._workers.items() if p is not None
        ):
            lines.append(
                f"[runner]   worker {pid}: {worker.jobs} jobs, "
                f"{worker.throughput:.2f} jobs/s busy"
            )
        for line in lines:
            print(line, file=self.stream)
