"""Worker-process entry points (top-level, picklable by reference).

These functions are shipped to :class:`~concurrent.futures.ProcessPoolExecutor`
workers, so they must stay importable module-level callables and exchange
only plain data: a :class:`~repro.runner.spec.JobSpec` in, a payload dict
out (the scheduler turns payloads into
:class:`~repro.runner.spec.JobResult` records).

The module-global trace cache in :mod:`repro.analysis.sweeps` is
**per process**: sharing it through the orchestrating process would be
silently useless across workers.  Instead :func:`pool_initializer` primes
each worker's own cache — bounding its capacity (memory is per worker, so
the pool-wide footprint is ``jobs x capacity`` traces), zeroing its
counters so telemetry is attributable, and clearing any state inherited
from the parent at fork time.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict

from repro.analysis import sweeps
from repro.faults.plan import plan_from_dict
from repro.runner.serialize import result_to_dict
from repro.runner.spec import JobSpec

#: Default per-worker trace-cache capacity.  Deliberately smaller than the
#: in-process default (8): a pool holds one cache *per worker*.
DEFAULT_WORKER_TRACE_CAPACITY = 4


def pool_initializer(trace_cache_capacity: int = DEFAULT_WORKER_TRACE_CAPACITY) -> None:
    """Prime one worker process: bounded private trace cache, clean state."""
    sweeps.clear_point_hook()
    sweeps.clear_trace_cache()
    sweeps.reset_trace_cache_stats()
    sweeps.set_trace_cache_capacity(trace_cache_capacity)


def job_metrics_summary(result) -> Dict[str, Any]:
    """Compact per-job metric block for the runner's manifest.

    Carries the headline health numbers of one sweep point — latency
    percentiles, drop rate, DevTLB hit rate — so a run directory answers
    "did tail latency regress?" without deserialising every full result.
    """
    packets = result.packets
    arrived = packets.arrived or 1
    devtlb = result.cache_stats.get("devtlb")
    return {
        "latency": {
            "mean_ns": result.latency.mean_ns,
            "min_ns": result.latency.min_ns,
            "max_ns": result.latency.max_ns,
            **result.percentiles,
        },
        "drop_rate": packets.dropped / arrived,
        "devtlb_hit_rate": devtlb.hit_rate if devtlb is not None else 0.0,
        "link_utilization": result.link_utilization,
    }


def execute_job(spec: JobSpec) -> Dict[str, Any]:
    """Run one sweep point and return its payload (the default job fn)."""
    start = time.perf_counter()
    config = spec.arch_config()
    scale = spec.run_scale()
    fault_plan = None
    if spec.fault_plan is not None:
        fault_plan = plan_from_dict(dict(spec.fault_plan))
    point = sweeps.run_point(
        config,
        spec.benchmark,
        spec.num_tenants,
        spec.interleaving,
        scale,
        native=spec.native,
        seed=spec.seed,
        fault_plan=fault_plan,
        engine=spec.engine,
    )
    return {
        "result": result_to_dict(point.result),
        "duration_s": time.perf_counter() - start,
        "pid": os.getpid(),
        "trace_cache": sweeps.trace_cache_stats().as_dict(),
        "metrics": job_metrics_summary(point.result),
    }


def execute_job_supervised(
    spec: JobSpec, supervision: Dict[str, Any]
) -> Dict[str, Any]:
    """Like :func:`execute_job`, under heartbeat + checkpoint supervision.

    Shipped to workers as ``functools.partial(execute_job_supervised,
    supervision=...)`` with ``supervision`` a plain dict (see
    :meth:`repro.runner.supervise.SupervisionOptions.worker_payload`).

    On entry: clears any stale interrupt flag, routes SIGTERM/SIGINT to
    the cooperative interrupt (so pool teardown flushes a final
    snapshot), starts the heartbeat thread, and — if a checkpoint from a
    previous killed attempt exists — resumes from it instead of starting
    over (a corrupt or version-mismatched snapshot is discarded and the
    point re-runs from scratch).  On success the job's checkpoint is
    deleted; on interrupt it is kept and the worker raises
    :class:`~repro.runner.supervise.JobInterrupted`.
    """
    from pathlib import Path

    from repro.runner.supervise import (
        HeartbeatWriter,
        JobInterrupted,
        checkpoint_path_for,
        rss_peak_kb,
    )
    from repro.sim import checkpoint as ckpt

    run_dir = Path(supervision["run_dir"])
    checkpoint_every = int(supervision.get("checkpoint_every", 0) or 0)
    interval_s = float(supervision.get("heartbeat_interval_s", 0.5))
    ckpt_path = checkpoint_path_for(run_dir, spec.spec_hash)

    start = time.perf_counter()
    config = spec.arch_config()
    scale = spec.run_scale()
    fault_plan = None
    if spec.fault_plan is not None:
        fault_plan = plan_from_dict(dict(spec.fault_plan))

    heartbeat = HeartbeatWriter(run_dir, spec.spec_hash, interval_s=interval_s)
    ckpt.clear_interrupt()
    previous_handlers = ckpt.install_signal_handlers()
    heartbeat.start()
    try:
        resume_from = ckpt_path if ckpt_path.exists() else None
        try:
            point = sweeps.run_point(
                config,
                spec.benchmark,
                spec.num_tenants,
                spec.interleaving,
                scale,
                native=spec.native,
                seed=spec.seed,
                fault_plan=fault_plan,
                engine=spec.engine,
                checkpoint_every=checkpoint_every,
                checkpoint_path=ckpt_path,
                checkpoint_hook=heartbeat.note_checkpoint,
                resume_from=resume_from,
            )
        except ckpt.CheckpointError:
            if resume_from is None:
                raise
            # The leftover snapshot is unusable (torn before the atomic
            # write landed, or from an older format): drop it and run
            # the point from the top.
            try:
                ckpt_path.unlink()
            except OSError:
                pass
            point = sweeps.run_point(
                config,
                spec.benchmark,
                spec.num_tenants,
                spec.interleaving,
                scale,
                native=spec.native,
                seed=spec.seed,
                fault_plan=fault_plan,
                engine=spec.engine,
                checkpoint_every=checkpoint_every,
                checkpoint_path=ckpt_path,
                checkpoint_hook=heartbeat.note_checkpoint,
            )
    except ckpt.SimulationInterrupted as error:
        heartbeat.stop(status="interrupted")
        raise JobInterrupted(
            str(error),
            packets_done=error.packets_done,
            checkpoint_path=error.checkpoint_path,
        ) from None
    finally:
        heartbeat.stop()
        ckpt.restore_signal_handlers(previous_handlers)
    try:
        ckpt_path.unlink()
    except OSError:
        pass
    heartbeat.stop(status="completed")
    return {
        "result": result_to_dict(point.result),
        "duration_s": time.perf_counter() - start,
        "pid": os.getpid(),
        "trace_cache": sweeps.trace_cache_stats().as_dict(),
        "metrics": job_metrics_summary(point.result),
        "exit_cause": "completed",
        "rss_peak_kb": rss_peak_kb(),
    }
