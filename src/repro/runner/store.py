"""On-disk result store: memoized, append-only, crash-safe.

Layout (one directory per run under the runs root, default
``.repro-runs/``)::

    .repro-runs/<run-id>/
        manifest.json    # environment, git state, scale, wall clock, counts
        results.jsonl    # one JobResult per line, appended as jobs finish
        quarantine.jsonl # corrupt lines recovered from results.jsonl

``results.jsonl`` is append-only and fsynced per record, so a crash or
Ctrl-C loses at most the in-flight jobs; corrupt lines (a truncated
final line from a torn write, garbage bytes mid-file) are quarantined on
load — the valid records survive, the bad lines move to
``quarantine.jsonl``, and the affected jobs re-execute on resume.  Every
append, the corruption-recovery rewrite, and :meth:`ResultStore.refresh`
serialize on an ``flock``'d sidecar lock file, so several schedulers
(queue workers sharing a run directory) interleave whole records
losslessly instead of tearing each other's lines or losing appends to a
racing rewrite.  Completed jobs are memoized by
:attr:`~repro.runner.spec.JobSpec.spec_hash` — re-running a sweep, or
resuming a killed run, only executes the missing points.  Failed attempts
are recorded too (for the audit trail) but never memoized, so a resume
retries them.

``manifest.json`` records *how* the results were produced: git commit and
dirty flag, python version, CPU count, the ``REPRO_BENCH_SCALE``
environment variable, and accumulated wall clock across invocations — so
result trajectories (and the BENCH_*.json history they feed) stay
attributable to an environment.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from contextlib import contextmanager
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

try:  # POSIX-only; on other platforms appends fall back to unlocked.
    import fcntl
except ImportError:  # pragma: no cover — non-POSIX
    fcntl = None  # type: ignore[assignment]

from repro.analysis.scale import SCALE_ENV_VAR
from repro.runner.spec import JobResult

#: Default runs root, relative to the working directory.
DEFAULT_RUNS_DIR = ".repro-runs"

RESULTS_FILE = "results.jsonl"
MANIFEST_FILE = "manifest.json"
QUARANTINE_FILE = "quarantine.jsonl"
STORE_LOCK_FILE = ".store.lock"


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def environment_info() -> Dict[str, Any]:
    """The per-run environment block recorded in the manifest."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "executable": sys.executable,
        SCALE_ENV_VAR: os.environ.get(SCALE_ENV_VAR),
    }


def git_state(cwd: Optional[Path] = None) -> Dict[str, Any]:
    """Best-effort git commit + dirty flag (``{"commit": None}`` outside a
    repository or when git is unavailable)."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=5, check=True,
        ).stdout
        return {"commit": commit, "dirty": bool(status.strip())}
    except (OSError, subprocess.SubprocessError):
        return {"commit": None, "dirty": None}


class ResultStore:
    """Result database for one run, keyed by job spec hash."""

    def __init__(self, root: Path, run_id: str, create: bool = True):
        self.run_id = run_id
        self.directory = Path(root) / run_id
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        elif not self.directory.is_dir():
            raise FileNotFoundError(f"no such run directory: {self.directory}")
        self._completed: Dict[str, JobResult] = {}
        self._failed_lines = 0
        #: Record counts by status and by exit cause, plus resource peaks
        #: across every recorded attempt — the manifest's supervision
        #: block (see :meth:`supervision_summary`).
        self.status_counts: Dict[str, int] = {}
        self.exit_causes: Dict[str, int] = {}
        self.max_duration_s = 0.0
        self.max_rss_peak_kb = 0
        #: Records rejected during the last load (line number, reason,
        #: raw prefix).  Non-empty means the results file was corrupted —
        #: the bad lines were moved to ``quarantine.jsonl`` and the
        #: results file rewritten with the surviving records.
        self.corrupt_records: List[Dict[str, Any]] = []
        #: Byte offset into ``results.jsonl`` up to which records have
        #: been folded into this instance — :meth:`refresh` consumes
        #: from here, so records appended by *other* workers sharing the
        #: run directory become visible (and memoized) incrementally.
        self._consumed_bytes = 0
        with self._locked():
            self._load()

    # ------------------------------------------------------------------
    @property
    def results_path(self) -> Path:
        return self.directory / RESULTS_FILE

    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_FILE

    @property
    def quarantine_path(self) -> Path:
        return self.directory / QUARANTINE_FILE

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Exclusive inter-process lock over the results file.

        Taken for every append, the corruption-recovery rewrite, and
        :meth:`refresh`, so concurrent schedulers sharing this run
        directory serialize on whole records.  The lock lives on a
        sidecar file because the rewrite replaces the results file's
        inode, which would silently invalidate locks held on it.
        """
        if fcntl is None:  # pragma: no cover — non-POSIX
            yield
            return
        with (self.directory / STORE_LOCK_FILE).open("a") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _load(self) -> None:
        """Load the results file, recovering from corruption.

        A torn final line (crash mid-append), interleaved garbage bytes
        (torn page, concurrent writer), or any non-record line is
        collected into :attr:`corrupt_records`, appended to
        ``quarantine.jsonl`` for the audit trail, and the results file is
        atomically rewritten with only the surviving records — which also
        guarantees the file ends in a complete line, so a later append
        can never merge into a torn tail.  The affected jobs simply
        re-execute on resume.
        """
        path = self.results_path
        if not path.exists():
            return
        # Bytes + lossy decode: corruption is not guaranteed to be UTF-8.
        data = path.read_bytes()
        self._consumed_bytes = len(data)
        text = data.decode("utf-8", errors="replace")
        valid_lines: List[str] = []
        corrupt: List[Dict[str, Any]] = []
        for number, line in enumerate(text.split("\n"), start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = JobResult.from_dict(json.loads(stripped))
            except (json.JSONDecodeError, KeyError, TypeError) as error:
                corrupt.append(
                    {
                        "line": number,
                        "reason": f"{type(error).__name__}: {error}",
                        "raw": stripped[:500],
                    }
                )
                continue
            valid_lines.append(stripped)
            self._track(record)
            if record.ok:
                self._completed[record.spec_hash] = record
            else:
                self._failed_lines += 1
        self.corrupt_records = corrupt
        if corrupt:
            self._quarantine(corrupt, valid_lines)

    def _quarantine(
        self, corrupt: List[Dict[str, Any]], valid_lines: List[str]
    ) -> None:
        """Move corrupt lines aside and rewrite the results file."""
        with self.quarantine_path.open("a", encoding="utf-8") as handle:
            stamp = _utc_now()
            for entry in corrupt:
                handle.write(
                    json.dumps({**entry, "quarantined_at": stamp}) + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        tmp = self.results_path.with_name(RESULTS_FILE + ".tmp")
        rewritten = "".join(line + "\n" for line in valid_lines)
        tmp.write_text(rewritten, encoding="utf-8")
        os.replace(tmp, self.results_path)
        self._consumed_bytes = len(rewritten.encode("utf-8"))

    # ------------------------------------------------------------------
    @property
    def completed_count(self) -> int:
        return len(self._completed)

    def get(self, spec_hash: str) -> Optional[JobResult]:
        """The memoized *successful* result for ``spec_hash``, if any."""
        return self._completed.get(spec_hash)

    def record(self, result: JobResult) -> None:
        """Append ``result`` durably; successful records become memo hits.

        The append happens under the store lock, after folding in any
        records other workers appended meanwhile, so concurrent
        schedulers interleave whole records losslessly.  If a crashed
        writer left a torn (unterminated) tail, the new record is
        written on its own line — the torn fragment stays isolated and
        is quarantined on the next load instead of merging with ours.
        """
        line = json.dumps(result.to_dict(), separators=(",", ":"))
        data = (line + "\n").encode("utf-8")
        with self._locked():
            dangling = self._consume_new()
            with self.results_path.open("ab") as handle:
                handle.write(b"\n" + data if dangling else data)
                handle.flush()
                os.fsync(handle.fileno())
                # We hold the lock and just wrote at the end, so the
                # current size is exactly what this instance has seen
                # (a skipped torn fragment is quarantined on next load).
                self._consumed_bytes = handle.tell()
        self._track(result)
        if result.ok:
            self._completed[result.spec_hash] = result

    def refresh(self) -> int:
        """Fold in records appended by other workers since the last read.

        Returns how many new records were absorbed.  Successful foreign
        records become memo hits, so a queue worker that refreshes
        before executing a claim answers jobs another host just finished
        without re-running them.  Incremental (byte offset), so calling
        it per claim is cheap even on large result files.
        """
        with self._locked():
            before = len(self._completed) + self._failed_lines
            self._consume_new()
            return len(self._completed) + self._failed_lines - before

    def _consume_new(self) -> bool:
        """Absorb complete records past the consumed offset (lock held).

        Returns True when unterminated bytes trail the last newline — a
        torn tail from a crashed writer; the offset stops before it.
        """
        path = self.results_path
        if not path.exists():
            self._consumed_bytes = 0
            return False
        with path.open("rb") as handle:
            size = handle.seek(0, os.SEEK_END)
            if size < self._consumed_bytes:
                # The file shrank (deleted/recreated or rewritten by
                # another worker's corruption recovery): start over.
                self._consumed_bytes = 0
            handle.seek(self._consumed_bytes)
            chunk = handle.read()
        if not chunk:
            return False
        cut = chunk.rfind(b"\n")
        if cut < 0:
            return True
        complete, dangling = chunk[: cut + 1], cut + 1 < len(chunk)
        self._consumed_bytes += len(complete)
        for stripped in complete.decode("utf-8", errors="replace").split("\n"):
            stripped = stripped.strip()
            if not stripped:
                continue
            try:
                record = JobResult.from_dict(json.loads(stripped))
            except (json.JSONDecodeError, KeyError, TypeError) as error:
                # Remembered for visibility; quarantined on next load.
                self.corrupt_records.append(
                    {
                        "line": None,
                        "reason": f"{type(error).__name__}: {error}",
                        "raw": stripped[:500],
                    }
                )
                continue
            self._track(record)
            if record.ok:
                self._completed[record.spec_hash] = record
            else:
                self._failed_lines += 1
        return dangling

    @property
    def quarantine_count(self) -> int:
        """Lines currently parked in ``quarantine.jsonl`` (0 if none)."""
        try:
            with self.quarantine_path.open("rb") as handle:
                return sum(1 for line in handle if line.strip())
        except OSError:
            return 0

    def _track(self, result: JobResult) -> None:
        """Fold one record into the status/exit-cause/peak accounting."""
        self.status_counts[result.status] = (
            self.status_counts.get(result.status, 0) + 1
        )
        cause = result.exit_cause or (
            "completed" if result.ok else result.status
        )
        self.exit_causes[cause] = self.exit_causes.get(cause, 0) + 1
        if result.duration_s and result.duration_s > self.max_duration_s:
            self.max_duration_s = result.duration_s
        if result.rss_peak_kb and result.rss_peak_kb > self.max_rss_peak_kb:
            self.max_rss_peak_kb = result.rss_peak_kb

    def supervision_summary(self) -> Dict[str, Any]:
        """Per-run exit-cause counts and resource peaks for the manifest.

        Aggregated over every *recorded attempt chain* (including failed
        and interrupted ones), so the manifest answers "how did jobs
        exit?" and "what did the worst job cost?" without re-reading
        ``results.jsonl``.
        """
        return {
            "status_counts": dict(sorted(self.status_counts.items())),
            "exit_causes": dict(sorted(self.exit_causes.items())),
            "max_job_wall_clock_s": round(self.max_duration_s, 3),
            "max_job_rss_peak_kb": self.max_rss_peak_kb,
            "quarantined_lines": self.quarantine_count,
        }

    def iter_completed(self) -> Iterator[JobResult]:
        return iter(self._completed.values())

    def metrics_summary(self) -> Dict[str, Any]:
        """Aggregate the per-job metric blocks across completed jobs.

        Worst-case numbers use max (one pathological point should not be
        averaged away); rates are means across jobs.  Jobs recorded before
        the metrics block existed are simply not counted.
        """
        blocks = [
            record.metrics
            for record in self._completed.values()
            if record.metrics
        ]
        if not blocks:
            return {"jobs_with_metrics": 0}
        p99s = [
            block["latency"].get("p99_ns", 0.0)
            for block in blocks
            if block.get("latency")
        ]
        drop_rates = [block.get("drop_rate", 0.0) for block in blocks]
        utilizations = [block.get("link_utilization", 0.0) for block in blocks]
        return {
            "jobs_with_metrics": len(blocks),
            "worst_p99_ns": max(p99s) if p99s else 0.0,
            "worst_drop_rate": max(drop_rates),
            "mean_drop_rate": sum(drop_rates) / len(drop_rates),
            "mean_link_utilization": sum(utilizations) / len(utilizations),
            "min_link_utilization": min(utilizations),
        }

    # ------------------------------------------------------------------
    def read_manifest(self) -> Dict[str, Any]:
        try:
            return json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return {}

    def write_manifest(
        self,
        wall_clock_s: Optional[float] = None,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Merge ``fields`` into the manifest (atomically, via tmp+rename).

        ``wall_clock_s`` accumulates into ``total_wall_clock_s`` across
        invocations, so a resumed run reports the full cost of the result
        set, not just the final slice.
        """
        manifest = self.read_manifest()
        manifest.setdefault("run_id", self.run_id)
        manifest.setdefault("created_at", _utc_now())
        manifest["updated_at"] = _utc_now()
        manifest["environment"] = environment_info()
        manifest["git"] = git_state()
        if wall_clock_s is not None:
            manifest["total_wall_clock_s"] = round(
                manifest.get("total_wall_clock_s", 0.0) + wall_clock_s, 3
            )
        manifest.update(fields)
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
        os.replace(tmp, self.manifest_path)
        return manifest


def list_runs(root: Path = Path(DEFAULT_RUNS_DIR)) -> List[str]:
    """Run ids present under ``root`` (directories with a results file or
    manifest), sorted by name."""
    root = Path(root)
    if not root.is_dir():
        return []
    runs = [
        entry.name
        for entry in root.iterdir()
        if entry.is_dir()
        and ((entry / RESULTS_FILE).exists() or (entry / MANIFEST_FILE).exists())
    ]
    return sorted(runs)
