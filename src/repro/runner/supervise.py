"""Worker supervision: heartbeats, watchdog, and interrupt plumbing.

The runner's process pool gives parallelism but no *liveness* insight: a
worker stuck in an infinite retry storm, ballooning its RSS, or silently
wedged looks exactly like a slow job.  This module closes that gap:

* each supervised worker runs a :class:`HeartbeatWriter` — a daemon
  thread that periodically writes an atomic JSON record (job hash, pid,
  packets done, current RSS, last checkpoint) into
  ``<run-dir>/heartbeats/``;
* the scheduler process runs a :class:`Watchdog` thread that reads those
  records for every in-flight job and flags jobs whose heartbeat went
  silent (``heartbeat_timeout_s``), whose wall clock exceeded their
  deadline (``deadline_s``), or whose RSS crossed the soft memory budget
  (``memory_budget_kb``).  The scheduler terminates flagged jobs (pool
  recycle — the only way to actually kill a pool worker) and requeues
  them under the existing infrastructure-retry budget; a requeued job
  resumes from its last checkpoint instead of starting over.

Interrupts ride the same machinery: SIGTERM/SIGINT in a supervised
worker set the checkpoint module's interrupt flag, the simulation
flushes a final snapshot at the next packet barrier, and the worker
surfaces :class:`JobInterrupted` so the store marks the job
``interrupted`` (never memoized — ``repro-sim run --resume`` picks it up
mid-simulation).

Everything here exchanges plain data (dicts, module-level functions), so
it crosses the ``ProcessPoolExecutor`` pickle boundary untouched.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

HEARTBEAT_DIR = "heartbeats"
CHECKPOINT_DIR = "checkpoints"

#: Manifest-level exit causes (see ``docs/RUNNER.md``).
EXIT_COMPLETED = "completed"
EXIT_INTERRUPTED = "interrupted"
EXIT_DEADLINE = "deadline"
EXIT_WATCHDOG = "watchdog-killed"
EXIT_FAILED = "failed"


# ----------------------------------------------------------------------
# Exceptions that cross the pool boundary
# ----------------------------------------------------------------------
def _rebuild_job_interrupted(message, packets_done, checkpoint_path):
    return JobInterrupted(
        message, packets_done=packets_done, checkpoint_path=checkpoint_path
    )


class JobInterrupted(RuntimeError):
    """A supervised worker stopped at a barrier and flushed a checkpoint.

    Pickles safely across the process-pool boundary (``__reduce__``), so
    the scheduler sees the packets-done count and the snapshot path.
    """

    def __init__(
        self,
        message: str,
        packets_done: int = 0,
        checkpoint_path: Optional[str] = None,
    ):
        super().__init__(message)
        self.packets_done = packets_done
        self.checkpoint_path = checkpoint_path

    def __reduce__(self):
        return (
            _rebuild_job_interrupted,
            (self.args[0] if self.args else "", self.packets_done,
             self.checkpoint_path),
        )


class WatchdogError(RuntimeError):
    """The watchdog killed a job (stale heartbeat, deadline, or memory).

    Treated as an *infrastructure* failure by the scheduler: the job
    requeues under ``max_attempts`` and resumes from its last checkpoint.
    """

    def __init__(self, message: str, cause: str = "stale"):
        super().__init__(message)
        self.cause = cause

    @property
    def exit_cause(self) -> str:
        return EXIT_DEADLINE if self.cause == "deadline" else EXIT_WATCHDOG

    def __reduce__(self):
        return (WatchdogError, (self.args[0] if self.args else "", self.cause))


# ----------------------------------------------------------------------
# Supervision knobs
# ----------------------------------------------------------------------
@dataclass
class SupervisionOptions:
    """Per-run supervision configuration (scheduler + worker halves).

    ``run_dir`` is where heartbeats and per-job checkpoints live — the
    runner defaults it to the result store's directory.  Watchdog checks
    are individually optional: leave a knob ``None`` to skip that check
    (heartbeats are still written; they cost one small atomic write per
    ``heartbeat_interval_s``).
    """

    run_dir: Optional[str] = None
    checkpoint_every: int = 0
    heartbeat_interval_s: float = 0.5
    heartbeat_timeout_s: Optional[float] = None
    deadline_s: Optional[float] = None
    memory_budget_kb: Optional[int] = None
    watchdog_poll_s: float = 0.25

    def worker_payload(self) -> Dict[str, Any]:
        """The picklable subset a worker process needs."""
        return {
            "run_dir": self.run_dir,
            "checkpoint_every": self.checkpoint_every,
            "heartbeat_interval_s": self.heartbeat_interval_s,
        }

    @property
    def watchdog_active(self) -> bool:
        return (
            self.heartbeat_timeout_s is not None
            or self.deadline_s is not None
            or self.memory_budget_kb is not None
        )


# ----------------------------------------------------------------------
# Process memory
# ----------------------------------------------------------------------
def rss_kb() -> Optional[int]:
    """Current resident set size in KiB (``None`` where unreadable)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return None


def rss_peak_kb() -> Optional[int]:
    """Peak resident set size in KiB (``ru_maxrss``; ``None`` off-POSIX)."""
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, OSError, ValueError):
        return None
    # Linux reports KiB; macOS reports bytes.
    import sys

    return peak // 1024 if sys.platform == "darwin" else peak


# ----------------------------------------------------------------------
# Heartbeats (worker side)
# ----------------------------------------------------------------------
def heartbeat_path(run_dir: Path, spec_hash: str) -> Path:
    return Path(run_dir) / HEARTBEAT_DIR / f"{spec_hash}.json"


def checkpoint_path_for(run_dir: Path, spec_hash: str) -> Path:
    return Path(run_dir) / CHECKPOINT_DIR / f"{spec_hash}.ckpt"


def read_heartbeat(run_dir: Path, spec_hash: str) -> Optional[Dict[str, Any]]:
    """The last heartbeat for ``spec_hash`` (``None`` if absent/corrupt)."""
    path = heartbeat_path(run_dir, spec_hash)
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def clear_heartbeat(run_dir: Path, spec_hash: str) -> None:
    try:
        heartbeat_path(run_dir, spec_hash).unlink()
    except OSError:
        pass


class HeartbeatWriter:
    """Daemon thread writing one job's liveness record atomically.

    The record is rewritten every ``interval_s`` and immediately after
    every checkpoint (via :meth:`note_checkpoint`, which the simulator's
    ``checkpoint_hook`` calls).  Writes are tmp+``os.replace`` so the
    watchdog never reads a torn record.
    """

    def __init__(self, run_dir: Path, spec_hash: str, interval_s: float = 0.5):
        self.path = heartbeat_path(run_dir, spec_hash)
        self.spec_hash = spec_hash
        self.interval_s = interval_s
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._fields: Dict[str, Any] = {
            "spec_hash": spec_hash,
            "pid": os.getpid(),
            "started_at": self.started_at,
            "packets_done": 0,
            "last_checkpoint": None,
            "status": "running",
        }
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.write()
        self._thread = threading.Thread(
            target=self._loop, name=f"heartbeat-{self.spec_hash}", daemon=True
        )
        self._thread.start()

    def stop(self, status: Optional[str] = None) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        if status is not None:
            with self._lock:
                self._fields["status"] = status
            self.write()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.write()

    # -- updates -------------------------------------------------------
    def note_checkpoint(self, packets_done: int, path: str) -> None:
        """Checkpoint hook: record progress and flush immediately."""
        with self._lock:
            self._fields["packets_done"] = packets_done
            self._fields["last_checkpoint"] = path
        self.write()

    def write(self) -> None:
        with self._lock:
            record = dict(self._fields)
        record["updated_at"] = time.time()
        # CLOCK_MONOTONIC is system-wide per host, so readers on the
        # same machine (watchdog, lease renewer) measure staleness
        # against their own monotonic clock — immune to wall-clock
        # steps.  ``host`` lets a reader on a *different* machine
        # (shared-filesystem takeover) know the value is not comparable
        # and fall back to wall clock.
        record["updated_mono"] = time.monotonic()
        record["host"] = socket.gethostname()
        record["rss_kb"] = rss_kb()
        tmp = self.path.with_name(self.path.name + f".{os.getpid()}.tmp")
        try:
            tmp.write_text(
                json.dumps(record, separators=(",", ":")) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, self.path)
        except OSError:  # pragma: no cover — heartbeat loss is non-fatal
            try:
                tmp.unlink()
            except OSError:
                pass


# ----------------------------------------------------------------------
# Watchdog (scheduler side)
# ----------------------------------------------------------------------
def _beat_is_local(beat: Dict[str, Any]) -> bool:
    """Was this heartbeat written on this machine (monotonic comparable)?

    Legacy records without a ``host`` field are assumed local — they
    also lack ``updated_mono``, so only wall-clock math applies anyway.
    """
    host = beat.get("host")
    return host is None or host == socket.gethostname()


def heartbeat_silence_s(
    beat: Dict[str, Any], now_mono: Optional[float] = None
) -> float:
    """Seconds since ``beat`` was written, robust to wall-clock steps.

    Prefers the monotonic pair — the writer's ``updated_mono`` against
    the caller's own monotonic clock, valid because CLOCK_MONOTONIC is
    system-wide per host — and falls back to wall-clock arithmetic for
    legacy records or heartbeats written on another machine (shared
    run directory), where wall clocks are the only common reference.
    """
    if "updated_mono" in beat and _beat_is_local(beat):
        if now_mono is None:
            now_mono = time.monotonic()
        return now_mono - beat["updated_mono"]
    return time.time() - beat.get("updated_at", 0.0)


class Watchdog:
    """Background thread flagging silent, overdue, or oversized jobs.

    ``inflight_fn`` is polled each cycle and must return the currently
    running jobs as ``(spec_hash, started_monotonic, started_wall)``
    triples.  Flag causes are ``"stale"``, ``"deadline"``, ``"memory"``;
    the scheduler drains them with :meth:`take_flags` and requeues the
    jobs.  Heartbeats older than the job's own start time are ignored, so
    a leftover record from a previous attempt can never kill the retry.
    """

    def __init__(
        self,
        run_dir: Path,
        inflight_fn: Callable[[], Iterable[Tuple[str, float, float]]],
        options: SupervisionOptions,
        on_flag: Optional[Callable[[str, str, str], None]] = None,
    ):
        self.run_dir = Path(run_dir)
        self.inflight_fn = inflight_fn
        self.options = options
        self.on_flag = on_flag
        self._flags: Dict[str, str] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name="runner-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.options.watchdog_poll_s):
            try:
                self.scan()
            except Exception:  # pragma: no cover — watchdog must not die
                pass

    # -- checks --------------------------------------------------------
    def scan(self) -> None:
        """One scan over the in-flight jobs (public for tests)."""
        opts = self.options
        for spec_hash, started_mono, started_wall in list(self.inflight_fn()):
            with self._lock:
                if spec_hash in self._flags:
                    continue
            now_mono = time.monotonic()
            if (
                opts.deadline_s is not None
                and now_mono - started_mono > opts.deadline_s
            ):
                self._flag(
                    spec_hash, "deadline",
                    f"exceeded {opts.deadline_s:g}s wall-clock deadline",
                )
                continue
            beat = read_heartbeat(self.run_dir, spec_hash)
            # A heartbeat predating this attempt belongs to a previous
            # (killed) attempt of the same job: treat it as absent.  The
            # comparison uses the monotonic pair when the record carries
            # one (and was written on this host), so a wall-clock step
            # between attempts cannot resurrect — or falsely bury — it.
            if beat is not None:
                if "updated_mono" in beat and _beat_is_local(beat):
                    stale_attempt = beat["updated_mono"] < started_mono
                else:
                    stale_attempt = beat.get("updated_at", 0.0) < started_wall
                if stale_attempt:
                    beat = None
            if (
                opts.memory_budget_kb is not None
                and beat is not None
                and (beat.get("rss_kb") or 0) > opts.memory_budget_kb
            ):
                self._flag(
                    spec_hash, "memory",
                    f"RSS {beat['rss_kb']} KiB over the "
                    f"{opts.memory_budget_kb} KiB budget",
                )
                continue
            if opts.heartbeat_timeout_s is not None:
                # Monotonic-anchored staleness: a host wall-clock step
                # (NTP slew, manual set) can neither falsely kill a
                # healthy worker nor immortalize a wedged one.
                if beat is not None:
                    silent_s = heartbeat_silence_s(beat, now_mono)
                else:
                    silent_s = now_mono - started_mono
                if silent_s > opts.heartbeat_timeout_s:
                    self._flag(
                        spec_hash, "stale",
                        f"heartbeat silent for {silent_s:.1f}s "
                        f"(timeout {opts.heartbeat_timeout_s:g}s)",
                    )

    def _flag(self, spec_hash: str, cause: str, detail: str) -> None:
        with self._lock:
            self._flags[spec_hash] = cause
        if self.on_flag is not None:
            self.on_flag(spec_hash, cause, detail)

    def take_flags(self) -> Dict[str, str]:
        """Drain pending flags (``spec_hash -> cause``); clears them."""
        with self._lock:
            flags, self._flags = self._flags, {}
        return flags


def list_heartbeats(run_dir: Path) -> List[Dict[str, Any]]:
    """All readable heartbeat records under ``run_dir`` (for inspection)."""
    directory = Path(run_dir) / HEARTBEAT_DIR
    if not directory.is_dir():
        return []
    records = []
    for path in sorted(directory.glob("*.json")):
        try:
            records.append(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, json.JSONDecodeError):
            continue
    return records
