"""Lease-based distributed experiment queue over a shared SQLite store.

The single-host runner plans a sweep, executes it in a local process
pool, and memoizes results in ``.repro-runs/``.  This module generalizes
the *coordination* half of that into a shared job table so several
``repro-sim run --queue`` invocations — on one machine or many, as long
as they can reach the same SQLite file — cooperate on one sweep:

* **enqueue** — every worker enqueues the full plan; rows are
  deduplicated by :attr:`~repro.runner.spec.JobSpec.spec_hash`
  (``INSERT OR IGNORE``), so enqueueing is idempotent and any worker can
  rebuild a deleted queue from the plan alone;
* **claim-by-update** — a worker claims the oldest ``pending`` row
  inside a single ``BEGIN IMMEDIATE`` transaction, stamping its identity
  (``claimed_by``) and a wall-clock **lease** (``lease_expires_at``).
  SQLite serializes write transactions, so two workers can never claim
  the same row while a lease is valid;
* **lease renewal** — a :class:`LeaseRenewer` thread extends the lease
  while the job runs.  Renewal is *monotonic-safe*: expiry only ever
  moves forward (``MAX(old, now + lease)``), so a backwards host clock
  step cannot shrink a lease, and renewal is piggybacked on the PR 5
  worker heartbeat — a supervised worker whose heartbeat stops advancing
  (measured against the renewer's own monotonic clock) stops being
  renewed, so a wedged host loses its claims;
* **reclamation** — a claim whose lease expired (SIGKILLed worker,
  rebooted host, network partition) is taken over by any survivor; the
  takeover is audited and counted, and the new claimant resumes from the
  dead worker's checkpoint when the run directory is shared;
* **terminal states** — ``done`` / ``failed`` / ``quarantined`` (a job
  whose claims keep dying burns a bounded claim budget, then is parked
  so a poison job cannot take down every host in turn), with per-attempt
  audit rows in the ``attempts`` table;
* **backoff polling** — a worker finding the queue dry while other
  workers still hold claims polls with exponential backoff plus jitter
  instead of hammering the database.

The queue is **coordination, not storage**: results live only in the
fsynced ``results.jsonl`` of the result store, so a corrupt or deleted
queue database loses nothing — it is rebuilt by re-running the same
command (the plan re-enqueues, memoized points are marked ``done``
straight from the store).  Corruption is reported loudly as
:class:`QueueCorruptError` with that rebuild recipe, never as a
traceback.
"""

from __future__ import annotations

import json
import os
import random
import socket
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.runner.spec import JobSpec

#: Schema tag stored in the ``meta`` table (bump on incompatible change).
QUEUE_SCHEMA = "repro-queue/1"

#: Default lease duration.  Long enough that one renewal hiccup (GC
#: pause, NFS stall) does not lose a claim at the default renewal
#: interval of a third of the lease; short enough that a dead host's
#: jobs are reclaimed quickly.
DEFAULT_LEASE_S = 30.0

#: Claims a single job may burn (first claim + takeovers) before it is
#: quarantined instead of handed to yet another victim.
DEFAULT_MAX_CLAIMS = 5

_REBUILD_HINT = (
    "the queue is coordination, not storage — no results live in it. "
    "Rebuild: delete the queue file and re-run the same "
    "'repro-sim run --queue' command; every worker re-enqueues the plan "
    "and already-finished points are marked done straight from the "
    "result store's results.jsonl"
)

#: sqlite error fragments that mean the file itself is damaged (as
#: opposed to contention or schema drift).
_CORRUPTION_MARKERS = (
    "file is not a database",
    "database disk image is malformed",
    "unsupported file format",
    "file is encrypted",
)


class QueueError(RuntimeError):
    """The queue database refused an operation (schema drift, locking)."""


class QueueCorruptError(QueueError):
    """The queue database file is damaged beyond reading.

    Carries the rebuild recipe in the message so the CLI surfaces an
    actionable hint instead of a traceback.
    """

    def __init__(self, path: Union[str, Path], detail: str):
        self.path = str(path)
        self.detail = detail
        super().__init__(
            f"experiment queue {path} is unreadable ({detail}); "
            f"{_REBUILD_HINT}"
        )


def default_worker_id() -> str:
    """``host:pid`` — unique per cooperating invocation, stable within it."""
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass(frozen=True)
class ClaimedJob:
    """One successfully claimed row, ready to execute."""

    spec: JobSpec
    spec_hash: str
    attempts: int
    takeover: bool = False
    taken_from: Optional[str] = None


class ExperimentQueue:
    """Shared SQLite job table (one connection; safe across threads).

    All operations serialize on an internal lock, so the claim loop and
    the :class:`LeaseRenewer` thread may share one instance.  ``lease_s``
    is the lease granted at claim time and extended by each renewal;
    ``max_claims`` bounds how many claims one job may burn before
    quarantine.
    """

    def __init__(
        self,
        path: Union[str, Path],
        worker_id: Optional[str] = None,
        lease_s: float = DEFAULT_LEASE_S,
        max_claims: int = DEFAULT_MAX_CLAIMS,
        busy_timeout_s: float = 30.0,
    ):
        self.path = Path(path)
        self.worker_id = worker_id or default_worker_id()
        self.lease_s = float(lease_s)
        self.max_claims = int(max_claims)
        self._lock = threading.Lock()
        try:
            self._conn = sqlite3.connect(
                str(self.path),
                timeout=busy_timeout_s,
                check_same_thread=False,
                isolation_level=None,  # explicit BEGIN/COMMIT below
            )
        except sqlite3.Error as error:
            raise self._translate(error)
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(
                f"PRAGMA busy_timeout={int(busy_timeout_s * 1000)}"
            )
            self._init_schema()
        except sqlite3.Error as error:
            self._conn.close()
            raise self._translate(error)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _translate(self, error: sqlite3.Error) -> QueueError:
        text = str(error)
        if any(marker in text for marker in _CORRUPTION_MARKERS):
            return QueueCorruptError(self.path, text)
        return QueueError(f"experiment queue {self.path}: {text}")

    def _init_schema(self) -> None:
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta ("
                " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            conn.execute(
                "INSERT OR IGNORE INTO meta(key, value) VALUES('schema', ?)",
                (QUEUE_SCHEMA,),
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS jobs ("
                " spec_hash TEXT PRIMARY KEY,"
                " spec TEXT NOT NULL,"
                " status TEXT NOT NULL DEFAULT 'pending',"
                " claimed_by TEXT,"
                " lease_expires_at REAL,"
                " attempts INTEGER NOT NULL DEFAULT 0,"
                " takeovers INTEGER NOT NULL DEFAULT 0,"
                " error TEXT,"
                " created_at REAL NOT NULL,"
                " updated_at REAL NOT NULL)"
            )
            conn.execute(
                "CREATE INDEX IF NOT EXISTS jobs_status"
                " ON jobs(status, lease_expires_at)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS attempts ("
                " id INTEGER PRIMARY KEY AUTOINCREMENT,"
                " spec_hash TEXT NOT NULL,"
                " worker TEXT NOT NULL,"
                " event TEXT NOT NULL,"
                " detail TEXT,"
                " at REAL NOT NULL)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS workers ("
                " worker TEXT PRIMARY KEY,"
                " pid INTEGER,"
                " started_at REAL,"
                " last_seen_at REAL,"
                " claims INTEGER NOT NULL DEFAULT 0,"
                " takeovers INTEGER NOT NULL DEFAULT 0,"
                " renewals INTEGER NOT NULL DEFAULT 0,"
                " done INTEGER NOT NULL DEFAULT 0,"
                " failed INTEGER NOT NULL DEFAULT 0)"
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        row = conn.execute(
            "SELECT value FROM meta WHERE key='schema'"
        ).fetchone()
        if row is None or row[0] != QUEUE_SCHEMA:
            raise QueueError(
                f"experiment queue {self.path} has schema "
                f"{row[0] if row else None!r}, expected {QUEUE_SCHEMA!r}"
            )

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ExperimentQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _audit(self, spec_hash: str, event: str, detail: str = "") -> None:
        """Append one per-attempt audit row (caller holds a transaction)."""
        self._conn.execute(
            "INSERT INTO attempts(spec_hash, worker, event, detail, at)"
            " VALUES(?,?,?,?,?)",
            (spec_hash, self.worker_id, event, detail, time.time()),
        )

    def _bump_worker(self, **deltas: int) -> None:
        """Fold counters into this worker's row (caller holds a txn)."""
        now = time.time()
        self._conn.execute(
            "INSERT OR IGNORE INTO workers(worker, pid, started_at,"
            " last_seen_at) VALUES(?,?,?,?)",
            (self.worker_id, os.getpid(), now, now),
        )
        sets = ", ".join(f"{key} = {key} + ?" for key in deltas)
        self._conn.execute(
            f"UPDATE workers SET last_seen_at = ?, {sets} WHERE worker = ?",
            (now, *deltas.values(), self.worker_id),
        )

    # ------------------------------------------------------------------
    # Enqueue
    # ------------------------------------------------------------------
    def enqueue(self, spec: JobSpec) -> bool:
        """Insert one job; returns False when its hash is already queued."""
        now = time.time()
        with self._lock:
            try:
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO jobs"
                    " (spec_hash, spec, status, created_at, updated_at)"
                    " VALUES(?,?,'pending',?,?)",
                    (spec.spec_hash, spec.canonical_json(), now, now),
                )
            except sqlite3.Error as error:
                raise self._translate(error)
            return cursor.rowcount == 1

    def enqueue_specs(self, specs: Sequence[JobSpec]) -> int:
        """Idempotently enqueue a plan; returns how many rows were new."""
        return sum(1 for spec in specs if self.enqueue(spec))

    def complete_memoized(self, spec_hashes: Sequence[str]) -> int:
        """Mark still-``pending`` rows ``done`` from result-store memo hits.

        This is the rebuild path: after a queue database is deleted (or
        corrupted and removed), re-enqueueing the plan and calling this
        with the store's completed hashes restores the queue's state
        without re-running anything.  Rows another worker currently
        holds a claim on are left alone — its own completion will mark
        them.
        """
        if not spec_hashes:
            return 0
        now = time.time()
        marked = 0
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                for spec_hash in spec_hashes:
                    cursor = self._conn.execute(
                        "UPDATE jobs SET status='done', claimed_by=?,"
                        " lease_expires_at=NULL, updated_at=?"
                        " WHERE spec_hash=? AND status='pending'",
                        (f"{self.worker_id}/memo", now, spec_hash),
                    )
                    if cursor.rowcount == 1:
                        self._audit(spec_hash, "done", "memoized from store")
                        marked += 1
                if marked:
                    self._bump_worker(done=marked)
                self._conn.execute("COMMIT")
            except sqlite3.Error as error:
                self._conn.execute("ROLLBACK")
                raise self._translate(error)
        return marked

    # ------------------------------------------------------------------
    # Claim / lease lifecycle
    # ------------------------------------------------------------------
    def claim(self) -> Optional[ClaimedJob]:
        """Atomically claim the next runnable job, or ``None`` if dry.

        Prefers ``pending`` rows in enqueue order; with none left, takes
        over the longest-expired ``claimed`` row (lease reclamation).  A
        job whose claim count would exceed ``max_claims`` is moved to
        ``quarantined`` instead of being claimed again, and the next
        candidate is considered.
        """
        with self._lock:
            try:
                return self._claim_locked()
            except sqlite3.Error as error:
                raise self._translate(error)

    def _claim_locked(self) -> Optional[ClaimedJob]:
        conn = self._conn
        while True:
            now = time.time()
            conn.execute("BEGIN IMMEDIATE")
            try:
                row = conn.execute(
                    "SELECT spec_hash, spec, attempts, takeovers, claimed_by"
                    " FROM jobs WHERE status='pending'"
                    " ORDER BY rowid LIMIT 1"
                ).fetchone()
                takeover = False
                if row is None:
                    row = conn.execute(
                        "SELECT spec_hash, spec, attempts, takeovers,"
                        " claimed_by FROM jobs"
                        " WHERE status='claimed' AND lease_expires_at < ?"
                        " ORDER BY lease_expires_at LIMIT 1",
                        (now,),
                    ).fetchone()
                    takeover = row is not None
                if row is None:
                    conn.execute("COMMIT")
                    return None
                spec_hash, spec_json, attempts, takeovers, previous = row
                attempts += 1
                if attempts > self.max_claims:
                    conn.execute(
                        "UPDATE jobs SET status='quarantined', claimed_by=?,"
                        " lease_expires_at=NULL, attempts=?, updated_at=?,"
                        " error=? WHERE spec_hash=?",
                        (
                            self.worker_id,
                            attempts,
                            now,
                            f"quarantined after {attempts - 1} claims "
                            f"(max_claims={self.max_claims})",
                            spec_hash,
                        ),
                    )
                    self._audit(
                        spec_hash,
                        "quarantined",
                        f"claim budget exhausted ({attempts - 1} claims)",
                    )
                    conn.execute("COMMIT")
                    continue  # look at the next candidate
                conn.execute(
                    "UPDATE jobs SET status='claimed', claimed_by=?,"
                    " lease_expires_at=?, attempts=?, takeovers=?,"
                    " updated_at=? WHERE spec_hash=?",
                    (
                        self.worker_id,
                        now + self.lease_s,
                        attempts,
                        takeovers + (1 if takeover else 0),
                        now,
                        spec_hash,
                    ),
                )
                if takeover:
                    self._audit(
                        spec_hash,
                        "takeover",
                        f"lease of {previous} expired",
                    )
                    self._bump_worker(claims=1, takeovers=1)
                else:
                    self._audit(spec_hash, "claimed", f"attempt {attempts}")
                    self._bump_worker(claims=1)
                conn.execute("COMMIT")
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            spec = JobSpec.from_dict(json.loads(spec_json))
            return ClaimedJob(
                spec=spec,
                spec_hash=spec_hash,
                attempts=attempts,
                takeover=takeover,
                taken_from=previous if takeover else None,
            )

    def renew(self, spec_hash: str) -> bool:
        """Extend this worker's lease; monotonic-safe (never shrinks).

        Returns ``False`` when the claim is no longer ours — expired and
        taken over, or already terminal — in which case the caller must
        treat the job as lost.
        """
        now = time.time()
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                cursor = self._conn.execute(
                    "UPDATE jobs SET"
                    " lease_expires_at = MAX(lease_expires_at, ?),"
                    " updated_at = ?"
                    " WHERE spec_hash=? AND status='claimed'"
                    " AND claimed_by=?",
                    (now + self.lease_s, now, spec_hash, self.worker_id),
                )
                renewed = cursor.rowcount == 1
                if renewed:
                    self._bump_worker(renewals=1)
                self._conn.execute("COMMIT")
            except sqlite3.Error as error:
                self._conn.execute("ROLLBACK")
                raise self._translate(error)
        return renewed

    def mark_done(self, spec_hash: str, memo: bool = False) -> bool:
        """Terminal success.  Tolerates the row being claimed elsewhere
        meanwhile (content-addressed results make completion idempotent)."""
        now = time.time()
        detail = "memoized from store" if memo else "executed"
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                cursor = self._conn.execute(
                    "UPDATE jobs SET status='done', claimed_by=?,"
                    " lease_expires_at=NULL, updated_at=?"
                    " WHERE spec_hash=? AND status IN ('pending','claimed')",
                    (self.worker_id, now, spec_hash),
                )
                done = cursor.rowcount == 1
                if done:
                    self._audit(spec_hash, "done", detail)
                    self._bump_worker(done=1)
                self._conn.execute("COMMIT")
            except sqlite3.Error as error:
                self._conn.execute("ROLLBACK")
                raise self._translate(error)
        return done

    def mark_failed(self, spec_hash: str, error: str) -> bool:
        """Terminal failure (the runner's retry budget is already spent)."""
        now = time.time()
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                cursor = self._conn.execute(
                    "UPDATE jobs SET status='failed', claimed_by=?,"
                    " lease_expires_at=NULL, updated_at=?, error=?"
                    " WHERE spec_hash=? AND status IN ('pending','claimed')",
                    (self.worker_id, now, error[:500], spec_hash),
                )
                failed = cursor.rowcount == 1
                if failed:
                    self._audit(spec_hash, "failed", error[:500])
                    self._bump_worker(failed=1)
                self._conn.execute("COMMIT")
            except sqlite3.Error as sql_error:
                self._conn.execute("ROLLBACK")
                raise self._translate(sql_error)
        return failed

    def release(self, spec_hash: str) -> bool:
        """Hand a claim back (cooperative interrupt): row returns to
        ``pending`` so any worker — including a later invocation here —
        picks it up without waiting out the lease."""
        now = time.time()
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                cursor = self._conn.execute(
                    "UPDATE jobs SET status='pending', claimed_by=NULL,"
                    " lease_expires_at=NULL, updated_at=?"
                    " WHERE spec_hash=? AND status='claimed'"
                    " AND claimed_by=?",
                    (now, spec_hash, self.worker_id),
                )
                released = cursor.rowcount == 1
                if released:
                    self._audit(spec_hash, "released", "claim handed back")
                self._conn.execute("COMMIT")
            except sqlite3.Error as error:
                self._conn.execute("ROLLBACK")
                raise self._translate(error)
        return released

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def _query(self, sql: str, params: Tuple = ()) -> List[Tuple]:
        with self._lock:
            try:
                return self._conn.execute(sql, params).fetchall()
            except sqlite3.Error as error:
                raise self._translate(error)

    def counts(self) -> Dict[str, int]:
        """Row counts by status (``{}`` for an empty queue)."""
        return dict(
            self._query("SELECT status, COUNT(*) FROM jobs GROUP BY status")
        )

    def unfinished(self) -> int:
        """Rows that still need work (``pending`` + ``claimed``)."""
        rows = self._query(
            "SELECT COUNT(*) FROM jobs"
            " WHERE status IN ('pending','claimed')"
        )
        return int(rows[0][0])

    def jobs(self, status: Optional[str] = None) -> List[Dict[str, Any]]:
        """Job rows (optionally filtered), as plain dicts."""
        sql = (
            "SELECT spec_hash, status, claimed_by, lease_expires_at,"
            " attempts, takeovers, error, created_at, updated_at FROM jobs"
        )
        params: Tuple = ()
        if status is not None:
            sql += " WHERE status=?"
            params = (status,)
        keys = (
            "spec_hash", "status", "claimed_by", "lease_expires_at",
            "attempts", "takeovers", "error", "created_at", "updated_at",
        )
        return [dict(zip(keys, row)) for row in self._query(sql + " ORDER BY rowid", params)]

    def attempt_rows(self, spec_hash: Optional[str] = None) -> List[Dict[str, Any]]:
        """The audit trail (optionally for one job), oldest first."""
        sql = "SELECT spec_hash, worker, event, detail, at FROM attempts"
        params: Tuple = ()
        if spec_hash is not None:
            sql += " WHERE spec_hash=?"
            params = (spec_hash,)
        keys = ("spec_hash", "worker", "event", "detail", "at")
        return [dict(zip(keys, row)) for row in self._query(sql + " ORDER BY id", params)]

    def worker_rows(self) -> List[Dict[str, Any]]:
        """Per-worker claim/takeover/renewal/done/failed counters."""
        keys = (
            "worker", "pid", "started_at", "last_seen_at", "claims",
            "takeovers", "renewals", "done", "failed",
        )
        rows = self._query(
            "SELECT worker, pid, started_at, last_seen_at, claims,"
            " takeovers, renewals, done, failed FROM workers ORDER BY worker"
        )
        return [dict(zip(keys, row)) for row in rows]

    def summary(self) -> Dict[str, Any]:
        """Manifest-ready snapshot: path, status counts, per-worker rows."""
        return {
            "path": str(self.path),
            "schema": QUEUE_SCHEMA,
            "worker_id": self.worker_id,
            "lease_s": self.lease_s,
            "counts": dict(sorted(self.counts().items())),
            "workers": {
                row["worker"]: {
                    key: row[key]
                    for key in ("claims", "takeovers", "renewals", "done",
                                "failed")
                }
                for row in self.worker_rows()
            },
        }


# ----------------------------------------------------------------------
# Lease renewal (worker side), piggybacked on the supervision heartbeat
# ----------------------------------------------------------------------
class LeaseRenewer:
    """Daemon thread renewing the leases of the jobs this worker runs.

    Renewal is gated on *progress*: when a run directory is given and a
    supervision heartbeat exists for a job, the renewer tracks the
    heartbeat's ``updated_at`` value against its **own monotonic clock**
    — the same discipline as the watchdog's staleness check — and stops
    renewing a job whose heartbeat has not advanced for
    ``stale_after_s``.  A wedged worker process therefore loses its
    lease and a survivor takes the job over, while clock steps on either
    host change nothing.  Without a heartbeat (unsupervised or stub
    jobs) the renewer's own liveness is the signal: it renews until
    stopped or the orchestrating process dies.
    """

    def __init__(
        self,
        queue: ExperimentQueue,
        spec_hashes: Sequence[str],
        run_dir: Optional[Union[str, Path]] = None,
        interval_s: Optional[float] = None,
        stale_after_s: Optional[float] = None,
        on_lost: Optional[Callable[[str], None]] = None,
    ):
        self.queue = queue
        self.spec_hashes = list(spec_hashes)
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.interval_s = (
            interval_s if interval_s is not None else queue.lease_s / 3.0
        )
        self.stale_after_s = (
            stale_after_s if stale_after_s is not None else queue.lease_s
        )
        self.on_lost = on_lost
        self.renewals = 0
        self.lost: List[str] = []
        #: spec_hash -> (last heartbeat ``updated_at`` value, the
        #: monotonic instant this renewer first saw that value).
        self._seen: Dict[str, Tuple[Optional[float], float]] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name="lease-renewer", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.renew_once()
            except QueueError:  # pragma: no cover — renewal must not die
                pass

    def _heartbeat_fresh(self, spec_hash: str) -> bool:
        """Has this job shown progress recently (by our monotonic clock)?"""
        if self.run_dir is None:
            return True
        from repro.runner.supervise import read_heartbeat

        beat = read_heartbeat(self.run_dir, spec_hash)
        if beat is None:
            # No record (yet): between attempts, unsupervised, or the
            # file vanished — not evidence of a wedge.
            self._seen.pop(spec_hash, None)
            return True
        value = beat.get("updated_at")
        now_mono = time.monotonic()
        seen = self._seen.get(spec_hash)
        if seen is None or seen[0] != value:
            self._seen[spec_hash] = (value, now_mono)
            return True
        return (now_mono - seen[1]) <= self.stale_after_s

    def renew_once(self) -> None:
        """One renewal pass (public for deterministic tests)."""
        for spec_hash in list(self.spec_hashes):
            if spec_hash in self.lost:
                continue
            if not self._heartbeat_fresh(spec_hash):
                continue  # wedged: let the lease run out
            if self.queue.renew(spec_hash):
                self.renewals += 1
            else:
                self.lost.append(spec_hash)
                if self.on_lost is not None:
                    self.on_lost(spec_hash)


# ----------------------------------------------------------------------
# The worker loop
# ----------------------------------------------------------------------
@dataclass
class QueueWorkStats:
    """Accounting for one :func:`work_queue` invocation."""

    claims: int = 0
    takeovers: int = 0
    executed: int = 0
    memo_hits: int = 0
    done: int = 0
    failed: int = 0
    released: int = 0
    renewals: int = 0
    polls: int = 0
    wall_clock_s: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "claims": self.claims,
            "takeovers": self.takeovers,
            "executed": self.executed,
            "memo_hits": self.memo_hits,
            "done": self.done,
            "failed": self.failed,
            "released": self.released,
            "renewals": self.renewals,
            "polls": self.polls,
            "wall_clock_s": round(self.wall_clock_s, 3),
        }


def work_queue(
    queue: ExperimentQueue,
    runner: "ExperimentRunner",
    poll_s: float = 0.25,
    poll_max_s: float = 8.0,
    rng: Optional[random.Random] = None,
    on_event: Optional[Callable[[str], None]] = None,
) -> QueueWorkStats:
    """Drain ``queue`` through ``runner`` until every job is terminal.

    Each cycle claims up to the runner's worker count, answers claims
    already present in the (refreshed) result store without executing —
    memoization parity with the single-host path — and runs the rest as
    one batch, marking each job ``done``/``failed`` in the queue *as its
    result lands* (scheduler ``on_result`` hook) while a
    :class:`LeaseRenewer` keeps the batch's leases alive.  A dry poll
    backs off exponentially with jitter up to ``poll_max_s`` and resets
    on the next successful claim.  Interrupts release the still-claimed
    jobs back to ``pending`` before propagating, so survivors (or a
    rerun here) continue immediately.
    """
    rng = rng or random.Random()
    stats = QueueWorkStats()
    store = runner.store
    run_dir = str(store.directory) if store is not None else None
    started = time.monotonic()
    say = on_event or (lambda message: None)
    idle_rounds = 0
    try:
        while True:
            batch: List[ClaimedJob] = []
            max_batch = max(1, runner.options.effective_jobs)
            while len(batch) < max_batch:
                job = queue.claim()
                if job is None:
                    break
                stats.claims += 1
                if job.takeover:
                    stats.takeovers += 1
                    say(
                        f"queue.takeover: {job.spec_hash} from "
                        f"{job.taken_from} (attempt {job.attempts})"
                    )
                if store is not None:
                    store.refresh()
                    if store.get(job.spec_hash) is not None:
                        queue.mark_done(job.spec_hash, memo=True)
                        stats.memo_hits += 1
                        stats.done += 1
                        continue
                batch.append(job)

            if not batch:
                if queue.unfinished() == 0:
                    break
                stats.polls += 1
                delay = min(poll_max_s, poll_s * (2.0 ** min(idle_rounds, 16)))
                delay *= 0.5 + rng.random()  # jitter: de-synchronize hosts
                idle_rounds += 1
                time.sleep(delay)
                continue
            idle_rounds = 0

            by_hash = {job.spec_hash: job for job in batch}
            marked: set = set()

            def _on_result(result) -> None:
                if result.spec_hash not in by_hash:
                    return
                if result.ok:
                    queue.mark_done(result.spec_hash)
                    marked.add(result.spec_hash)
                    stats.done += 1
                    stats.executed += 1
                elif result.status == "failed":
                    queue.mark_failed(result.spec_hash, result.error or "failed")
                    marked.add(result.spec_hash)
                    stats.failed += 1
                # interrupted results stay unmarked -> released below

            renewer = LeaseRenewer(queue, list(by_hash), run_dir=run_dir)
            renewer.start()
            previous_hook = runner.on_result
            runner.on_result = _on_result
            try:
                runner.run([job.spec for job in batch])
            finally:
                runner.on_result = previous_hook
                renewer.stop()
                stats.renewals += renewer.renewals
                for spec_hash in by_hash:
                    if spec_hash not in marked and queue.release(spec_hash):
                        stats.released += 1
    finally:
        stats.wall_clock_s = time.monotonic() - started
    return stats
