"""Parallel experiment orchestration: jobs, workers, result store, resume.

The runner turns sweep execution into orchestrated, parallel, resumable
jobs (see ``docs/RUNNER.md``)::

    from pathlib import Path
    from repro.runner import ExperimentRunner, ResultStore, RunnerOptions
    from repro.analysis.experiments import run_driver
    from repro.analysis.scale import DEFAULT

    store = ResultStore(Path(".repro-runs"), "figure10-default")
    runner = ExperimentRunner(store=store, options=RunnerOptions(jobs=4))
    table = run_driver("figure10", scale=DEFAULT, runner=runner)

Modules:

* :mod:`repro.runner.spec` — :class:`JobSpec` / :class:`JobResult`, the
  pure, picklable, content-hashed job model
* :mod:`repro.runner.scheduler` — process-pool scheduler with retries,
  per-job timeouts, and in-process degradation
* :mod:`repro.runner.store` — crash-safe JSON-lines result store + run
  manifest (the memoization and resume layer)
* :mod:`repro.runner.worker` — worker-process entry points and per-worker
  trace-cache priming
* :mod:`repro.runner.progress` — jobs done/failed/cached, ETA, per-worker
  throughput telemetry
* :mod:`repro.runner.supervise` — worker heartbeats, the scheduler-side
  watchdog, and the interrupt/checkpoint supervision plumbing
* :mod:`repro.runner.orchestrate` — plan/execute/replay bridge that runs
  unmodified experiment drivers in parallel
* :mod:`repro.runner.queue` — lease-based distributed experiment queue
  (shared SQLite job table multiple hosts pull from cooperatively)
"""

from repro.runner.orchestrate import (
    plan_driver,
    run_experiment,
    run_experiment_queue,
    run_sweep,
)
from repro.runner.progress import ProgressReporter
from repro.runner.queue import (
    ClaimedJob,
    ExperimentQueue,
    LeaseRenewer,
    QueueCorruptError,
    QueueError,
    QueueWorkStats,
    work_queue,
)
from repro.runner.scheduler import (
    ExperimentRunner,
    JobTimeoutError,
    RunFailedError,
    RunnerOptions,
    RunStats,
)
from repro.runner.serialize import result_from_dict, result_to_dict
from repro.runner.spec import JobResult, JobSpec
from repro.runner.store import DEFAULT_RUNS_DIR, ResultStore, list_runs
from repro.runner.supervise import (
    JobInterrupted,
    SupervisionOptions,
    Watchdog,
    WatchdogError,
    list_heartbeats,
    read_heartbeat,
)
from repro.runner.worker import (
    execute_job,
    execute_job_supervised,
    pool_initializer,
)

__all__ = [
    "JobSpec",
    "JobResult",
    "ExperimentRunner",
    "RunnerOptions",
    "RunStats",
    "RunFailedError",
    "JobTimeoutError",
    "ResultStore",
    "DEFAULT_RUNS_DIR",
    "list_runs",
    "ProgressReporter",
    "SupervisionOptions",
    "Watchdog",
    "WatchdogError",
    "JobInterrupted",
    "list_heartbeats",
    "read_heartbeat",
    "plan_driver",
    "run_experiment",
    "run_experiment_queue",
    "run_sweep",
    "ExperimentQueue",
    "ClaimedJob",
    "LeaseRenewer",
    "QueueError",
    "QueueCorruptError",
    "QueueWorkStats",
    "work_queue",
    "result_to_dict",
    "result_from_dict",
    "execute_job",
    "execute_job_supervised",
    "pool_initializer",
]
