"""Job model: one sweep point as a pure, picklable, content-addressed job.

A :class:`JobSpec` is everything a worker process needs to reproduce one
simulation — the architecture (as plain data, via
:mod:`repro.core.config_io`), the workload coordinates, and the scaling
knobs that affect the result.  Deliberately *excluded* is anything that
does not change the outcome (e.g. the name of the
:class:`~repro.analysis.scale.RunScale` preset, or which other points the
surrounding sweep contains), so the content hash identifies the result
itself: two sweeps that share a point share its cache entry.

Hashes are computed over canonical JSON (sorted keys, no whitespace) with
SHA-256 and truncated to 16 hex characters; they are stable across
processes, interpreter restarts, and platforms.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.analysis.scale import RunScale
from repro.core.config import ArchConfig
from repro.core.config_io import config_from_dict, config_to_dict

#: Truncated SHA-256 length (64 bits: collision-safe for any plausible run).
_HASH_CHARS = 16


@dataclass(frozen=True)
class JobSpec:
    """A pure description of one sweep point.

    ``config`` is the :class:`ArchConfig` serialised to plain data;
    ``max_packets`` / ``packets_per_tenant`` / ``warmup_fraction`` are the
    three :class:`RunScale` knobs that influence a single point.
    """

    config: Dict[str, Any]
    benchmark: str
    num_tenants: int
    interleaving: str
    max_packets: int
    packets_per_tenant: int = 200_000
    warmup_fraction: float = 0.25
    seed: int = 0
    native: bool = False
    #: Serialised :class:`~repro.faults.plan.FaultPlan` (via
    #: ``plan_to_dict``) or ``None``.  Part of the content hash when set,
    #: so a faulted point never shares a cache entry with its fault-free
    #: twin; omitted from serialisation when ``None`` so every pre-fault
    #: hash is unchanged.
    fault_plan: Optional[Dict[str, Any]] = None
    #: Simulator implementation (``analytic`` / ``evented`` /
    #: ``vectorized``).  Part of the content hash when not the default,
    #: so a point's provenance records how it was produced; omitted from
    #: serialisation at the ``analytic`` default so every pre-engine
    #: hash is unchanged.
    engine: str = "analytic"

    @classmethod
    def from_point(
        cls,
        config: ArchConfig,
        benchmark: str,
        num_tenants: int,
        interleaving: str,
        scale: RunScale,
        *,
        seed: int = 0,
        native: bool = False,
        fault_plan=None,
        engine: str = "analytic",
    ) -> "JobSpec":
        """Build the spec for ``run_point(config, benchmark, ...)``.

        ``fault_plan`` accepts a :class:`~repro.faults.plan.FaultPlan`
        (serialised here) or an already-serialised plan dict.
        """
        if fault_plan is not None and not isinstance(fault_plan, dict):
            from repro.faults.plan import plan_to_dict

            fault_plan = plan_to_dict(fault_plan)
        return cls(
            config=config_to_dict(config),
            benchmark=benchmark,
            num_tenants=num_tenants,
            interleaving=interleaving,
            max_packets=scale.max_packets,
            packets_per_tenant=scale.packets_per_tenant,
            warmup_fraction=scale.warmup_fraction,
            seed=seed,
            native=native,
            fault_plan=fault_plan,
            engine=engine,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        document = {
            "config": dict(self.config),
            "benchmark": self.benchmark,
            "num_tenants": self.num_tenants,
            "interleaving": self.interleaving,
            "max_packets": self.max_packets,
            "packets_per_tenant": self.packets_per_tenant,
            "warmup_fraction": self.warmup_fraction,
            "seed": self.seed,
            "native": self.native,
        }
        if self.fault_plan is not None:
            document["fault_plan"] = dict(self.fault_plan)
        if self.engine != "analytic":
            document["engine"] = self.engine
        return document

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "JobSpec":
        return cls(**raw)

    def canonical_json(self) -> str:
        """Deterministic serialisation (the hash input)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @property
    def spec_hash(self) -> str:
        """Stable content hash identifying this job's result."""
        digest = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()[:_HASH_CHARS]

    # ------------------------------------------------------------------
    def arch_config(self) -> ArchConfig:
        """Reconstruct the :class:`ArchConfig` (raises on malformed data)."""
        return config_from_dict(dict(self.config))

    def run_scale(self) -> RunScale:
        """A single-point :class:`RunScale` carrying this spec's knobs."""
        return RunScale(
            name="job",
            tenant_counts=(self.num_tenants,),
            interleavings=(self.interleaving,),
            benchmarks=(self.benchmark,),
            max_packets=self.max_packets,
            packets_per_tenant=self.packets_per_tenant,
            warmup_fraction=self.warmup_fraction,
        )

    @property
    def label(self) -> str:
        """Short human-readable identity for progress lines."""
        name = self.config.get("name", "?") if isinstance(self.config, dict) else "?"
        suffix = "" if self.engine == "analytic" else f"/{self.engine}"
        return (
            f"{name}/{self.benchmark}/{self.num_tenants}t/"
            f"{self.interleaving}/s{self.seed}{suffix}"
        )


@dataclass
class JobResult:
    """Outcome of one job attempt chain (success or exhausted failure).

    ``result`` holds the :class:`~repro.core.results.SimulationResult`
    serialised via :mod:`repro.runner.serialize`; ``trace_cache`` holds the
    worker's cumulative per-process trace-cache counters at completion
    time; ``metrics`` holds the compact per-job observability summary
    (latency percentiles, drop rate — see
    :func:`repro.runner.worker.job_metrics_summary`) that the run manifest
    aggregates.  ``cached`` is a per-invocation flag (never persisted): it
    marks results answered from the store without executing anything.

    ``exit_cause`` records *why* the job ended the way it did
    (``completed`` / ``interrupted`` / ``deadline`` / ``watchdog-killed``
    / ``failed`` — see :mod:`repro.runner.supervise`); ``rss_peak_kb`` is
    the worker's peak resident set while the job ran (supervised jobs
    only).  ``interrupted`` records, like failures, are persisted for the
    audit trail but never memoized, so a resumed run re-executes them —
    picking up from the job's on-disk checkpoint when one exists.
    """

    spec_hash: str
    status: str  # "ok" | "failed" | "interrupted"
    spec: Dict[str, Any] = field(default_factory=dict)
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    attempts: int = 1
    duration_s: float = 0.0
    worker_pid: Optional[int] = None
    trace_cache: Optional[Dict[str, int]] = None
    metrics: Optional[Dict[str, Any]] = None
    cached: bool = False
    exit_cause: Optional[str] = None
    rss_peak_kb: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def interrupted(self) -> bool:
        return self.status == "interrupted"

    def to_dict(self) -> Dict[str, Any]:
        document = {
            "spec_hash": self.spec_hash,
            "status": self.status,
            "spec": self.spec,
            "result": self.result,
            "error": self.error,
            "attempts": self.attempts,
            "duration_s": self.duration_s,
            "worker_pid": self.worker_pid,
            "trace_cache": self.trace_cache,
            "metrics": self.metrics,
        }
        # Optional supervision fields are omitted when unset so records
        # from unsupervised runs serialise exactly as before these fields
        # existed.
        if self.exit_cause is not None:
            document["exit_cause"] = self.exit_cause
        if self.rss_peak_kb is not None:
            document["rss_peak_kb"] = self.rss_peak_kb
        return document

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "JobResult":
        return cls(
            spec_hash=raw["spec_hash"],
            status=raw["status"],
            spec=raw.get("spec") or {},
            result=raw.get("result"),
            error=raw.get("error"),
            attempts=raw.get("attempts", 1),
            duration_s=raw.get("duration_s", 0.0),
            worker_pid=raw.get("worker_pid"),
            trace_cache=raw.get("trace_cache"),
            metrics=raw.get("metrics"),
            exit_cause=raw.get("exit_cause"),
            rss_peak_kb=raw.get("rss_peak_kb"),
        )
