"""Parallel job scheduler: process pool, retries, timeouts, degradation.

:class:`ExperimentRunner` executes a batch of
:class:`~repro.runner.spec.JobSpec` jobs with:

* **memoization** — jobs whose hash is already in the
  :class:`~repro.runner.store.ResultStore` are answered without executing
  anything (this is what makes runs resumable and re-runs free);
* **parallelism** — a :class:`~concurrent.futures.ProcessPoolExecutor`
  with a configurable worker count, each worker primed by
  :func:`~repro.runner.worker.pool_initializer`;
* **bounded retry with backoff** — a failed attempt re-queues with
  exponential backoff until its budget is exhausted, at which point the
  worker's exception is surfaced in the
  :class:`~repro.runner.spec.JobResult`.  Infrastructure failures
  (broken pool, timeout, OS errors) are retryable up to ``max_attempts``;
  exceptions raised by the job itself are deterministic and budgeted by
  ``job_error_attempts`` (default 1: a poison job fails fast);
* **per-job timeouts** — a job past its deadline is declared failed (or
  re-queued, if attempts remain) and the pool is recycled, which actually
  kills the hung worker process rather than leaking it;
* **graceful degradation** — if the pool keeps breaking (workers dying,
  fork failures), the runner falls back to in-process execution so the
  run completes, just without parallelism.

Exactly ``jobs`` futures are kept in flight, so a job's deadline clock
starts when it genuinely starts running, not while queued behind others.
"""

from __future__ import annotations

import dataclasses
import functools
import heapq
import itertools
import os
import time
from collections import OrderedDict, deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.runner.progress import ProgressReporter
from repro.runner.spec import JobResult, JobSpec
from repro.runner.store import ResultStore
from repro.runner.supervise import (
    EXIT_FAILED,
    EXIT_INTERRUPTED,
    JobInterrupted,
    SupervisionOptions,
    Watchdog,
    WatchdogError,
)
from repro.runner.worker import (
    DEFAULT_WORKER_TRACE_CAPACITY,
    execute_job,
    execute_job_supervised,
    pool_initializer,
)


class JobTimeoutError(RuntimeError):
    """A job exceeded its per-job timeout and its worker was recycled."""


#: Failures of the execution *infrastructure* (a worker died, a job timed
#: out, the watchdog killed the worker, the OS refused resources) —
#: transient by nature, so retrying the same job can succeed.  Anything
#: else is an exception the job itself raised, which is deterministic for
#: this codebase's pure-function jobs: retrying a poison job burns a full
#: backoff ladder per spec for nothing, so job-raised errors get their own
#: (default fail-fast) budget.
_INFRASTRUCTURE_ERRORS = (BrokenProcessPool, JobTimeoutError, WatchdogError, OSError)

#: Reporter prefixes for watchdog flag causes (the ``watchdog.*`` event
#: taxonomy from :mod:`repro.obs.events`).
_WATCHDOG_EVENT_KINDS = {
    "stale": "watchdog.stale",
    "deadline": "watchdog.deadline",
    "memory": "watchdog.memory",
}


class RunFailedError(RuntimeError):
    """One or more jobs failed after exhausting their attempts."""

    def __init__(self, failures: Sequence[JobResult]):
        self.failures = list(failures)
        preview = "; ".join(
            f"{f.spec_hash}: {f.error}" for f in self.failures[:3]
        )
        more = f" (+{len(self.failures) - 3} more)" if len(self.failures) > 3 else ""
        super().__init__(
            f"{len(self.failures)} job(s) failed after retries: {preview}{more}"
        )


@dataclass
class RunnerOptions:
    """Scheduling knobs (all per-run, not global state).

    ``jobs=0`` means "all cores"; ``jobs=1`` executes in-process with no
    pool at all (also the degradation target).  ``max_attempts`` budgets
    *infrastructure* failures (broken pool, timeout, OS errors) and
    counts the first try, so ``2`` means one retry;
    ``job_error_attempts`` budgets exceptions raised by the job function
    itself — deterministic failures, so the default of 1 fails a poison
    job fast instead of replaying it through the backoff ladder.
    Timeouts apply only to pooled execution — an in-process job cannot
    be killed.
    """

    jobs: int = 0
    timeout_s: Optional[float] = None
    max_attempts: int = 2
    backoff_s: float = 0.25
    backoff_factor: float = 2.0
    trace_cache_capacity: int = DEFAULT_WORKER_TRACE_CAPACITY
    max_pool_restarts: int = 2
    job_error_attempts: int = 1

    @property
    def effective_jobs(self) -> int:
        return self.jobs if self.jobs > 0 else (os.cpu_count() or 1)


@dataclass
class RunStats:
    """Accounting for the most recent :meth:`ExperimentRunner.run`."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    failed: int = 0
    interrupted: int = 0
    retried: int = 0
    wall_clock_s: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class _InFlight:
    spec: JobSpec
    attempt: int
    deadline: Optional[float]
    started_mono: float = 0.0
    started_wall: float = 0.0


class ExperimentRunner:
    """Orchestrates a batch of jobs through workers, store, and reporter."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        options: Optional[RunnerOptions] = None,
        job_fn: Callable[[JobSpec], Any] = execute_job,
        reporter: Optional[ProgressReporter] = None,
        initializer: Optional[Callable[..., None]] = pool_initializer,
        supervision: Optional[SupervisionOptions] = None,
    ):
        self.store = store
        self.options = options or RunnerOptions()
        self.job_fn = job_fn
        self.reporter = reporter or ProgressReporter(enabled=False)
        self.initializer = initializer
        self.stats = RunStats()
        self._retry_seq = itertools.count()
        #: Optional per-result hook, invoked after each result is recorded
        #: (executed, failed, or interrupted — not memo hits).  The queue
        #: worker loop uses it to mark jobs terminal in the shared queue
        #: as their results land, instead of after the whole batch.
        self.on_result: Optional[Callable[[JobResult], None]] = None
        self.supervision = supervision
        if supervision is not None:
            if supervision.run_dir is None and store is not None:
                supervision.run_dir = str(store.directory)
            # Swap in the supervised worker entry point only when the
            # caller kept the default job function — custom job functions
            # (tests, orchestration replay) keep their own behaviour, but
            # the watchdog still covers them via deadlines.
            if supervision.run_dir is not None and job_fn is execute_job:
                self.job_fn = functools.partial(
                    execute_job_supervised,
                    supervision=supervision.worker_payload(),
                )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, specs: Iterable[JobSpec]) -> List[JobResult]:
        """Execute ``specs``; returns one result per spec, in order.

        Duplicate specs (same hash) execute once and share the result.
        Failures are returned as ``status="failed"`` records, never
        raised — use :meth:`run_or_raise` for raise-on-failure semantics.
        """
        specs = list(specs)
        started = time.monotonic()
        unique: "OrderedDict[str, JobSpec]" = OrderedDict()
        for spec in specs:
            unique.setdefault(spec.spec_hash, spec)
        results: Dict[str, JobResult] = {}
        pending: List[JobSpec] = []
        for spec_hash, spec in unique.items():
            hit = self.store.get(spec_hash) if self.store is not None else None
            if hit is not None:
                results[spec_hash] = dataclasses.replace(hit, cached=True)
            else:
                pending.append(spec)
        self.stats = RunStats(total=len(unique), cached=len(unique) - len(pending))
        self.reporter.start(total=len(unique), cached=self.stats.cached)
        try:
            if pending:
                if self.options.effective_jobs <= 1:
                    self._run_inline(((spec, 1) for spec in pending), results)
                else:
                    self._run_pool(pending, results)
        finally:
            # Interrupts (KeyboardInterrupt out of either path) must still
            # leave the stats consistent — the CLI writes them into the
            # ``interrupted`` manifest.
            self.stats.wall_clock_s = time.monotonic() - started
            self.reporter.finish(self.stats)
        return [results[spec.spec_hash] for spec in specs]

    def run_or_raise(self, specs: Iterable[JobSpec]) -> List[JobResult]:
        """Like :meth:`run`, but raises :class:`RunFailedError` on failures."""
        results = self.run(specs)
        failures = [result for result in results if not result.ok]
        if failures:
            raise RunFailedError(failures)
        return results

    # ------------------------------------------------------------------
    # Result plumbing
    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> float:
        return self.options.backoff_s * self.options.backoff_factor ** (attempt - 1)

    def _attempt_budget(self, error: BaseException) -> int:
        """Retry budget for ``error``: infrastructure failures get
        ``max_attempts``, deterministic job failures ``job_error_attempts``."""
        if isinstance(error, _INFRASTRUCTURE_ERRORS):
            return self.options.max_attempts
        return self.options.job_error_attempts

    def _ok_result(
        self, spec: JobSpec, payload: Any, attempt: int, fallback_duration: float
    ) -> JobResult:
        exit_cause = None
        rss_peak = None
        if isinstance(payload, Mapping) and "result" in payload:
            result = payload.get("result")
            duration = payload.get("duration_s", fallback_duration)
            pid = payload.get("pid")
            trace_cache = payload.get("trace_cache")
            metrics = payload.get("metrics")
            exit_cause = payload.get("exit_cause")
            rss_peak = payload.get("rss_peak_kb")
        else:
            result, duration, pid, trace_cache, metrics = (
                payload, fallback_duration, None, None, None
            )
        return JobResult(
            spec_hash=spec.spec_hash,
            status="ok",
            spec=spec.to_dict(),
            result=result,
            attempts=attempt,
            duration_s=duration,
            worker_pid=pid,
            trace_cache=trace_cache,
            metrics=metrics,
            exit_cause=exit_cause,
            rss_peak_kb=rss_peak,
        )

    def _failed_result(
        self, spec: JobSpec, error: BaseException, attempt: int
    ) -> JobResult:
        exit_cause = (
            error.exit_cause if isinstance(error, WatchdogError) else EXIT_FAILED
        )
        return JobResult(
            spec_hash=spec.spec_hash,
            status="failed",
            spec=spec.to_dict(),
            error=f"{type(error).__name__}: {error}",
            attempts=attempt,
            exit_cause=exit_cause,
        )

    def _interrupted_result(
        self, spec: JobSpec, error: JobInterrupted, attempt: int
    ) -> JobResult:
        """A job stopped cooperatively mid-simulation (checkpoint kept).

        Never memoized (the store only memoizes ``ok`` records), so a
        resumed run re-executes the job — and the supervised worker then
        restores the flushed checkpoint instead of starting over.
        """
        return JobResult(
            spec_hash=spec.spec_hash,
            status="interrupted",
            spec=spec.to_dict(),
            error=f"{type(error).__name__}: {error}",
            attempts=attempt,
            exit_cause=EXIT_INTERRUPTED,
        )

    def _record(self, result: JobResult, results: Dict[str, JobResult]) -> None:
        if self.store is not None:
            self.store.record(result)
        results[result.spec_hash] = result
        if self.on_result is not None:
            self.on_result(result)
        if result.ok:
            self.stats.executed += 1
            self.reporter.job_done(result)
        elif result.interrupted:
            self.stats.interrupted += 1
            self.reporter.job_interrupted(result)
        else:
            self.stats.failed += 1
            self.reporter.job_failed(result)

    # ------------------------------------------------------------------
    # In-process execution (jobs=1 and the degradation path)
    # ------------------------------------------------------------------
    def _run_inline(
        self,
        items: Iterable[Tuple[JobSpec, int]],
        results: Dict[str, JobResult],
    ) -> None:
        for spec, attempt in items:
            while True:
                start = time.perf_counter()
                try:
                    payload = self.job_fn(spec)
                except JobInterrupted as error:
                    self._record(
                        self._interrupted_result(spec, error, attempt), results
                    )
                    # A cooperative interrupt (SIGINT/SIGTERM) stops the
                    # whole run, not just this job — the installed signal
                    # handler swallowed the KeyboardInterrupt in favour of
                    # flushing a checkpoint first, so restore it here.
                    raise KeyboardInterrupt from error
                except Exception as error:  # noqa: BLE001 — jobs may raise anything
                    if attempt < self._attempt_budget(error):
                        delay = self._backoff(attempt)
                        self.stats.retried += 1
                        self.reporter.job_retry(spec, attempt, delay)
                        time.sleep(delay)
                        attempt += 1
                        continue
                    self._record(self._failed_result(spec, error, attempt), results)
                    break
                self._record(
                    self._ok_result(
                        spec, payload, attempt, time.perf_counter() - start
                    ),
                    results,
                )
                break

    # ------------------------------------------------------------------
    # Pooled execution
    # ------------------------------------------------------------------
    def _new_executor(self, workers: int) -> ProcessPoolExecutor:
        kwargs: Dict[str, Any] = {}
        if self.initializer is not None:
            kwargs["initializer"] = self.initializer
            kwargs["initargs"] = (self.options.trace_cache_capacity,)
        return ProcessPoolExecutor(max_workers=workers, **kwargs)

    @staticmethod
    def _shutdown(executor: ProcessPoolExecutor, kill: bool) -> None:
        try:
            executor.shutdown(wait=not kill, cancel_futures=True)
        except Exception:  # pragma: no cover — best effort
            pass
        if kill:
            processes = getattr(executor, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:  # pragma: no cover — already dead
                    pass
            for process in list(processes.values()):
                try:
                    process.join(timeout=1.0)
                except Exception:  # pragma: no cover
                    pass

    def _attempt_failed(
        self,
        info: _InFlight,
        error: BaseException,
        retry_heap: List[Tuple[float, int, JobSpec, int]],
        results: Dict[str, JobResult],
    ) -> None:
        if isinstance(error, JobInterrupted):
            # The worker flushed a checkpoint and stopped on request
            # (run teardown, Ctrl-C): not a failure and not retryable
            # inside this invocation — the *next* invocation resumes it.
            self._record(
                self._interrupted_result(info.spec, error, info.attempt), results
            )
            return
        if info.attempt < self._attempt_budget(error):
            delay = self._backoff(info.attempt)
            self.stats.retried += 1
            self.reporter.job_retry(info.spec, info.attempt, delay)
            heapq.heappush(
                retry_heap,
                (
                    time.monotonic() + delay,
                    next(self._retry_seq),
                    info.spec,
                    info.attempt + 1,
                ),
            )
        else:
            self._record(self._failed_result(info.spec, error, info.attempt), results)

    def _run_pool(
        self, pending: List[JobSpec], results: Dict[str, JobResult]
    ) -> None:
        opts = self.options
        workers = opts.effective_jobs
        executor: Optional[ProcessPoolExecutor] = self._new_executor(workers)
        restarts = 0
        queue: Deque[Tuple[JobSpec, int]] = deque((spec, 1) for spec in pending)
        retry_heap: List[Tuple[float, int, JobSpec, int]] = []
        inflight: Dict[Future, _InFlight] = {}

        watchdog: Optional[Watchdog] = None
        supervision = self.supervision
        if supervision is not None and supervision.watchdog_active:

            def _inflight_snapshot() -> List[Tuple[str, float, float]]:
                return [
                    (info.spec.spec_hash, info.started_mono, info.started_wall)
                    for info in list(inflight.values())
                ]

            def _on_flag(spec_hash: str, cause: str, detail: str) -> None:
                kind = _WATCHDOG_EVENT_KINDS.get(cause, "watchdog.kill")
                self.reporter.event(f"{kind}: job {spec_hash} {detail}")

            watchdog = Watchdog(
                supervision.run_dir or ".",
                _inflight_snapshot,
                supervision,
                on_flag=_on_flag,
            )
            watchdog.start()

        def remaining_work() -> List[Tuple[JobSpec, int]]:
            """Drain all queued/retrying/in-flight work (for degradation)."""
            items = [(info.spec, info.attempt) for info in inflight.values()]
            inflight.clear()
            items.extend(queue)
            queue.clear()
            while retry_heap:
                _, _, spec, attempt = heapq.heappop(retry_heap)
                items.append((spec, attempt))
            return items

        def restart_pool(kill: bool) -> bool:
            """Recycle the executor; returns True if degraded to in-process."""
            nonlocal executor, restarts
            assert executor is not None
            self._shutdown(executor, kill=kill)
            executor = None
            restarts += 1
            if restarts > opts.max_pool_restarts:
                self.reporter.event(
                    "worker pool kept failing; degrading to in-process execution"
                )
                return True
            self.reporter.event("restarting worker pool")
            executor = self._new_executor(workers)
            return False

        try:
            while queue or retry_heap or inflight:
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    _, _, spec, attempt = heapq.heappop(retry_heap)
                    queue.append((spec, attempt))

                # Keep exactly `workers` jobs in flight so per-job deadlines
                # measure running time, not queueing time.
                while queue and len(inflight) < workers and executor is not None:
                    spec, attempt = queue.popleft()
                    try:
                        future = executor.submit(self.job_fn, spec)
                    except (BrokenProcessPool, RuntimeError) as error:
                        queue.appendleft((spec, attempt))
                        for item in remaining_work():
                            queue.append(item)
                        if restart_pool(kill=True):
                            self._run_inline(remaining_work(), results)
                            return
                        self.reporter.event(f"submit failed, pool restarted: {error}")
                        break
                    inflight[future] = _InFlight(
                        spec,
                        attempt,
                        now + opts.timeout_s if opts.timeout_s is not None else None,
                        started_mono=time.monotonic(),
                        started_wall=time.time(),
                    )

                if not inflight:
                    if retry_heap and not queue:
                        time.sleep(
                            min(0.05, max(0.0, retry_heap[0][0] - time.monotonic()))
                        )
                    continue

                wait_timeout = 0.5
                deadlines = [
                    info.deadline
                    for info in inflight.values()
                    if info.deadline is not None
                ]
                if deadlines:
                    wait_timeout = min(wait_timeout, max(0.01, min(deadlines) - now))
                if retry_heap:
                    wait_timeout = min(
                        wait_timeout, max(0.01, retry_heap[0][0] - now)
                    )
                done, _ = wait(
                    list(inflight), timeout=wait_timeout, return_when=FIRST_COMPLETED
                )

                pool_broken = False
                for future in done:
                    info = inflight.pop(future)
                    try:
                        payload = future.result()
                    except BrokenProcessPool as error:
                        pool_broken = True
                        self._attempt_failed(info, error, retry_heap, results)
                    except Exception as error:  # noqa: BLE001
                        self._attempt_failed(info, error, retry_heap, results)
                    else:
                        self._record(
                            self._ok_result(info.spec, payload, info.attempt, 0.0),
                            results,
                        )

                if pool_broken:
                    for spec, attempt in remaining_work():
                        queue.append((spec, attempt))
                    if restart_pool(kill=True):
                        self._run_inline(remaining_work(), results)
                        return
                    continue

                now = time.monotonic()
                expired = [
                    (future, info)
                    for future, info in inflight.items()
                    if info.deadline is not None and now >= info.deadline
                ]
                if expired:
                    for future, info in expired:
                        del inflight[future]
                        future.cancel()
                        self._attempt_failed(
                            info,
                            JobTimeoutError(
                                f"job {info.spec.spec_hash} ({info.spec.label}) "
                                f"timed out after {opts.timeout_s}s"
                            ),
                            retry_heap,
                            results,
                        )
                    # The hung workers are still burning CPU: recycle the
                    # pool to actually kill them, re-queueing the innocent
                    # in-flight jobs at their current attempt.
                    for spec, attempt in remaining_work():
                        queue.append((spec, attempt))
                    if queue or retry_heap:
                        if restart_pool(kill=True):
                            self._run_inline(remaining_work(), results)
                            return
                    else:
                        self._shutdown(executor, kill=True)
                        executor = None
                    continue

                if watchdog is None or not inflight:
                    continue
                flags = watchdog.take_flags()
                flagged = [
                    (future, info)
                    for future, info in inflight.items()
                    if info.spec.spec_hash in flags
                ]
                if flagged:
                    for future, info in flagged:
                        del inflight[future]
                        future.cancel()
                        cause = flags[info.spec.spec_hash]
                        self._attempt_failed(
                            info,
                            WatchdogError(
                                f"job {info.spec.spec_hash} ({info.spec.label}) "
                                f"killed by watchdog ({cause})",
                                cause=cause,
                            ),
                            retry_heap,
                            results,
                        )
                    # Like the timeout path: recycling the pool is the
                    # only way to actually kill a wedged worker.  The
                    # requeued job resumes from its last checkpoint.
                    for spec, attempt in remaining_work():
                        queue.append((spec, attempt))
                    if queue or retry_heap:
                        if restart_pool(kill=True):
                            self._run_inline(remaining_work(), results)
                            return
                    else:
                        self._shutdown(executor, kill=True)
                        executor = None
        finally:
            if watchdog is not None:
                watchdog.stop()
            if executor is not None:
                self._shutdown(executor, kill=bool(inflight))
