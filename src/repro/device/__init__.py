"""Device-side models: packets, ring buffers, and the DevTLB."""

from repro.device.devtlb import build_devtlb
from repro.device.nic import NicDevice, PacketReport, RequestReport
from repro.device.packet import (
    REQUESTS_PER_PACKET,
    Packet,
    PacketStats,
    RequestKind,
    TranslationRequest,
)
from repro.device.ring import DescriptorRing, RingLayout, make_default_layout

__all__ = [
    "build_devtlb",
    "NicDevice",
    "PacketReport",
    "RequestReport",
    "Packet",
    "PacketStats",
    "RequestKind",
    "TranslationRequest",
    "REQUESTS_PER_PACKET",
    "DescriptorRing",
    "RingLayout",
    "make_default_layout",
]
