"""Tenant ring buffers as seen by the device.

A tenant's driver posts receive descriptors (gIOVAs of data buffers) into a
ring buffer whose own gIOVA the device also translates for every packet.
The model tracks the descriptor ring's occupancy and produces, per packet,
the triple of gIOVAs (ring pointer, data buffer, mailbox) the device must
translate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class RingLayout:
    """Fixed gIOVA layout of a tenant's device structures.

    The addresses mirror the paper's single-tenant characterisation
    (Section IV-D): the ring page lives at a fixed low address
    (``0x34800000`` in the observed trace), the mailbox page is a second
    fixed page, and data buffers cycle through a window of 2 MB pages.
    """

    ring_page_giova: int
    mailbox_page_giova: int
    data_page_giovas: Tuple[int, ...]

    def __post_init__(self):
        if not self.data_page_giovas:
            raise ValueError("a ring layout needs at least one data page")


class DescriptorRing:
    """Cycles descriptors through the tenant's data-buffer pages.

    ``uses_per_page`` reproduces the periodic pattern of Figure 8b: each
    2 MB data page is used for ~1500 consecutive packets before the driver
    moves to the next page (and eventually wraps).
    """

    def __init__(self, layout: RingLayout, uses_per_page: int = 1500,
                 descriptors_per_slot: int = 2):
        if uses_per_page < 1:
            raise ValueError("uses_per_page must be >= 1")
        self.layout = layout
        self.uses_per_page = uses_per_page
        self._descriptors_per_slot = descriptors_per_slot
        self._page_cursor = 0
        self._uses_on_page = 0
        self._slot = 0

    @property
    def current_data_page(self) -> int:
        """gIOVA page base the next descriptor points into."""
        return self.layout.data_page_giovas[self._page_cursor]

    def next_packet_giovas(self) -> Tuple[int, int, int]:
        """Return (ring, data, mailbox) gIOVAs for the next packet."""
        data_page = self.current_data_page
        # Alternate descriptors inside the first 4 KB of the data page so
        # accesses are not all to byte zero while still mapping onto a single
        # translation-cache key per data page (caches key on 4 KB page
        # numbers; the 2 MB-ness of the mapping shows up in walk length).
        offset = (self._uses_on_page % self._descriptors_per_slot) * 2048
        ring_giova = self.layout.ring_page_giova + (self._slot % 512) * 8
        self._slot += 1
        self._advance()
        return (ring_giova, data_page + offset, self.layout.mailbox_page_giova)

    def _advance(self) -> None:
        self._uses_on_page += 1
        if self._uses_on_page >= self.uses_per_page:
            self._uses_on_page = 0
            self._page_cursor = (self._page_cursor + 1) % len(
                self.layout.data_page_giovas
            )

    def jump_to_page(self, index: int) -> None:
        """Force the ring onto data page ``index`` (irregular workloads)."""
        if not 0 <= index < len(self.layout.data_page_giovas):
            raise ValueError(f"page index {index} out of range")
        self._page_cursor = index
        self._uses_on_page = 0

    def pages(self) -> Iterator[int]:
        """All data pages in ring order."""
        return iter(self.layout.data_page_giovas)


def make_default_layout(num_data_pages: int,
                        ring_page_giova: int = 0x3480_0000,
                        mailbox_page_giova: int = 0x3500_0000,
                        data_window_base: int = 0xBBE0_0000) -> RingLayout:
    """Build the gIOVA layout observed in the paper's traces.

    All tenants receive the *same* layout — the multi-tenant observation in
    Section IV-D is that identical guest OS + driver versions allocate
    identical gIOVAs, which is what makes un-partitioned TLBs thrash.
    """
    if num_data_pages < 1:
        raise ValueError("num_data_pages must be >= 1")
    data_pages: List[int] = [
        data_window_base + index * (2 * 1024 * 1024) for index in range(num_data_pages)
    ]
    return RingLayout(
        ring_page_giova=ring_page_giova,
        mailbox_page_giova=mailbox_page_giova,
        data_page_giovas=tuple(data_pages),
    )
