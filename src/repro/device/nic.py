"""A self-contained NIC device model with a step-by-step API.

The performance model in :mod:`repro.sim` drives the translation path
directly for speed.  :class:`NicDevice` wraps the same structures behind
the interface a device actually has — ``receive(packet, now)`` — so the
library can also be used interactively: feed packets one at a time and
inspect exactly what each translation did (Figure 3's steps, with
latencies).

This is the recommended entry point for experimenting with the
architecture outside of full trace replays::

    from repro.core import hypertrio_config
    from repro.device.nic import NicDevice
    from repro.trace import construct_trace

    trace = construct_trace(...)
    nic = NicDevice(hypertrio_config(), trace.system)
    report = nic.receive(trace.packets[0], now=0.0)
    for step in report.requests:
        print(step.describe())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import ArchConfig
from repro.device.packet import REQUESTS_PER_PACKET, RequestKind
from repro.trace.records import PacketRecord
from repro.trace.workload import HyperTenantSystem


@dataclass(frozen=True)
class RequestReport:
    """What happened to one translation request."""

    kind: RequestKind
    giova: int
    hpa: Optional[int]
    source: str  # "devtlb" | "prefetch-buffer" | "iommu"
    latency_ns: float
    completed_at: float

    def describe(self) -> str:
        return (
            f"{self.kind.value:8s} gIOVA {self.giova:#012x} -> "
            f"hPA {self.hpa:#012x} via {self.source:15s} "
            f"({self.latency_ns:7.1f} ns)"
        )


@dataclass(frozen=True)
class PacketReport:
    """Outcome of offering one packet to the device."""

    accepted: bool
    requests: Tuple[RequestReport, ...]
    completed_at: float

    @property
    def translation_latency_ns(self) -> float:
        if not self.requests:
            return 0.0
        return max(request.latency_ns for request in self.requests)


class NicDevice:
    """One shared device (DevTLB + PTB + optional PU) plus its chipset."""

    def __init__(self, config: ArchConfig, system: HyperTenantSystem):
        # Imported here: repro.core.hypertrio builds DevTLBs via
        # repro.device, so a module-level import would be circular.
        from repro.core.hypertrio import build_translation_path

        self.config = config
        self.system = system
        self.path = build_translation_path(
            config, walker_for_sid=system.walker_for, sids=system.sids()
        )
        self.packets_offered = 0
        self.packets_dropped = 0

    # ------------------------------------------------------------------
    def receive(self, packet: PacketRecord, now: float) -> PacketReport:
        """Offer one packet at time ``now``; translate or drop it."""
        self.packets_offered += 1
        ptb = self.path.ptb
        if not ptb.can_accept(now):
            ptb.reject_packet()
            self.packets_dropped += 1
            return PacketReport(accepted=False, requests=(), completed_at=now)
        reports: List[RequestReport] = []
        completed = now
        for giova, kind in zip(packet.giovas, REQUESTS_PER_PACKET):
            report = self._translate(now, packet.sid, giova, kind)
            reports.append(report)
            completed = max(completed, report.completed_at)
        return PacketReport(
            accepted=True, requests=tuple(reports), completed_at=completed
        )

    def _translate(
        self, now: float, sid: int, giova: int, kind: RequestKind
    ) -> RequestReport:
        timing = self.config.timing
        path = self.path
        page = giova >> 12
        key = (sid, page)
        latency = timing.iotlb_hit_ns
        source = "devtlb"
        hpa = None
        cached = path.devtlb.lookup(key)
        if cached is not None:
            hpa = cached[0]
        elif path.prefetch_unit is not None and (
            pb_entry := path.prefetch_unit.lookup(sid, page)
        ):
            source = "prefetch-buffer"
            hpa = pb_entry[0]
        else:
            source = "iommu"
            outcome = path.iommu.translate(sid, giova)
            latency += 2 * timing.pcie_one_way_ns + outcome.latency_ns
            path.devtlb.insert(key, (outcome.hpa, outcome.page_shift, False))
            hpa = outcome.hpa
        completed = path.ptb.issue(now, latency)
        return RequestReport(
            kind=kind,
            giova=giova,
            hpa=hpa,
            source=source,
            latency_ns=latency,
            completed_at=completed,
        )

    # ------------------------------------------------------------------
    def invalidate(self, sid: int, giova: int) -> bool:
        """Drop a cached translation (ATS invalidation from the host)."""
        key = (sid, giova >> 12)
        present = self.path.devtlb.invalidate(key)
        self.path.iommu.iotlb.invalidate(key)
        if self.path.prefetch_unit is not None:
            self.path.prefetch_unit.buffer.invalidate(key)
        return present

    @property
    def drop_rate(self) -> float:
        if not self.packets_offered:
            return 0.0
        return self.packets_dropped / self.packets_offered
