"""Packets and the translation requests they trigger.

Each packet accepted from the I/O link generates three gIOVA translation
requests (Section IV-C of the paper): the ring-buffer pointer, the data
buffer, and the interrupt-mailbox notification address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Tuple


class RequestKind(Enum):
    """Which of a packet's three translations a request represents."""

    RING_POINTER = "ring"
    DATA_BUFFER = "data"
    MAILBOX = "mailbox"


#: The per-packet request kinds, in issue order.
REQUESTS_PER_PACKET: Tuple[RequestKind, ...] = (
    RequestKind.RING_POINTER,
    RequestKind.DATA_BUFFER,
    RequestKind.MAILBOX,
)


@dataclass(frozen=True)
class TranslationRequest:
    """One gIOVA translation demanded by a packet."""

    sid: int
    giova: int
    kind: RequestKind

    @property
    def key(self) -> Tuple[int, int]:
        """DevTLB/IOTLB lookup key: ``(sid, giova_page)`` for 4 KB pages."""
        return (self.sid, self.giova >> 12)


@dataclass(frozen=True)
class Packet:
    """A packet arriving on the I/O link for tenant ``sid``.

    ``giovas`` are the three addresses the device must translate, ordered as
    :data:`REQUESTS_PER_PACKET`; ``size_bytes`` includes Ethernet framing
    plus inter-packet gap (1542 B in Table II).
    """

    sid: int
    giovas: Tuple[int, int, int]
    size_bytes: int = 1542
    sequence: int = 0

    def requests(self) -> Tuple[TranslationRequest, ...]:
        """The translation requests this packet generates, in order."""
        return tuple(
            TranslationRequest(sid=self.sid, giova=giova, kind=kind)
            for giova, kind in zip(self.giovas, REQUESTS_PER_PACKET)
        )


#: Drop causes recorded by the engines.  ``ptb_overflow`` is the paper's
#: drop-and-retry admission failure; ``translation_fault`` and
#: ``device_reset`` exist only under fault injection (:mod:`repro.faults`).
DROP_CAUSES = ("ptb_overflow", "translation_fault", "device_reset")


@dataclass
class PacketStats:
    """Device-level packet accounting."""

    arrived: int = 0
    accepted: int = 0
    dropped: int = 0
    retried: int = 0
    bytes_processed: int = 0
    per_tenant_processed: dict = field(default_factory=dict)
    #: Per-cause drop breakdown; always sums to ``dropped``.
    drop_causes: dict = field(default_factory=dict)

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.arrived if self.arrived else 0.0

    def record_drop(self, cause: str) -> None:
        """Count one dropped packet under ``cause``."""
        self.dropped += 1
        self.drop_causes[cause] = self.drop_causes.get(cause, 0) + 1

    def record_processed(self, packet: Packet) -> None:
        self.bytes_processed += packet.size_bytes
        self.per_tenant_processed[packet.sid] = (
            self.per_tenant_processed.get(packet.sid, 0) + 1
        )
