"""The Device TLB (DevTLB): on-device cache of gIOVA -> hPA translations.

Step 3 of the paper's Figure 3.  A hit returns the hPA at device speed
(2 ns); a miss forces the request over PCIe to the IOMMU.  HyperTRIO's
*Partitioned* DevTLB (Section III) tags rows with partition tags derived
from the SID so independent tenants cannot evict each other's translations.

:func:`build_devtlb` is the single construction point used by configs,
sweeps, and tests; it returns either a plain set-associative cache, a
partitioned cache, or a fully associative one (Figure 11c).
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

from repro.cache.base import TranslationCache
from repro.cache.partitioned import PartitionedCache
from repro.cache.setassoc import FullyAssociativeCache, SetAssociativeCache


def build_devtlb(
    num_entries: int,
    ways: int,
    num_partitions: int = 1,
    policy: str = "lfu",
    fully_associative: bool = False,
    name: str = "devtlb",
    next_use: Optional[Callable[[Hashable], Optional[float]]] = None,
) -> TranslationCache:
    """Construct a DevTLB variant.

    Parameters mirror Table IV: the Base design is a 64-entry, 8-way, LFU,
    single-partition cache; HyperTRIO uses 8 partitions.  Keys everywhere
    are ``(sid, giova_page)``.

    ``fully_associative`` overrides ``ways``/``num_partitions`` and builds
    the idealised structure of Figure 11c (usually paired with
    ``policy="oracle"`` and a ``next_use`` oracle).
    """
    if fully_associative:
        return FullyAssociativeCache(
            num_entries=num_entries, policy=policy, name=name, next_use=next_use
        )
    if num_partitions > 1:
        return PartitionedCache(
            num_entries=num_entries,
            ways=ways,
            num_partitions=num_partitions,
            policy=policy,
            name=name,
            next_use=next_use,
        )
    return SetAssociativeCache(
        num_entries=num_entries, ways=ways, policy=policy, name=name,
        next_use=next_use,
    )
