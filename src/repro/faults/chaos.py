"""Test-only chaos hooks for the parallel runner.

These helpers exist so ``tests/test_chaos.py`` (and the CI ``chaos``
job) can exercise the runner's resilience guarantees for real — workers
that die mid-job, and a result store whose JSONL file was torn or
corrupted mid-line — without monkeypatching scheduler internals.

:func:`kill_worker_once` is a picklable job function: the first attempt
of each spec hard-kills its worker process (``os._exit``), later
attempts succeed.  Which specs have already been killed is tracked by
marker files under the directory named by the ``REPRO_CHAOS_DIR``
environment variable (inherited by pool workers), keyed by spec hash so
the behaviour is per-job, not per-process.

The file-corruption helpers produce the two real-world failure shapes a
crash-interrupted append-only store exhibits: a torn final line (the
process died mid-``write``) and garbage bytes inside the file (torn
page, disk error, concurrent writer).

The queue hooks attack the distributed experiment queue the same way:
:func:`kill_claimer_once` SIGKILLs a queue worker *after* it claimed a
job (the takeover scenario), :func:`steal_lease` force-expires a live
claim so reclamation triggers without waiting out the lease, and
:func:`corrupt_queue_db` tears the SQLite file itself (the
fails-loudly-with-rebuild-hint scenario).
"""

from __future__ import annotations

import multiprocessing
import os
from pathlib import Path

#: Environment variable naming the marker directory for chaos jobs.
CHAOS_DIR_ENV = "REPRO_CHAOS_DIR"

#: Exit code used for chaos-killed workers (mirrors SIGKILL's 128+9).
CHAOS_EXIT_CODE = 137


class ChaosConfigError(RuntimeError):
    """A chaos hook was invoked without its required environment."""


def kill_worker_once(spec) -> dict:
    """Job fn that kills its worker on each spec's first attempt.

    Later attempts return an ``ok_job``-style payload.  Refuses to kill
    the orchestrating process itself: if invoked in-process (no parent
    process, e.g. after the runner degraded from a broken pool) it
    raises instead of exiting, so a mis-scheduled chaos job can never
    take the test runner down.
    """
    directory = os.environ.get(CHAOS_DIR_ENV)
    if not directory:
        raise ChaosConfigError(
            f"chaos jobs need {CHAOS_DIR_ENV} to point at a marker directory"
        )
    marker = Path(directory) / f"killed-{spec.spec_hash}"
    if not marker.exists():
        marker.write_text("killed once\n", encoding="utf-8")
        if multiprocessing.parent_process() is None:
            raise ChaosConfigError(
                "kill_worker_once invoked in the orchestrating process; "
                "refusing to os._exit it"
            )
        os._exit(CHAOS_EXIT_CODE)
    return {
        "result": {"seed": spec.seed, "benchmark": spec.benchmark},
        "duration_s": 0.0,
        "pid": os.getpid(),
    }


# ----------------------------------------------------------------------
# Result-store file corruption
# ----------------------------------------------------------------------

def truncate_last_line(path: Path) -> int:
    """Tear the file's final line mid-way (crash during append).

    Cuts the last non-empty line roughly in half and drops the trailing
    newline.  Returns the number of bytes removed.
    """
    path = Path(path)
    data = path.read_bytes()
    stripped = data.rstrip(b"\n")
    if not stripped:
        return 0
    start_of_last = stripped.rfind(b"\n") + 1
    line_length = len(stripped) - start_of_last
    cut = start_of_last + max(1, line_length // 2)
    path.write_bytes(data[:cut])
    return len(data) - cut


def insert_garbage_line(
    path: Path,
    after_line: int = 1,
    garbage: bytes = b"\x00\xfe\xffgarbage{not-json",
) -> None:
    """Splice a line of non-JSON (and non-UTF-8) bytes into the file.

    ``after_line`` counts complete existing lines; the garbage gets its
    own line so surrounding records stay intact — the mid-file
    corruption shape, as opposed to the torn tail.
    """
    path = Path(path)
    lines = path.read_bytes().split(b"\n")
    position = min(max(after_line, 0), len(lines))
    lines.insert(position, garbage)
    path.write_bytes(b"\n".join(lines))


# ----------------------------------------------------------------------
# Experiment-queue chaos
# ----------------------------------------------------------------------

def kill_claimer_once(spec) -> dict:
    """Job fn that SIGKILLs the worker holding a *claimed* queue job.

    Identical contract to :func:`kill_worker_once` — one kill per spec,
    tracked by marker files under ``REPRO_CHAOS_DIR`` — but the name
    marks the scenario: by the time the job function runs, the queue row
    is ``claimed`` with a live lease, so the death leaves a dangling
    claim that only lease expiry + takeover can recover.
    """
    return kill_worker_once(spec)


def steal_lease(queue, spec_hash: str) -> bool:
    """Force-expire a live claim so the next claimer takes it over.

    Rewrites ``lease_expires_at`` to the epoch for a ``claimed`` row —
    what a partitioned or SIGKILLed host's claim looks like once its
    lease runs out, without waiting out real time.  Returns True if a
    claim was expired.
    """
    with queue._lock:
        queue._conn.execute("BEGIN IMMEDIATE")
        cursor = queue._conn.execute(
            "UPDATE jobs SET lease_expires_at = 0.0"
            " WHERE spec_hash = ? AND status = 'claimed'",
            (spec_hash,),
        )
        queue._conn.execute("COMMIT")
    return cursor.rowcount == 1


def corrupt_queue_db(path: Path) -> None:
    """Overwrite the SQLite header so the file is no longer a database.

    The queue must refuse it loudly (``QueueCorruptError`` carrying the
    rebuild recipe), never limp along or traceback.
    """
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(b"\x00garbage-not-a-sqlite-file\xff" + data[32:])
