"""The fault model: what can go wrong, when, and how often.

A :class:`FaultPlan` is a pure-data description of the faults one run
should experience, JSON-round-trippable in the same strict style as
:mod:`repro.core.config_io` (unknown keys fail loudly).  Plans are part
of a run's identity: the parallel runner hashes them into
:class:`~repro.runner.spec.JobSpec`, so a faulted sweep point and its
fault-free twin never share a cache entry.

Fault classes (all optional, all combinable):

* :class:`TranslationFaultSpec` — the IOMMU walker returns not-present
  for a gIOVA with some probability, optionally restricted to one SID
  and/or a time window.  The device retries with capped exponential
  backoff (``TimingParams.fault_max_retries`` / ``fault_backoff_ns``);
  exhausted retries drop the packet with cause ``translation_fault``.
* :class:`InvalidationStormSpec` — a burst unmap for one tenant at time
  T: every cached translation for the SID is flushed everywhere (DevTLB,
  prefetch buffer, in-flight prefetches, chipset IOTLB / nested TLB /
  PTE cache, IOVA history).
* :class:`DeviceResetSpec` — one device path resets mid-run: its DevTLB,
  prefetch pipeline, and PTB are flushed and the packet arriving at the
  reset instant is dropped with cause ``device_reset``.
* :class:`LatencySpikeSpec` — transient extra latency on DRAM accesses
  or PCIe crossings inside a time window.
* :class:`PtbLeakSpec` — PTB entries temporarily leak: the buffer's
  effective capacity shrinks inside a window, surfacing as extra
  ``ptb_overflow`` drops.

Stochastic choices come from a single ``random.Random(plan.seed)`` owned
by the :class:`~repro.faults.injector.FaultInjector`, so a seeded plan
replays bit-identically; a plan whose stochastic faults all have
probability 0 consumes no randomness at all and is bit-identical to a
no-plan run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple


class FaultPlanFormatError(ValueError):
    """Raised when a fault-plan document does not parse or validate."""


def _check_keys(raw: Dict[str, Any], allowed, context: str) -> None:
    unknown = set(raw) - set(allowed)
    if unknown:
        raise FaultPlanFormatError(
            f"{context}: unknown keys {sorted(unknown)}; allowed: "
            f"{sorted(allowed)}"
        )


@dataclass(frozen=True)
class TranslationFaultSpec:
    """Stochastic walker not-present faults.

    ``sid=None`` faults every tenant; ``end_ns=None`` leaves the window
    open-ended.  Each IOMMU attempt (first try and every retry) rolls
    independently.
    """

    probability: float
    sid: Optional[int] = None
    start_ns: float = 0.0
    end_ns: Optional[float] = None

    def __post_init__(self):
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"translation-fault probability must be in [0, 1], got "
                f"{self.probability}"
            )
        if self.end_ns is not None and self.end_ns <= self.start_ns:
            raise ValueError("translation-fault window must have end_ns > start_ns")


@dataclass(frozen=True)
class InvalidationStormSpec:
    """Burst unmap of every cached translation of tenant ``sid`` at ``at_ns``."""

    sid: int
    at_ns: float

    def __post_init__(self):
        if self.at_ns < 0:
            raise ValueError("storm at_ns must be non-negative")


@dataclass(frozen=True)
class DeviceResetSpec:
    """Mid-run reset of one device path's translation state at ``at_ns``."""

    device_id: int
    at_ns: float

    def __post_init__(self):
        if self.device_id < 0:
            raise ValueError("device_id must be non-negative")
        if self.at_ns < 0:
            raise ValueError("reset at_ns must be non-negative")


#: Latency-spike targets: extra per-DRAM-access or per-PCIe-crossing ns.
SPIKE_TARGETS = ("dram", "pcie")


@dataclass(frozen=True)
class LatencySpikeSpec:
    """Transient extra latency inside ``[start_ns, end_ns)``.

    ``target="pcie"`` adds ``extra_ns`` per PCIe crossing of a demand
    miss; ``target="dram"`` adds ``extra_ns`` per DRAM access the walk
    performed.  Charged to the affected requests only (shared structures
    keep their nominal timing).
    """

    target: str
    start_ns: float
    end_ns: float
    extra_ns: float

    def __post_init__(self):
        if self.target not in SPIKE_TARGETS:
            raise ValueError(
                f"spike target must be one of {SPIKE_TARGETS}, got {self.target!r}"
            )
        if self.end_ns <= self.start_ns:
            raise ValueError("latency spike must have end_ns > start_ns")
        if self.extra_ns < 0:
            raise ValueError("spike extra_ns must be non-negative")


@dataclass(frozen=True)
class PtbLeakSpec:
    """``entries`` PTB entries leak (unusable) inside ``[start_ns, end_ns)``.

    ``device_id=None`` leaks on every device.  The effective capacity
    never drops below one entry, so forward progress is preserved.
    """

    entries: int
    start_ns: float
    end_ns: float
    device_id: Optional[int] = None

    def __post_init__(self):
        if self.entries < 1:
            raise ValueError("leaked entries must be >= 1")
        if self.end_ns <= self.start_ns:
            raise ValueError("PTB leak must have end_ns > start_ns")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seedable fault schedule for one simulation run."""

    seed: int = 0
    translation_faults: Tuple[TranslationFaultSpec, ...] = ()
    invalidation_storms: Tuple[InvalidationStormSpec, ...] = ()
    device_resets: Tuple[DeviceResetSpec, ...] = ()
    latency_spikes: Tuple[LatencySpikeSpec, ...] = ()
    ptb_leaks: Tuple[PtbLeakSpec, ...] = field(default=())

    @property
    def is_null(self) -> bool:
        """Whether this plan can never perturb a run."""
        return (
            all(spec.probability == 0.0 for spec in self.translation_faults)
            and not self.invalidation_storms
            and not self.device_resets
            and not self.latency_spikes
            and not self.ptb_leaks
        )


# ----------------------------------------------------------------------
# JSON round trip (strict, config_io style)
# ----------------------------------------------------------------------

def plan_to_dict(plan: FaultPlan) -> Dict[str, Any]:
    """Serialise ``plan`` to plain JSON-compatible data.

    Empty fault lists are omitted, so minimal plans stay minimal (and
    hash minimally when embedded in a :class:`~repro.runner.spec.JobSpec`).
    """
    document: Dict[str, Any] = {"seed": plan.seed}
    if plan.translation_faults:
        document["translation_faults"] = [
            {
                "probability": spec.probability,
                **({"sid": spec.sid} if spec.sid is not None else {}),
                **({"start_ns": spec.start_ns} if spec.start_ns else {}),
                **({"end_ns": spec.end_ns} if spec.end_ns is not None else {}),
            }
            for spec in plan.translation_faults
        ]
    if plan.invalidation_storms:
        document["invalidation_storms"] = [
            {"sid": spec.sid, "at_ns": spec.at_ns}
            for spec in plan.invalidation_storms
        ]
    if plan.device_resets:
        document["device_resets"] = [
            {"device_id": spec.device_id, "at_ns": spec.at_ns}
            for spec in plan.device_resets
        ]
    if plan.latency_spikes:
        document["latency_spikes"] = [
            {
                "target": spec.target,
                "start_ns": spec.start_ns,
                "end_ns": spec.end_ns,
                "extra_ns": spec.extra_ns,
            }
            for spec in plan.latency_spikes
        ]
    if plan.ptb_leaks:
        document["ptb_leaks"] = [
            {
                "entries": spec.entries,
                "start_ns": spec.start_ns,
                "end_ns": spec.end_ns,
                **(
                    {"device_id": spec.device_id}
                    if spec.device_id is not None
                    else {}
                ),
            }
            for spec in plan.ptb_leaks
        ]
    return document


def _parse_specs(raw: Any, cls, allowed, context: str) -> Tuple:
    if not isinstance(raw, list):
        raise FaultPlanFormatError(f"{context}: expected a list")
    specs = []
    for index, entry in enumerate(raw):
        entry_context = f"{context}[{index}]"
        if not isinstance(entry, dict):
            raise FaultPlanFormatError(f"{entry_context}: expected an object")
        _check_keys(entry, allowed, entry_context)
        try:
            specs.append(cls(**entry))
        except (TypeError, ValueError) as error:
            raise FaultPlanFormatError(f"{entry_context}: {error}") from None
    return tuple(specs)


def plan_from_dict(raw: Dict[str, Any]) -> FaultPlan:
    """Parse a :class:`FaultPlan` from plain data (strict)."""
    _check_keys(
        raw,
        (
            "seed", "translation_faults", "invalidation_storms",
            "device_resets", "latency_spikes", "ptb_leaks",
        ),
        "fault plan",
    )
    return FaultPlan(
        seed=raw.get("seed", 0),
        translation_faults=_parse_specs(
            raw.get("translation_faults", []),
            TranslationFaultSpec,
            ("probability", "sid", "start_ns", "end_ns"),
            "translation_faults",
        ),
        invalidation_storms=_parse_specs(
            raw.get("invalidation_storms", []),
            InvalidationStormSpec,
            ("sid", "at_ns"),
            "invalidation_storms",
        ),
        device_resets=_parse_specs(
            raw.get("device_resets", []),
            DeviceResetSpec,
            ("device_id", "at_ns"),
            "device_resets",
        ),
        latency_spikes=_parse_specs(
            raw.get("latency_spikes", []),
            LatencySpikeSpec,
            ("target", "start_ns", "end_ns", "extra_ns"),
            "latency_spikes",
        ),
        ptb_leaks=_parse_specs(
            raw.get("ptb_leaks", []),
            PtbLeakSpec,
            ("entries", "start_ns", "end_ns", "device_id"),
            "ptb_leaks",
        ),
    )


def plan_to_json(plan: FaultPlan, indent: int = 2) -> str:
    """Serialise ``plan`` to a JSON string."""
    return json.dumps(plan_to_dict(plan), indent=indent)


def plan_from_json(text: str) -> FaultPlan:
    """Parse a JSON string into a :class:`FaultPlan`."""
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as error:
        raise FaultPlanFormatError(f"invalid JSON: {error}") from None
    if not isinstance(raw, dict):
        raise FaultPlanFormatError("fault plan document must be a JSON object")
    return plan_from_dict(raw)


def save_plan(plan: FaultPlan, path: Path) -> Path:
    """Write ``plan`` to ``path`` as JSON; returns the path written."""
    path = Path(path)
    path.write_text(plan_to_json(plan) + "\n", encoding="utf-8")
    return path


def load_plan(path: Path) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file."""
    return plan_from_json(Path(path).read_text(encoding="utf-8"))
