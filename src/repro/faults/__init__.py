"""Deterministic fault injection for the translation fabric.

The paper's hyper-tenant setting is motivated by worst-case behaviour —
PTB overflow, invalidation-heavy tenants, cross-tenant interference — so
the reproduction must stay trustworthy *under* adversity, not only on the
happy path.  This package provides:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a JSON-round-trippable
  description of scheduled and stochastic faults (translation faults,
  invalidation storms, device resets, latency spikes, PTB entry leaks);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the seeded
  runtime that applies a plan bit-reproducibly; with no plan the
  simulator carries no injector at all (the zero-cost-when-disabled
  pattern shared with :mod:`repro.obs`);
* :mod:`repro.faults.chaos` — test-only chaos hooks for the parallel
  runner (worker kills, result-store file corruption);
* :mod:`repro.faults.netchaos` — :class:`NetworkFaultPlan` plus the
  in-process :class:`ChaosProxy` that injects wire-level faults
  (drops, mid-frame cuts, corruption, stalls, split/coalesced writes,
  reconnect storms) between the service client and server.

See ``docs/RESILIENCE.md`` for the fault model and degraded-mode
semantics.
"""

from repro.faults.injector import FaultInjector
from repro.faults.netchaos import (
    ChaosProxy,
    CoalesceSpec,
    CorruptSpec,
    CutSpec,
    DropSpec,
    NetworkFaultPlan,
    ReconnectStormSpec,
    SplitSpec,
    StallSpec,
    load_netplan,
    netplan_from_dict,
    netplan_from_json,
    netplan_to_dict,
    netplan_to_json,
    save_netplan,
)
from repro.faults.plan import (
    DeviceResetSpec,
    FaultPlan,
    FaultPlanFormatError,
    InvalidationStormSpec,
    LatencySpikeSpec,
    PtbLeakSpec,
    TranslationFaultSpec,
    load_plan,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
    save_plan,
)

__all__ = [
    "FaultPlan",
    "FaultPlanFormatError",
    "FaultInjector",
    "TranslationFaultSpec",
    "InvalidationStormSpec",
    "DeviceResetSpec",
    "LatencySpikeSpec",
    "PtbLeakSpec",
    "plan_to_dict",
    "plan_from_dict",
    "plan_to_json",
    "plan_from_json",
    "save_plan",
    "load_plan",
    "NetworkFaultPlan",
    "ChaosProxy",
    "DropSpec",
    "CutSpec",
    "CorruptSpec",
    "StallSpec",
    "SplitSpec",
    "CoalesceSpec",
    "ReconnectStormSpec",
    "netplan_to_dict",
    "netplan_from_dict",
    "netplan_to_json",
    "netplan_from_json",
    "save_netplan",
    "load_netplan",
]
