"""Wire-level chaos: a seeded network fault plan and an in-process proxy.

The PR 4 fault subsystem stops at the engine boundary; this module
attacks the *transport* between :class:`~repro.service.client.ServiceClient`
and :class:`~repro.service.server.ServiceServer`.  A
:class:`NetworkFaultPlan` is a pure-data, JSON-round-trippable schedule
(same strict style as :mod:`repro.faults.plan`: unknown keys fail
loudly) of wire faults, and :class:`ChaosProxy` is an asyncio TCP proxy
that sits between client and server and injects them:

* :class:`DropSpec` — clean connection close (FIN) after forwarding a
  number of request frames;
* :class:`CutSpec` — a **mid-frame** cut: forward a prefix of one frame,
  then hard-abort the proxied connection, leaving the peer a torn line;
* :class:`CorruptSpec` — overwrite one byte of one frame with ``0xFF``.
  ``0xFF`` is never valid UTF-8 and never a newline, so framing is
  preserved and :func:`repro.service.protocol.decode` is *guaranteed* to
  fail — corruption always surfaces as a typed decode error, never as a
  silently altered request;
* :class:`StallSpec` — hold one frame for ``delay_s`` before forwarding
  (exercises request deadlines and late-reply draining);
* :class:`SplitSpec` — relay frames in tiny chunks (partial reads);
* :class:`CoalesceSpec` — batch several frames into one write;
* :class:`ReconnectStormSpec` — drop each of the first N connections,
  forcing a storm of reconnect/resend cycles.

Frame indices are 0-based per proxied connection and per direction
(``"request"`` = client→server, ``"response"`` = server→client);
connection indices are 0-based in accept order.  Stochastic choices
(storm jitter) come from one ``random.Random(plan.seed)`` owned by the
proxy, so a seeded plan replays bit-identically.  A null plan forwards
bytes untouched — the proxy keeps per-direction SHA-256 digests of what
it received and what it forwarded, and :meth:`ChaosProxy.transparent`
pins that a fault-free plan leaves the wire byte-stream unchanged.

The service survives every class losslessly because the server keeps
per-session exactly-once, in-order semantics (see
``docs/RESILIENCE.md``): the chaos parity suite replays a trace through
the proxy under each fault class and asserts the final
``SimulationResult`` is byte-identical to offline ``simulate``.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlanFormatError, _check_keys

#: Direction names: request = client→server, response = server→client.
DIRECTIONS = ("request", "response")

#: Relay frame cap — far above any real protocol line; the proxy is a
#: test instrument, not a gatekeeper (the *server* enforces its own
#: ``max_frame_bytes``).
_RELAY_LIMIT = 16 << 20

#: Seconds of source silence after which a coalesce buffer flushes even
#: below its frame target, so a held reply never deadlocks the peer.
_COALESCE_FLUSH_S = 0.05


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def _check_direction(direction: str) -> None:
    _require(
        direction in DIRECTIONS,
        f"direction must be one of {DIRECTIONS}, got {direction!r}",
    )


@dataclass(frozen=True)
class DropSpec:
    """Cleanly close proxied connection ``connection`` after forwarding
    ``after_frames`` request frames (0 = drop before the handshake)."""

    after_frames: int
    connection: int = 0

    def __post_init__(self):
        _require(self.after_frames >= 0, "drop after_frames must be >= 0")
        _require(self.connection >= 0, "drop connection must be >= 0")


@dataclass(frozen=True)
class CutSpec:
    """Mid-frame cut: forward ``cut_bytes`` of frame ``frame`` then abort.

    ``cut_bytes=None`` cuts at half the frame.  The peer observes a torn
    line followed by EOF — exactly what a crashed host looks like on the
    wire.
    """

    frame: int
    direction: str = "request"
    cut_bytes: Optional[int] = None
    connection: int = 0

    def __post_init__(self):
        _require(self.frame >= 0, "cut frame must be >= 0")
        _check_direction(self.direction)
        if self.cut_bytes is not None:
            _require(self.cut_bytes >= 0, "cut_bytes must be >= 0")
        _require(self.connection >= 0, "cut connection must be >= 0")


@dataclass(frozen=True)
class CorruptSpec:
    """Overwrite one byte of frame ``frame`` with ``0xFF`` (guaranteed
    undecodable, framing preserved)."""

    frame: int
    direction: str = "request"
    offset: int = 0
    connection: int = 0

    def __post_init__(self):
        _require(self.frame >= 0, "corrupt frame must be >= 0")
        _check_direction(self.direction)
        _require(self.offset >= 0, "corrupt offset must be >= 0")
        _require(self.connection >= 0, "corrupt connection must be >= 0")


@dataclass(frozen=True)
class StallSpec:
    """Hold frame ``frame`` for ``delay_s`` wall seconds before forwarding."""

    frame: int
    delay_s: float
    direction: str = "request"
    connection: int = 0

    def __post_init__(self):
        _require(self.frame >= 0, "stall frame must be >= 0")
        _require(self.delay_s >= 0, "stall delay_s must be >= 0")
        _check_direction(self.direction)
        _require(self.connection >= 0, "stall connection must be >= 0")


@dataclass(frozen=True)
class SplitSpec:
    """Relay every frame of one direction in ``chunk_bytes`` pieces."""

    chunk_bytes: int
    direction: str = "request"
    connection: int = 0

    def __post_init__(self):
        _require(self.chunk_bytes >= 1, "split chunk_bytes must be >= 1")
        _check_direction(self.direction)
        _require(self.connection >= 0, "split connection must be >= 0")


@dataclass(frozen=True)
class CoalesceSpec:
    """Buffer ``frames`` frames of one direction into single writes."""

    frames: int
    direction: str = "response"
    connection: int = 0

    def __post_init__(self):
        _require(self.frames >= 2, "coalesce frames must be >= 2")
        _check_direction(self.direction)
        _require(self.connection >= 0, "coalesce connection must be >= 0")


@dataclass(frozen=True)
class ReconnectStormSpec:
    """Drop each of the first ``connections`` connections after
    ``after_frames`` (+ seeded jitter up to ``jitter_frames``) request
    frames — a reconnect storm from the server's point of view."""

    connections: int
    after_frames: int = 0
    jitter_frames: int = 0

    def __post_init__(self):
        _require(self.connections >= 1, "storm connections must be >= 1")
        _require(self.after_frames >= 0, "storm after_frames must be >= 0")
        _require(self.jitter_frames >= 0, "storm jitter_frames must be >= 0")


@dataclass(frozen=True)
class NetworkFaultPlan:
    """A complete, seedable wire-fault schedule for one chaos run."""

    seed: int = 0
    drops: Tuple[DropSpec, ...] = ()
    cuts: Tuple[CutSpec, ...] = ()
    corruptions: Tuple[CorruptSpec, ...] = ()
    stalls: Tuple[StallSpec, ...] = ()
    splits: Tuple[SplitSpec, ...] = ()
    coalesces: Tuple[CoalesceSpec, ...] = ()
    reconnect_storms: Tuple[ReconnectStormSpec, ...] = ()

    @property
    def is_null(self) -> bool:
        """Whether this plan can never perturb the wire."""
        return not (
            self.drops
            or self.cuts
            or self.corruptions
            or self.stalls
            or self.splits
            or self.coalesces
            or self.reconnect_storms
        )


# ----------------------------------------------------------------------
# JSON round trip (strict, faults/plan.py style)
# ----------------------------------------------------------------------

_SPEC_FIELDS = (
    ("drops", DropSpec, ("after_frames", "connection")),
    ("cuts", CutSpec, ("frame", "direction", "cut_bytes", "connection")),
    ("corruptions", CorruptSpec, ("frame", "direction", "offset", "connection")),
    ("stalls", StallSpec, ("frame", "delay_s", "direction", "connection")),
    ("splits", SplitSpec, ("chunk_bytes", "direction", "connection")),
    ("coalesces", CoalesceSpec, ("frames", "direction", "connection")),
    (
        "reconnect_storms",
        ReconnectStormSpec,
        ("connections", "after_frames", "jitter_frames"),
    ),
)


def netplan_to_dict(plan: NetworkFaultPlan) -> Dict[str, Any]:
    """Serialise ``plan`` to plain JSON-compatible data (minimal form:
    empty spec lists and default fields are omitted)."""
    document: Dict[str, Any] = {"seed": plan.seed}
    for key, _, fields in _SPEC_FIELDS:
        specs = getattr(plan, key)
        if not specs:
            continue
        entries = []
        for spec in specs:
            entry = {}
            for name in fields:
                value = getattr(spec, name)
                default = type(spec).__dataclass_fields__[name].default
                if value != default:
                    entry[name] = value
            entries.append(entry)
        document[key] = entries
    return document


def _parse_specs(raw: Any, cls, allowed, context: str) -> Tuple:
    if not isinstance(raw, list):
        raise FaultPlanFormatError(f"{context}: expected a list")
    specs = []
    for index, entry in enumerate(raw):
        entry_context = f"{context}[{index}]"
        if not isinstance(entry, dict):
            raise FaultPlanFormatError(f"{entry_context}: expected an object")
        _check_keys(entry, allowed, entry_context)
        try:
            specs.append(cls(**entry))
        except (TypeError, ValueError) as error:
            raise FaultPlanFormatError(f"{entry_context}: {error}") from None
    return tuple(specs)


def netplan_from_dict(raw: Dict[str, Any]) -> NetworkFaultPlan:
    """Parse a :class:`NetworkFaultPlan` from plain data (strict)."""
    if not isinstance(raw, dict):
        raise FaultPlanFormatError("network fault plan must be a JSON object")
    _check_keys(
        raw, ("seed",) + tuple(key for key, _, _ in _SPEC_FIELDS),
        "network fault plan",
    )
    seed = raw.get("seed", 0)
    if not isinstance(seed, int):
        raise FaultPlanFormatError("network fault plan 'seed' must be an integer")
    kwargs: Dict[str, Any] = {"seed": seed}
    for key, cls, fields in _SPEC_FIELDS:
        kwargs[key] = _parse_specs(raw.get(key, []), cls, fields, key)
    return NetworkFaultPlan(**kwargs)


def netplan_to_json(plan: NetworkFaultPlan, indent: int = 2) -> str:
    return json.dumps(netplan_to_dict(plan), indent=indent)


def netplan_from_json(text: str) -> NetworkFaultPlan:
    try:
        raw = json.loads(text)
    except json.JSONDecodeError as error:
        raise FaultPlanFormatError(f"invalid JSON: {error}") from None
    if not isinstance(raw, dict):
        raise FaultPlanFormatError("network fault plan must be a JSON object")
    return netplan_from_dict(raw)


def save_netplan(plan: NetworkFaultPlan, path: Path) -> Path:
    path = Path(path)
    path.write_text(netplan_to_json(plan) + "\n", encoding="utf-8")
    return path


def load_netplan(path: Path) -> NetworkFaultPlan:
    return netplan_from_json(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# The chaos proxy
# ----------------------------------------------------------------------

class _LinkFaults:
    """The compiled fault schedule of one proxied connection."""

    __slots__ = ("drop_after", "cuts", "corruptions", "stalls", "split", "coalesce")

    def __init__(self, plan: NetworkFaultPlan, index: int, storm_drops):
        drop_candidates = [
            spec.after_frames for spec in plan.drops if spec.connection == index
        ]
        if index in storm_drops:
            drop_candidates.append(storm_drops[index])
        self.drop_after: Optional[int] = (
            min(drop_candidates) if drop_candidates else None
        )
        self.cuts: Dict[Tuple[str, int], CutSpec] = {
            (spec.direction, spec.frame): spec
            for spec in plan.cuts
            if spec.connection == index
        }
        self.corruptions: Dict[Tuple[str, int], CorruptSpec] = {
            (spec.direction, spec.frame): spec
            for spec in plan.corruptions
            if spec.connection == index
        }
        self.stalls: Dict[Tuple[str, int], StallSpec] = {
            (spec.direction, spec.frame): spec
            for spec in plan.stalls
            if spec.connection == index
        }
        self.split: Dict[str, int] = {
            spec.direction: spec.chunk_bytes
            for spec in plan.splits
            if spec.connection == index
        }
        self.coalesce: Dict[str, int] = {
            spec.direction: spec.frames
            for spec in plan.coalesces
            if spec.connection == index
        }


class _Link:
    """One proxied client↔upstream connection (two pump tasks)."""

    def __init__(self, proxy: "ChaosProxy", index: int, down, up):
        self.proxy = proxy
        self.index = index
        self.down_reader, self.down_writer = down
        self.up_reader, self.up_writer = up
        self.faults = _LinkFaults(proxy.plan, index, proxy._storm_drops)
        self.tasks: List[asyncio.Task] = []
        self.closed = False

    def start(self) -> None:
        loop = asyncio.get_running_loop()
        self.tasks = [
            loop.create_task(
                self._pump("request", self.down_reader, self.up_writer)
            ),
            loop.create_task(
                self._pump("response", self.up_reader, self.down_writer)
            ),
        ]

    def _close(self, abort: bool = False) -> None:
        """Tear down both sides; ``abort`` skips flushing (hard cut)."""
        if self.closed:
            return
        self.closed = True
        for writer in (self.down_writer, self.up_writer):
            try:
                if abort:
                    writer.transport.abort()
                else:
                    writer.close()
            except (ConnectionError, RuntimeError):
                pass
        self.proxy.connections_closed += 1

    async def _pump(self, direction: str, reader, writer) -> None:
        proxy = self.proxy
        faults = self.faults
        frame_index = 0
        pending: List[bytes] = []  # coalesce buffer
        coalesce = faults.coalesce.get(direction)
        split = faults.split.get(direction)

        async def write_out(data: bytes) -> None:
            proxy._hash_out[direction].update(data)
            proxy.bytes_forwarded[direction] += len(data)
            if split is not None:
                for start in range(0, len(data), split):
                    writer.write(data[start:start + split])
                    await writer.drain()
            else:
                writer.write(data)
                await writer.drain()

        async def flush_pending() -> None:
            if pending:
                await write_out(b"".join(pending))
                pending.clear()

        try:
            while not self.closed:
                try:
                    if pending:
                        # A coalesce buffer is waiting: flush it after a
                        # short silence so a held reply never deadlocks
                        # the peer.
                        frame = await asyncio.wait_for(
                            reader.readline(), timeout=_COALESCE_FLUSH_S
                        )
                    else:
                        frame = await reader.readline()
                except asyncio.TimeoutError:
                    await flush_pending()
                    continue
                except (ConnectionError, OSError):
                    break
                if not frame:
                    await flush_pending()
                    break
                proxy._hash_in[direction].update(frame)
                proxy.bytes_received[direction] += len(frame)
                if (
                    direction == "request"
                    and faults.drop_after is not None
                    and frame_index >= faults.drop_after
                ):
                    # Clean drop: the frame that crossed the threshold is
                    # never forwarded; both sides see FIN.
                    proxy.record_fault("drop")
                    await flush_pending()
                    self._close()
                    return
                stall = faults.stalls.get((direction, frame_index))
                if stall is not None:
                    proxy.record_fault("stall")
                    await asyncio.sleep(stall.delay_s)
                corrupt = faults.corruptions.get((direction, frame_index))
                if corrupt is not None and len(frame) > 1:
                    # Never touch the trailing newline: framing stays
                    # intact, the payload becomes invalid UTF-8.
                    offset = corrupt.offset % (len(frame) - 1)
                    frame = frame[:offset] + b"\xff" + frame[offset + 1:]
                    proxy.record_fault("corrupt")
                cut = faults.cuts.get((direction, frame_index))
                if cut is not None:
                    proxy.record_fault("cut")
                    await flush_pending()
                    cut_bytes = (
                        cut.cut_bytes
                        if cut.cut_bytes is not None
                        else max(1, (len(frame) - 1) // 2)
                    )
                    prefix = frame[:cut_bytes]
                    if prefix:
                        proxy._hash_out[direction].update(prefix)
                        proxy.bytes_forwarded[direction] += len(prefix)
                        try:
                            writer.write(prefix)
                            await writer.drain()
                        except (ConnectionError, OSError):
                            pass
                    self._close(abort=True)
                    return
                frame_index += 1
                proxy.frames_forwarded[direction] += 1
                if coalesce is not None:
                    pending.append(frame)
                    if len(pending) >= coalesce:
                        await flush_pending()
                else:
                    await write_out(frame)
        except (ConnectionError, OSError):
            pass
        finally:
            # EOF (or a fault) on one direction ends the whole link: the
            # proxied peers see a plain connection close.
            self._close()


class ChaosProxy:
    """An in-process TCP proxy that injects a :class:`NetworkFaultPlan`.

    Usage::

        proxy = ChaosProxy(server.host, server.port, plan)
        await proxy.start()          # proxy.port is now bound
        ... point the client at proxy.port ...
        await proxy.aclose()         # idempotent; aborts live links

    A null (or absent) plan is byte-transparent; :meth:`transparent`
    pins it via per-direction SHA-256 of received vs forwarded bytes.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: Optional[NetworkFaultPlan] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.plan = plan if plan is not None else NetworkFaultPlan()
        self.host = host
        self.port = port
        self._rng = random.Random(self.plan.seed)
        self._server: Optional[asyncio.base_events.Server] = None
        self._links: List[_Link] = []
        self.connections_opened = 0
        self.connections_closed = 0
        #: Fault-class name → injection count.
        self.faults_injected: Dict[str, int] = {}
        self.frames_forwarded = {d: 0 for d in DIRECTIONS}
        self.bytes_received = {d: 0 for d in DIRECTIONS}
        self.bytes_forwarded = {d: 0 for d in DIRECTIONS}
        self._hash_in = {d: hashlib.sha256() for d in DIRECTIONS}
        self._hash_out = {d: hashlib.sha256() for d in DIRECTIONS}
        # The storm's per-connection drop points are drawn up front from
        # the plan seed, so the schedule is bit-reproducible regardless
        # of connection timing.
        self._storm_drops: Dict[int, int] = {}
        for spec in self.plan.reconnect_storms:
            for index in range(spec.connections):
                jitter = (
                    self._rng.randint(0, spec.jitter_frames)
                    if spec.jitter_frames
                    else 0
                )
                point = spec.after_frames + jitter
                if index not in self._storm_drops:
                    self._storm_drops[index] = point
                else:
                    self._storm_drops[index] = min(
                        self._storm_drops[index], point
                    )

    def record_fault(self, kind: str) -> None:
        self.faults_injected[kind] = self.faults_injected.get(kind, 0) + 1

    @property
    def total_faults(self) -> int:
        return sum(self.faults_injected.values())

    def transparent(self) -> bool:
        """True when every received byte was forwarded unmodified."""
        return all(
            self._hash_in[d].hexdigest() == self._hash_out[d].hexdigest()
            for d in DIRECTIONS
        )

    @property
    def live_links(self) -> int:
        return sum(1 for link in self._links if not link.closed)

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port, limit=_RELAY_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _handle(self, reader, writer) -> None:
        index = self.connections_opened
        self.connections_opened += 1
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port, limit=_RELAY_LIMIT
            )
        except OSError:
            writer.transport.abort()
            self.connections_closed += 1
            return
        link = _Link(self, index, (reader, writer), (up_reader, up_writer))
        self._links.append(link)
        link.start()

    async def aclose(self) -> None:
        """Stop listening, abort live links, await every pump task."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for link in self._links:
            link._close(abort=True)
        for link in self._links:
            for task in link.tasks:
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._links = []
