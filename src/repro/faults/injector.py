"""The seeded runtime that applies a :class:`~repro.faults.plan.FaultPlan`.

One :class:`FaultInjector` is built per simulator when a plan is given
(``HyperSimulator(..., fault_plan=plan)``); with no plan the simulator's
injector slot is ``None`` and the per-packet hot path contains a single
attribute check — the same zero-cost-when-disabled pattern as the
observability layer.

Determinism: the injector owns the run's only fault RNG
(``random.Random(plan.seed)``), and every query site sits inside the
per-device engine dispatch path.  Both the analytic simulator and the
event-driven twin dispatch in identical global ``(time, device_id)``
order, so the RNG is consumed in the same sequence by both — seeded
plans replay bit-identically on either engine.  Scheduled faults
(storms, resets, leaks) use cursor state, never the RNG, and
probability-0 stochastic specs are filtered out up front so an inert
plan consumes no randomness at all.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.faults.plan import FaultPlan, InvalidationStormSpec


class FaultInjector:
    """Applies one plan's faults to one run, bit-reproducibly."""

    def __init__(self, plan: FaultPlan, num_devices: int = 1):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        #: Probability-0 specs are dropped so they can never consume RNG
        #: state — a zero-probability plan replays the no-plan stream.
        self._translation_faults = tuple(
            spec for spec in plan.translation_faults if spec.probability > 0.0
        )
        self._storms: List[InvalidationStormSpec] = sorted(
            plan.invalidation_storms, key=lambda spec: (spec.at_ns, spec.sid)
        )
        self._storm_cursor = 0
        self._resets: Dict[int, List[float]] = {}
        for spec in plan.device_resets:
            if spec.device_id < num_devices:
                self._resets.setdefault(spec.device_id, []).append(spec.at_ns)
        for times in self._resets.values():
            times.sort(reverse=True)  # pop() pops the earliest
        self._latency_spikes = tuple(plan.latency_spikes)
        self._ptb_leaks = tuple(plan.ptb_leaks)
        self._has_translation_faults = bool(self._translation_faults)
        self._has_leaks = bool(self._ptb_leaks)
        self._has_spikes = bool(self._latency_spikes)

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def rng_state(self):
        """The RNG's internal state (snapshotted by simulation checkpoints)."""
        return self.rng.getstate()

    def set_rng_state(self, state) -> None:
        """Restore an :meth:`rng_state` snapshot, bit-exactly."""
        self.rng.setstate(state)

    # ------------------------------------------------------------------
    # Stochastic faults
    # ------------------------------------------------------------------
    def translation_fault(self, now: float, sid: int) -> bool:
        """Roll whether one IOMMU attempt for ``sid`` at ``now`` faults.

        Specs are consulted in plan order; the first triggering spec
        wins.  A spec with probability 1 triggers without consuming RNG
        state (it is not a stochastic choice).
        """
        if not self._has_translation_faults:
            return False
        for spec in self._translation_faults:
            if spec.sid is not None and spec.sid != sid:
                continue
            if now < spec.start_ns:
                continue
            if spec.end_ns is not None and now >= spec.end_ns:
                continue
            if spec.probability >= 1.0:
                return True
            if self.rng.random() < spec.probability:
                return True
        return False

    # ------------------------------------------------------------------
    # Scheduled faults (cursor state, no RNG)
    # ------------------------------------------------------------------
    def due_storms(self, now: float) -> List[InvalidationStormSpec]:
        """Storms scheduled at or before ``now`` not yet applied."""
        due: List[InvalidationStormSpec] = []
        storms = self._storms
        while self._storm_cursor < len(storms):
            spec = storms[self._storm_cursor]
            if spec.at_ns > now:
                break
            due.append(spec)
            self._storm_cursor += 1
        return due

    def due_reset(self, device_id: int, now: float) -> bool:
        """Whether a reset of ``device_id`` fires at or before ``now``.

        Multiple overdue resets coalesce into one (the state is already
        flushed).
        """
        times = self._resets.get(device_id)
        if not times or times[-1] > now:
            return False
        while times and times[-1] <= now:
            times.pop()
        return True

    def ptb_leaked_entries(self, device_id: int, now: float) -> int:
        """Entries leaked from ``device_id``'s PTB at time ``now``."""
        if not self._has_leaks:
            return 0
        leaked = 0
        for spec in self._ptb_leaks:
            if spec.device_id is not None and spec.device_id != device_id:
                continue
            if spec.start_ns <= now < spec.end_ns:
                leaked += spec.entries
        return leaked

    # ------------------------------------------------------------------
    # Latency spikes
    # ------------------------------------------------------------------
    def pcie_extra_ns(self, now: float) -> float:
        """Extra per-crossing PCIe latency active at ``now``."""
        if not self._has_spikes:
            return 0.0
        return sum(
            spec.extra_ns
            for spec in self._latency_spikes
            if spec.target == "pcie" and spec.start_ns <= now < spec.end_ns
        )

    def dram_extra_ns(self, now: float) -> float:
        """Extra per-DRAM-access latency active at ``now``."""
        if not self._has_spikes:
            return 0.0
        return sum(
            spec.extra_ns
            for spec in self._latency_spikes
            if spec.target == "dram" and spec.start_ns <= now < spec.end_ns
        )
