"""Tests for the experiment manifest."""

from repro.analysis.experiments import ALL_EXPERIMENTS
from repro.analysis.manifest import MANIFEST, manifest_by_key
from repro.analysis.scale import DEFAULT, SMOKE


class TestManifestCompleteness:
    def test_covers_every_registered_experiment(self):
        assert {entry.key for entry in MANIFEST} == set(ALL_EXPERIMENTS)

    def test_drivers_match_registry(self):
        for entry in MANIFEST:
            assert entry.driver is ALL_EXPERIMENTS[entry.key]

    def test_every_entry_documents_claim_and_verdict(self):
        for entry in MANIFEST:
            assert len(entry.paper_claim) > 20, entry.key
            assert len(entry.shape_verdict) > 20, entry.key

    def test_by_key_lookup(self):
        table = manifest_by_key()
        assert table["figure10"].driver is ALL_EXPERIMENTS["figure10"]


class TestKwargsForScale:
    def test_table3_scales_tenants(self):
        entry = manifest_by_key()["table3"]
        assert entry.kwargs_for(SMOKE)["num_tenants"] == 16
        assert entry.kwargs_for(DEFAULT)["num_tenants"] == 256

    def test_figures_receive_scale(self):
        entry = manifest_by_key()["figure10"]
        assert entry.kwargs_for(SMOKE) == {"scale": SMOKE}

    def test_figure8_packet_budget(self):
        entry = manifest_by_key()["figure8"]
        assert entry.kwargs_for(SMOKE)["packets"] == 10_000
        assert entry.kwargs_for(DEFAULT)["packets"] == 95_000

    def test_static_tables_take_no_kwargs(self):
        for key in ("table1", "table2", "table4"):
            assert manifest_by_key()[key].kwargs_for(DEFAULT) == {}

    def test_smoke_manifest_drivers_run(self):
        """Static entries actually execute with their manifest kwargs."""
        for key in ("table1", "table2", "table4"):
            entry = manifest_by_key()[key]
            table = entry.driver(**entry.kwargs_for(SMOKE))
            assert table.rows
