"""Unit tests for repro.mem.pagetable."""

import pytest

from repro.mem.address import PAGE_SHIFT_2M, PAGE_SHIFT_4K, PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.mem.allocator import FrameAllocator
from repro.mem.pagetable import AddressSpace, PageTable, TranslationFault


@pytest.fixture
def table():
    return PageTable(FrameAllocator(base=0x1_0000_0000), name="unit")


class TestMapAndTranslate:
    def test_translate_mapped_page(self, table):
        table.map_page(0x3480_0000, 0x9000_0000)
        assert table.translate(0x3480_0000) == 0x9000_0000

    def test_translate_preserves_offset(self, table):
        table.map_page(0x3480_0000, 0x9000_0000)
        assert table.translate(0x3480_0ABC) == 0x9000_0ABC

    def test_unmapped_address_faults(self, table):
        with pytest.raises(TranslationFault):
            table.translate(0xDEAD_0000)

    def test_fault_carries_context(self, table):
        with pytest.raises(TranslationFault) as excinfo:
            table.translate(0xDEAD_0000)
        assert excinfo.value.space == "unit"
        assert excinfo.value.address == 0xDEAD_0000

    def test_double_map_rejected(self, table):
        table.map_page(0x1000, 0x9000_0000)
        with pytest.raises(ValueError):
            table.map_page(0x1000, 0x9000_1000)

    def test_unaligned_frame_rejected(self, table):
        with pytest.raises(ValueError):
            table.map_page(0x1000, 0x9000_0010)

    def test_many_mappings_translate_independently(self, table):
        for index in range(64):
            table.map_page(index * PAGE_SIZE_4K, 0x9000_0000 + index * PAGE_SIZE_4K)
        for index in range(64):
            assert (
                table.translate(index * PAGE_SIZE_4K)
                == 0x9000_0000 + index * PAGE_SIZE_4K
            )


class TestHugePages:
    def test_huge_mapping_translates_inside_page(self, table):
        table.map_page(0xBBE0_0000, 0x4000_0000, PAGE_SHIFT_2M)
        assert table.translate(0xBBE0_0000 + 12345) == 0x4000_0000 + 12345

    def test_huge_frame_must_be_2m_aligned(self, table):
        with pytest.raises(ValueError):
            table.map_page(0xBBE0_0000, 0x4000_1000, PAGE_SHIFT_2M)

    def test_small_map_under_huge_rejected(self, table):
        table.map_page(0xBBE0_0000, 0x4000_0000, PAGE_SHIFT_2M)
        with pytest.raises(ValueError):
            table.map_page(0xBBE0_1000, 0x9000_0000)

    def test_unsupported_page_shift_rejected(self, table):
        with pytest.raises(ValueError):
            table.map_page(0, 0, 30)


class TestUnmap:
    def test_unmap_then_fault(self, table):
        table.map_page(0x1000, 0x9000_0000)
        table.unmap_page(0x1000)
        with pytest.raises(TranslationFault):
            table.translate(0x1000)

    def test_unmap_unmapped_faults(self, table):
        with pytest.raises(TranslationFault):
            table.unmap_page(0x1000)

    def test_remap_after_unmap(self, table):
        table.map_page(0x1000, 0x9000_0000)
        table.unmap_page(0x1000)
        table.map_page(0x1000, 0x9999_9000)
        assert table.translate(0x1000) == 0x9999_9000

    def test_unmap_keeps_other_mappings(self, table):
        table.map_page(0x1000, 0x9000_0000)
        table.map_page(0x2000, 0x9000_1000)
        table.unmap_page(0x1000)
        assert table.translate(0x2000) == 0x9000_1000


class TestWalkStructure:
    def test_walk_of_4k_page_reads_four_levels(self, table):
        table.map_page(0x3480_0000, 0x9000_0000)
        frame, shift, steps = table.walk(0x3480_0000)
        assert frame == 0x9000_0000
        assert shift == PAGE_SHIFT_4K
        assert [step.level for step in steps] == [4, 3, 2, 1]

    def test_walk_of_2m_page_reads_three_levels(self, table):
        table.map_page(0xBBE0_0000, 0x4000_0000, PAGE_SHIFT_2M)
        _, shift, steps = table.walk(0xBBE0_0000)
        assert shift == PAGE_SHIFT_2M
        assert [step.level for step in steps] == [4, 3, 2]

    def test_walk_steps_have_distinct_entry_addresses(self, table):
        table.map_page(0x3480_0000, 0x9000_0000)
        _, _, steps = table.walk(0x3480_0000)
        addresses = [step.entry_address for step in steps]
        assert len(set(addresses)) == len(addresses)

    def test_same_region_shares_upper_nodes(self, table):
        table.map_page(0x1000, 0x9000_0000)
        table.map_page(0x2000, 0x9000_1000)
        _, _, first = table.walk(0x1000)
        _, _, second = table.walk(0x2000)
        # Levels 4..2 come from the same nodes; only the L1 entry differs.
        assert [s.entry_address for s in first[:3]] == [
            s.entry_address for s in second[:3]
        ]
        assert first[3].entry_address != second[3].entry_address


class TestIntrospection:
    def test_mapped_page_count(self, table):
        table.map_page(0x1000, 0x9000_0000)
        table.map_page(0xBBE0_0000, 0x4000_0000, PAGE_SHIFT_2M)
        assert table.mapped_page_count == 2

    def test_mappings_iterates_sorted(self, table):
        table.map_page(0x5000, 0x9000_1000)
        table.map_page(0x1000, 0x9000_0000)
        bases = [base for base, _, _ in table.mappings()]
        assert bases == sorted(bases)

    def test_node_count_grows_with_sparse_mappings(self, table):
        before = table.node_count()
        table.map_page(0x0000_1000, 0x9000_0000)
        table.map_page(0x7F00_0000_0000, 0x9000_1000)  # far apart: new subtree
        assert table.node_count() > before + 3


class TestAddressSpace:
    def test_map_io_page_translates_end_to_end(self, address_space):
        address_space.map_io_page(0x3480_0000)
        hpa = address_space.translate(0x3480_0000)
        assert hpa % PAGE_SIZE_4K == 0

    def test_distinct_giovas_get_distinct_hpas(self, address_space):
        address_space.map_io_page(0x3480_0000)
        address_space.map_io_page(0x3500_0000)
        assert address_space.translate(0x3480_0000) != address_space.translate(
            0x3500_0000
        )

    def test_huge_io_page_lazy_backing(self, address_space):
        """A 2 MB gIOVA mapping only backs touched host pages."""
        host_allocator = address_space.host_table._allocator
        before = host_allocator.frames_allocated
        address_space.map_io_page(0xBBE0_0000, PAGE_SHIFT_2M)
        grown = host_allocator.frames_allocated - before
        # Far fewer host frames than the 512 a full 2 MB backing would take.
        assert grown < 32

    def test_translate_within_huge_page(self, address_space):
        address_space.map_io_page(0xBBE0_0000, PAGE_SHIFT_2M)
        base = address_space.translate(0xBBE0_0000)
        inside = address_space.translate(0xBBE0_0000 + 0x800)
        assert inside - base == 0x800

    def test_two_tenants_same_giova_different_hpa(self, host_allocator):
        tenant_a = AddressSpace(
            FrameAllocator(base=0x4000_0000), host_allocator, "a"
        )
        tenant_b = AddressSpace(
            FrameAllocator(base=0x4000_0000), host_allocator, "b"
        )
        tenant_a.map_io_page(0x3480_0000)
        tenant_b.map_io_page(0x3480_0000)
        assert tenant_a.translate(0x3480_0000) != tenant_b.translate(0x3480_0000)
