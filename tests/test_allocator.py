"""Unit tests for repro.mem.allocator."""

import pytest

from repro.mem.address import PAGE_SIZE_2M, PAGE_SIZE_4K
from repro.mem.allocator import FrameAllocator


class TestBasicAllocation:
    def test_first_frame_is_base(self):
        allocator = FrameAllocator(base=0x1000_0000)
        assert allocator.allocate() == 0x1000_0000

    def test_sequential_frames_are_contiguous(self):
        allocator = FrameAllocator(base=0)
        first = allocator.allocate()
        second = allocator.allocate()
        assert second - first == PAGE_SIZE_4K

    def test_multi_frame_allocation_advances_pointer(self):
        allocator = FrameAllocator(base=0)
        allocator.allocate(count=4)
        assert allocator.allocate() == 4 * PAGE_SIZE_4K

    def test_frames_allocated_counter(self):
        allocator = FrameAllocator()
        allocator.allocate(3)
        allocator.allocate()
        assert allocator.frames_allocated == 4

    def test_unaligned_base_rejected(self):
        with pytest.raises(ValueError):
            FrameAllocator(base=0x123)

    def test_zero_count_rejected(self):
        allocator = FrameAllocator()
        with pytest.raises(ValueError):
            allocator.allocate(0)


class TestHugeAllocation:
    def test_huge_allocation_is_2m_aligned(self):
        allocator = FrameAllocator(base=0)
        allocator.allocate()  # misalign the bump pointer
        huge = allocator.allocate_huge()
        assert huge % PAGE_SIZE_2M == 0

    def test_huge_allocation_spans_512_frames(self):
        allocator = FrameAllocator(base=0)
        first = allocator.allocate_huge()
        second = allocator.allocate_huge()
        assert second - first == PAGE_SIZE_2M

    def test_allocations_never_overlap_after_huge(self):
        allocator = FrameAllocator(base=0)
        huge = allocator.allocate_huge()
        small = allocator.allocate()
        assert small >= huge + PAGE_SIZE_2M


class TestScatter:
    def test_scatter_is_deterministic(self):
        a = FrameAllocator(base=0, scatter=True)
        b = FrameAllocator(base=0, scatter=True)
        assert [a.allocate() for _ in range(20)] == [b.allocate() for _ in range(20)]

    def test_scatter_produces_distinct_frames(self):
        allocator = FrameAllocator(base=0, scatter=True)
        frames = [allocator.allocate() for _ in range(1000)]
        assert len(set(frames)) == len(frames)

    def test_scatter_breaks_contiguity(self):
        allocator = FrameAllocator(base=0, scatter=True)
        frames = [allocator.allocate() for _ in range(8)]
        deltas = {b - a for a, b in zip(frames, frames[1:])}
        assert deltas != {PAGE_SIZE_4K}

    def test_scattered_frames_are_page_aligned(self):
        allocator = FrameAllocator(base=0, scatter=True)
        for _ in range(100):
            assert allocator.allocate() % PAGE_SIZE_4K == 0
